"""SLO attainment under mixed load: tight deadlines vs relaxed throughput.

The DiLaServe-style claim of the SLO scheduler, measured end to end on one
server: honoring *tight* deadlines must not cost *relaxed* clients their
batching amortization, and the tight clients must actually make their
deadlines.

**Baseline.**  A flood of requests carrying no SLO fields at all — the
pre-SLO behavior, where every request lingers the full batch window and
amortizes maximally.  Its throughput is the yardstick.

**Mixed phase.**  The same flood marked ``relaxed`` runs alongside a paced
stream of ``tight`` requests carrying a real ``deadline_ms``.  Tight
requests get a zero linger budget (solo execution, no waiting for lanes);
relaxed ones keep the full window.  Two headline metrics come out:

* ``tight.attainment`` — the fraction of tight requests finishing inside
  their deadline (admission rejections count as misses).  Gate: >= 0.95.
* ``relaxed.throughput_ratio`` — relaxed flood throughput over the no-SLO
  baseline flood.  Gate: >= 0.8x (the tight stream steals some worker time,
  but batching must survive).

Runs standalone (``python benchmarks/bench_slo_attainment.py``) for CI,
writing ``bench-out/slo_attainment.json`` for artifact upload, or under
pytest-benchmark with the rest of the suite.
"""

from __future__ import annotations

import json
import sys
import threading
import time

import numpy as np

from repro.api import execute_reference
from repro.errors import DeadlineInfeasibleError
from repro.frontend import EvaProgram, input_encrypted, output
from repro.serving import EvaServer, Telemetry
from repro.serving.cluster import BackendSpec

try:
    from conftest import print_table
except ImportError:  # standalone invocation without the benchmarks conftest
    def print_table(title, header, rows):
        print(f"\n=== {title} ===")
        for row in [header] + rows:
            print("  ".join(str(cell).ljust(18) for cell in row))

#: Simulated hardware latency per homomorphic op (seconds) — dominates the
#: evaluation cost on any host, so ratios transfer between machines.
OP_LATENCY = 0.002
#: Batch formation window (seconds): what relaxed requests amortize across
#: and tight requests refuse to wait for.
BATCH_WINDOW = 0.05
#: Job-engine worker threads.
WORKERS = 2
#: The relaxed flood: clients x requests-per-client (batches form within a
#: client, so each client contributes full lanes).
FLOOD_CLIENTS = 4
FLOOD_REQUESTS = 24
#: The tight stream: paced requests with a real deadline.
TIGHT_REQUESTS = 20
TIGHT_DEADLINE_MS = 400.0
TIGHT_INTERVAL = 0.02
#: Acceptance bars (mirrored by check_regression.py's gates).
MIN_ATTAINMENT = 0.95
MIN_THROUGHPUT_RATIO = 0.8
#: Reference-comparison tolerance (mock-exact backend).
ATOL = 1e-6


def build_program() -> EvaProgram:
    program = EvaProgram("poly", vec_size=64, default_scale=25)
    with program:
        x = input_encrypted("x", 25)
        output("y", (x * x + x * 0.5) * (x * x - 1.0) + x, 25)
    return program


def make_server() -> EvaServer:
    server = EvaServer(
        backend=BackendSpec("mock-exact", seed=11, op_latency=OP_LATENCY).build(),
        workers=WORKERS,
        max_batch=8,
        batch_window=BATCH_WINDOW,
        telemetry=Telemetry(slow_threshold=60.0),
    )
    server.register("poly", build_program())
    return server


def run_flood(server, inputs, slo_class=None) -> float:
    """Submit the full flood asynchronously; returns throughput (req/s)."""
    started = time.perf_counter()
    futures = []
    for client in range(FLOOD_CLIENTS):
        for _ in range(FLOOD_REQUESTS):
            futures.append(
                server.submit(
                    "poly",
                    {"x": inputs},
                    client_id=f"flood-{client}",
                    slo_class=slo_class,
                )
            )
    for future in futures:
        future.result(120)
    return len(futures) / (time.perf_counter() - started)


def run(benchmark=None) -> dict:
    inputs = [0.1, 0.4, -0.3, 0.9]
    program = build_program()
    expected = execute_reference(program.graph, {"x": inputs})["y"][: len(inputs)]

    server = make_server()
    try:
        # Warm every flood client and the tight client (compile + keygen are
        # one-time costs; the warmup also seeds the cost model estimate and
        # the engine's observed wait/execute history).
        for client in range(FLOOD_CLIENTS):
            server.request("poly", {"x": inputs}, client_id=f"flood-{client}")
        response = server.request("poly", {"x": inputs}, client_id="tight")
        np.testing.assert_allclose(
            response.outputs["y"][: len(inputs)], expected, atol=ATOL
        )

        # Phase 1: the no-SLO baseline flood.
        baseline_throughput = run_flood(server, inputs, slo_class=None)

        # Phase 2: the same flood marked relaxed, with a tight paced stream
        # riding alongside under a real deadline.
        latencies, rejected = [], [0]
        flood_throughput = [0.0]

        def relaxed_flood() -> None:
            flood_throughput[0] = run_flood(server, inputs, slo_class="relaxed")

        flooder = threading.Thread(target=relaxed_flood, daemon=True)
        flooder.start()
        try:
            for _ in range(TIGHT_REQUESTS):
                start = time.perf_counter()
                try:
                    server.request(
                        "poly",
                        {"x": inputs},
                        client_id="tight",
                        deadline_ms=TIGHT_DEADLINE_MS,
                        slo_class="tight",
                    )
                except DeadlineInfeasibleError:
                    rejected[0] += 1
                else:
                    latencies.append(time.perf_counter() - start)
                time.sleep(TIGHT_INTERVAL)
        finally:
            flooder.join(timeout=120)

        engine = server.engine.metrics
        attained = sum(
            1 for seconds in latencies if seconds * 1e3 <= TIGHT_DEADLINE_MS
        )
        attainment = attained / TIGHT_REQUESTS
        ratio = flood_throughput[0] / max(baseline_throughput, 1e-9)
    finally:
        server.close()

    p99 = float(np.percentile(latencies, 99)) * 1e3 if latencies else float("inf")
    print_table(
        f"SLO attainment: {TIGHT_REQUESTS} tight requests "
        f"(deadline {TIGHT_DEADLINE_MS:g}ms) vs a relaxed flood of "
        f"{FLOOD_CLIENTS * FLOOD_REQUESTS}",
        ["Metric", "Value", "Bar"],
        [
            ["tight attainment", f"{attainment:.3f}", f">= {MIN_ATTAINMENT}"],
            ["tight p99 (ms)", f"{p99:.1f}", f"<= {TIGHT_DEADLINE_MS:g}"],
            ["tight rejected", rejected[0], "-"],
            [
                "relaxed throughput",
                f"{flood_throughput[0]:.1f}/s",
                f">= {MIN_THROUGHPUT_RATIO}x baseline",
            ],
            ["baseline throughput", f"{baseline_throughput:.1f}/s", "-"],
            ["throughput ratio", f"{ratio:.2f}x", f">= {MIN_THROUGHPUT_RATIO}x"],
        ],
    )

    assert attainment >= MIN_ATTAINMENT, (
        f"only {attainment:.0%} of tight requests made their "
        f"{TIGHT_DEADLINE_MS:g}ms deadline (bar {MIN_ATTAINMENT:.0%})"
    )
    assert ratio >= MIN_THROUGHPUT_RATIO, (
        f"relaxed throughput fell to {ratio:.2f}x of the no-SLO baseline "
        f"(bar {MIN_THROUGHPUT_RATIO}x): tight scheduling broke batching"
    )

    payload = {
        "benchmark": "slo_attainment",
        "op_latency_seconds": OP_LATENCY,
        "batch_window_seconds": BATCH_WINDOW,
        "tight": {
            "deadline_ms": TIGHT_DEADLINE_MS,
            "requests": TIGHT_REQUESTS,
            "attainment": attainment,
            "p99_ms": p99,
            "rejected": rejected[0],
            "engine_attained": engine.slo_attained,
            "engine_missed": engine.slo_missed,
        },
        "relaxed": {
            "throughput_per_second": flood_throughput[0],
            "baseline_throughput_per_second": baseline_throughput,
            "throughput_ratio": ratio,
        },
    }
    print(json.dumps(payload))
    if benchmark is not None:
        # Benchmark target: one tight request under no contention.
        server = make_server()
        server.request("poly", {"x": inputs}, client_id="tight")
        benchmark.pedantic(
            lambda: server.request(
                "poly",
                {"x": inputs},
                client_id="tight",
                deadline_ms=TIGHT_DEADLINE_MS,
                slo_class="tight",
            ),
            rounds=3,
            iterations=1,
        )
        server.close()
    else:
        import os

        os.makedirs("bench-out", exist_ok=True)
        with open("bench-out/slo_attainment.json", "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
    return payload


def test_slo_attainment(benchmark):
    run(benchmark)


if __name__ == "__main__":
    result = run(None)
    print(
        f"slo attainment ok: tight {result['tight']['attainment']:.0%} >= "
        f"{MIN_ATTAINMENT:.0%}, relaxed "
        f"{result['relaxed']['throughput_ratio']:.2f}x >= "
        f"{MIN_THROUGHPUT_RATIO}x"
    )
    sys.exit(0)
