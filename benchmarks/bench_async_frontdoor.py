"""Connection scaling of the asyncio front door: idle sessions for free.

The threaded listener dedicates an OS thread to every connection for its
whole lifetime — the cost of a long-lived client is a thread, whether it is
evaluating or idle.  The asyncio front door (:mod:`repro.serving.aionet`)
multiplexes every connection on one event loop; a bounded daemon pool runs
only the requests actually in flight, so an *idle* connection costs a file
descriptor and a heap object.

This benchmark opens a large pool of idle connections against an in-process
server and then drives mixed JSON and binary traffic through the crowd:

* **sustained connections** — how many of the target idle connections the
  server actually reports live (``stats`` / ``connection_infos``) while
  traffic flows.  Gated: the committed baseline sustains the full target.
* **threads per idle connection** — additional OS threads divided by idle
  connections.  The async front door sits near zero (the dispatch pool is
  bounded and idle connections hold no thread); the threaded fallback would
  be ~1.0.  Reported for context, not gated (absolute thread counts wobble
  with pool retirement timing).
* **mixed traffic** — JSON-lines and binary-frame submits interleaved while
  the idle crowd stays connected; every reply must be correct.

Runs standalone for the CI gate or under pytest-benchmark with the suite.
"""

from __future__ import annotations

import json
import socket
import sys
import threading
import time

import numpy as np

from repro.core.compiler import CompilerOptions
from repro.frontend import EvaProgram, input_encrypted, output
from repro.serving import EvaServer, EvaTcpServer, ServingClient

try:
    from conftest import print_table
except ImportError:  # standalone invocation without the benchmarks conftest
    def print_table(title, header, rows):
        print(f"\n=== {title} ===")
        for row in [header] + rows:
            print("  ".join(str(cell).ljust(18) for cell in row))

#: Idle connections held open while traffic flows (the acceptance bar is
#: >= 1000 concurrent idle sessions).
TARGET_CONNECTIONS = 1000
#: Mixed-traffic submits per protocol while the idle crowd is connected.
TRAFFIC_PER_MODE = 20
VEC_SIZE = 64
OPTIONS = CompilerOptions(max_rescale_bits=25)


def make_program() -> EvaProgram:
    program = EvaProgram("axpy", vec_size=VEC_SIZE, default_scale=25)
    with program:
        x = input_encrypted("x", 25)
        output("y", x * 3.0 + 1.0, 25)
    return program


def open_idle_connections(host: str, port: int, count: int) -> list:
    """Raw sockets that connect, send nothing, and stay open."""
    sockets = []
    for _ in range(count):
        sock = socket.create_connection((host, port), timeout=10.0)
        sockets.append(sock)
    return sockets


def run_traffic(host: str, port: int) -> dict:
    xv = np.linspace(-1.0, 1.0, VEC_SIZE)
    expected = xv * 3.0 + 1.0
    ok = {"json": 0, "binary": 0}
    started = time.perf_counter()
    for rep in range(TRAFFIC_PER_MODE):
        for mode in ("json", "binary"):
            with ServingClient(host, port, wire=mode) as client:
                outputs = client.submit("axpy", {"x": xv}, client_id=f"{mode}-{rep}")
                if np.max(np.abs(np.asarray(outputs["y"])[:VEC_SIZE] - expected)) < 1e-3:
                    ok[mode] += 1
    return {
        "json_ok": ok["json"],
        "binary_ok": ok["binary"],
        "requests": 2 * TRAFFIC_PER_MODE,
        "seconds": time.perf_counter() - started,
    }


def run(benchmark=None) -> dict:
    program = make_program()
    server = EvaServer(workers=2, batch_window=0.0)
    server.register("axpy", program, options=OPTIONS)
    tcp = EvaTcpServer(server, port=0)
    tcp.start_background()
    host, port = tcp.address

    threads_before = threading.active_count()
    idle = []
    try:
        connect_started = time.perf_counter()
        idle = open_idle_connections(host, port, TARGET_CONNECTIONS)
        # Let the event loop accept the backlog before counting.
        deadline = time.time() + 30.0
        sustained = 0
        while time.time() < deadline:
            sustained = len(tcp.connection_infos())
            if sustained >= TARGET_CONNECTIONS:
                break
            time.sleep(0.05)
        connect_seconds = time.perf_counter() - connect_started

        traffic = run_traffic(host, port)
        # The idle crowd must still be connected after serving traffic
        # through it (the traffic clients add/remove their own entries).
        sustained = min(sustained, len(idle))
        still_open = sum(
            1 for info in tcp.connection_infos() if info["requests"] == 0
        )
        threads_during = threading.active_count()
        if benchmark is not None:
            benchmark.pedantic(
                lambda: run_traffic(host, port), rounds=1, iterations=1
            )
    finally:
        for sock in idle:
            try:
                sock.close()
            except OSError:
                pass
        tcp.shutdown()
        tcp.server_close()
        server.close()

    threads_added = max(threads_during - threads_before, 0)
    per_connection = threads_added / max(TARGET_CONNECTIONS, 1)

    print_table(
        f"Async front door with {TARGET_CONNECTIONS} idle connections",
        ["Metric", "Value"],
        [
            ["sustained idle connections", sustained],
            ["still open after traffic", still_open],
            ["connect wall", f"{connect_seconds:.2f} s"],
            ["threads added", threads_added],
            ["threads per idle conn", f"{per_connection:.4f}"],
            ["json ok", f"{traffic['json_ok']}/{TRAFFIC_PER_MODE}"],
            ["binary ok", f"{traffic['binary_ok']}/{TRAFFIC_PER_MODE}"],
            ["traffic wall", f"{traffic['seconds']:.2f} s"],
        ],
    )

    assert sustained >= TARGET_CONNECTIONS, (
        f"only {sustained} of {TARGET_CONNECTIONS} idle connections were "
        "sustained by the async front door"
    )
    assert still_open >= TARGET_CONNECTIONS, (
        f"idle connections were dropped while serving traffic "
        f"({still_open} of {TARGET_CONNECTIONS} still open)"
    )
    assert traffic["json_ok"] == TRAFFIC_PER_MODE, "JSON traffic failed"
    assert traffic["binary_ok"] == TRAFFIC_PER_MODE, "binary traffic failed"

    payload = {
        "benchmark": "async_frontdoor",
        "target_connections": TARGET_CONNECTIONS,
        "connections": {
            "sustained": sustained,
            "still_open_after_traffic": still_open,
            "connect_seconds": connect_seconds,
        },
        "threads": {
            "added": threads_added,
            "per_connection": per_connection,
        },
        "traffic": {
            "json_ok": traffic["json_ok"],
            "binary_ok": traffic["binary_ok"],
            "requests": traffic["requests"],
            "ok_fraction": (traffic["json_ok"] + traffic["binary_ok"])
            / traffic["requests"],
            "seconds": traffic["seconds"],
        },
    }
    print(json.dumps(payload))

    if benchmark is None:
        import os

        os.makedirs("bench-out", exist_ok=True)
        with open("bench-out/async_frontdoor.json", "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
    return payload


def test_async_frontdoor(benchmark):
    run(benchmark)


if __name__ == "__main__":
    result = run(None)
    print(
        f"async frontdoor ok: {result['connections']['sustained']} idle "
        f"connections sustained, {result['threads']['per_connection']:.4f} "
        f"threads/conn, {result['traffic']['json_ok']}+"
        f"{result['traffic']['binary_ok']} mixed requests served"
    )
    sys.exit(0)
