"""Amortized serving latency for a rotation-bearing program: batched vs solo.

The serving throughput benchmark (bench_serving_throughput.py) measures the
warm cached path for a *slotwise* polynomial; this one targets exactly the
workloads slot batching used to exclude — programs full of rotations.  The
Sobel kernel (9 rotations, squares, a polynomial square root) is compiled at
a vector size leaving spare slots, and the serving layer lane-lowers it on
demand: one homomorphic evaluation answers ``vec_size / lane`` images.

Both paths are *warm* (program compiled, session keys generated); the
difference under test is purely amortization:

* **solo**    — requests issued one at a time; each pays one full evaluation
  of the base compilation.
* **batched** — the same requests issued concurrently; the server resolves
  the lane-lowered variant and packs them into shared ciphertexts.

Every decrypted lane is checked against ``reference_sobel``.  The acceptance
bar is a >= 3x amortized speedup on the mock backend (the lane-lowered
program costs ~2-3x the base program per evaluation — two rotations and one
extra plaintext multiply per original rotation — while answering up to
``capacity`` requests at once).

Runs standalone (``python benchmarks/bench_serving_amortized.py``) for the CI
smoke, or under pytest-benchmark with the rest of the suite.
"""

from __future__ import annotations

import json
import sys
import time

import numpy as np

from repro.apps.sobel import build_sobel_program, random_image, reference_sobel
from repro.backend import MockBackend
from repro.serving import EvaServer

try:
    from conftest import print_table
except ImportError:  # standalone invocation without the benchmarks conftest
    def print_table(title, header, rows):
        print(f"\n=== {title} ===")
        for row in [header] + rows:
            print("  ".join(str(cell).ljust(18) for cell in row))

#: Side length of each request's image (64-pixel lanes).
IMAGE_SIZE = 8
#: Lane width implied by the image.
LANE = IMAGE_SIZE * IMAGE_SIZE
#: Ciphertext slot budget: 16 images per ciphertext.
VEC_SIZE = 16 * LANE
#: Served requests per measured run.
NUM_REQUESTS = 32
#: Reference-comparison tolerance (mock noise + sqrt approximation).
ATOL = 1e-2
#: Acceptance bar for the amortized speedup.
MIN_SPEEDUP = 3.0


def make_requests(count: int = NUM_REQUESTS):
    images = [random_image(IMAGE_SIZE, seed=seed) for seed in range(count)]
    return images, [{"image": image.reshape(-1)} for image in images]


def check(images, responses) -> None:
    for image, response in zip(images, responses):
        expected = reference_sobel(image).reshape(-1)
        np.testing.assert_allclose(response["edges"], expected, atol=ATOL)


def run(benchmark=None) -> float:
    program = build_sobel_program(IMAGE_SIZE, scale=30, vec_size=VEC_SIZE)
    images, requests = make_requests()
    # batch_window stays 0 so the solo phase is not (unfairly) slowed by a
    # straggler-collection linger: batching below comes purely from requests
    # queueing up while the single worker is busy evaluating.
    server = EvaServer(
        backend=MockBackend(seed=3),
        workers=1,
        max_batch=VEC_SIZE // LANE,
        batch_window=0.0,
    )
    server.register("sobel", program)

    # Warm both paths: base compilation + its session, then one batched round
    # to compile the lane variant and generate its session keys.
    server.request("sobel", requests[0])
    for future in [server.submit("sobel", r) for r in requests[: VEC_SIZE // LANE]]:
        future.result(120)

    start = time.perf_counter()
    solo_responses = [server.request("sobel", r) for r in requests]
    solo_seconds = time.perf_counter() - start
    check(images, solo_responses)
    assert all(r.batch_size == 1 for r in solo_responses)

    start = time.perf_counter()
    futures = [server.submit("sobel", r) for r in requests]
    batched_responses = [future.result(120) for future in futures]
    batched_seconds = time.perf_counter() - start
    check(images, batched_responses)
    largest = max(r.batch_size for r in batched_responses)
    assert largest > 1, "requests were never lane-batched"
    assert any(r.lane_width == LANE for r in batched_responses)

    speedup = solo_seconds / max(batched_seconds, 1e-12)
    print_table(
        "Amortized serving latency: rotation-bearing Sobel, solo vs lane-batched",
        ["Path", "Total (s)", "Per request (ms)", "Speedup"],
        [
            [
                "solo (1 eval/request)",
                f"{solo_seconds:.3f}",
                f"{solo_seconds / NUM_REQUESTS * 1e3:.2f}",
                "1.0x",
            ],
            [
                f"lane-batched (<= {VEC_SIZE // LANE}/eval)",
                f"{batched_seconds:.3f}",
                f"{batched_seconds / NUM_REQUESTS * 1e3:.2f}",
                f"{speedup:.1f}x",
            ],
        ],
    )
    print(f"  largest batch {largest}, lane width {LANE}, vec size {VEC_SIZE}")

    assert speedup >= MIN_SPEEDUP, (
        f"lane-batched path only {speedup:.2f}x faster than solo "
        f"({batched_seconds:.3f}s vs {solo_seconds:.3f}s)"
    )

    payload = {
        "benchmark": "serving_amortized",
        "requests": NUM_REQUESTS,
        "lane_width": LANE,
        "vec_size": VEC_SIZE,
        "solo_seconds": solo_seconds,
        "batched_seconds": batched_seconds,
        "largest_batch": largest,
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
    }
    print(json.dumps(payload))

    if benchmark is not None:
        # Benchmark target: one full batched round end to end.
        def batched_round():
            futures = [server.submit("sobel", r) for r in requests]
            for future in futures:
                future.result(120)

        benchmark.pedantic(batched_round, rounds=3, iterations=1)
    else:
        # Standalone (CI) runs leave the payload on disk for the regression
        # gate and artifact upload.  Fresh output lives under bench-out/ so
        # it can never collide with the committed BENCH_* baseline on a
        # case-insensitive filesystem.
        import os

        os.makedirs("bench-out", exist_ok=True)
        with open(
            "bench-out/serving_amortized.json", "w", encoding="utf-8"
        ) as handle:
            json.dump(payload, handle, indent=2)
    server.close()
    return speedup


def test_serving_amortized(benchmark):
    run(benchmark)


if __name__ == "__main__":
    achieved = run(None)
    print(f"amortized speedup ok: {achieved:.1f}x >= {MIN_SPEEDUP:.0f}x")
    sys.exit(0)
