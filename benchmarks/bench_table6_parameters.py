"""Table 6: encryption parameters selected by CHET and EVA.

For every network and both policies, the reproduction reports ``log2 N``,
``log2 Q`` and the modulus-chain length ``r`` chosen by the parameter-selection
pass.  The paper's shape — EVA selects a strictly shorter modulus chain, a
smaller total modulus, and an equal or one-step-smaller polynomial degree —
is asserted for every network.
"""

from __future__ import annotations


from repro.core import CompilerOptions
from repro.nn import DnnCompiler

from conftest import NETWORK_NAMES, NETWORK_SCALES, print_table


def test_table6_encryption_parameters(benchmark, workspace):
    rows = []
    for name in NETWORK_NAMES:
        chet = workspace.compiled(name, "chet").compilation.parameters.summary()
        eva = workspace.compiled(name, "eva").compilation.parameters.summary()
        rows.append(
            [
                name,
                chet["log_n"],
                chet["log_q"],
                chet["r"],
                eva["log_n"],
                eva["log_q"],
                eva["r"],
            ]
        )
        # Table 6 shape: EVA's chain is shorter and its modulus smaller.
        assert eva["r"] < chet["r"]
        assert eva["log_q"] < chet["log_q"]
        assert eva["log_n"] <= chet["log_n"]
    print_table(
        "Table 6: encryption parameters selected by CHET and EVA",
        ["Model", "CHET logN", "CHET logQ", "CHET r", "EVA logN", "EVA logQ", "EVA r"],
        rows,
    )

    # Benchmark target: full compilation (transform + validate + select) of
    # LeNet-5-small under the EVA policy.
    network = workspace.network("LeNet-5-small")
    compiler = DnnCompiler(NETWORK_SCALES["LeNet-5-small"], CompilerOptions(policy="eva"))
    benchmark.pedantic(lambda: compiler.compile(network), rounds=3, iterations=1)
