"""Shared fixtures for the benchmark harness.

Every benchmark file regenerates one table or figure of the paper's Section 8.
Expensive artifacts (trained networks, compiled programs) are built lazily and
cached for the whole benchmark session so that individual benchmark files can
be run in isolation without paying repeated compilation costs.

Run with::

    pytest benchmarks/ --benchmark-only -s

The ``-s`` flag shows the reproduced table rows, which are printed to stdout.
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from repro.backend import MockBackend
from repro.core import CompilerOptions
from repro.nn import (
    CompiledNetwork,
    DnnCompiler,
    ImageDataset,
    Network,
    ScaleConfig,
    build_model,
    synthetic_image_dataset,
    train_readout,
)

#: Networks evaluated by the DNN benchmarks (Tables 3-7, Figure 7).
NETWORK_NAMES = [
    "LeNet-5-small",
    "LeNet-5-medium",
    "LeNet-5-large",
    "Industrial",
    "SqueezeNet-CIFAR",
]

#: Programmer-specified scales per network (Table 4's logP columns).
NETWORK_SCALES: Dict[str, ScaleConfig] = {
    "LeNet-5-small": ScaleConfig(cipher=25, vector=15, scalar=10, output=30),
    "LeNet-5-medium": ScaleConfig(cipher=25, vector=15, scalar=10, output=30),
    "LeNet-5-large": ScaleConfig(cipher=25, vector=20, scalar=10, output=25),
    "Industrial": ScaleConfig(cipher=30, vector=15, scalar=10, output=30),
    "SqueezeNet-CIFAR": ScaleConfig(cipher=25, vector=15, scalar=10, output=30),
}

#: Networks whose dense read-out is trained on the synthetic dataset.
TRAINABLE = {"LeNet-5-small", "LeNet-5-medium", "LeNet-5-large"}


def print_table(title: str, header: list, rows: list) -> None:
    """Print a reproduced table in a compact aligned format."""
    widths = [
        max(len(str(header[i])), max((len(str(row[i])) for row in rows), default=0))
        for i in range(len(header))
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


class BenchmarkWorkspace:
    """Lazily built and cached networks, datasets, and compiled programs."""

    def __init__(self) -> None:
        self._networks: Dict[str, Network] = {}
        self._datasets: Dict[str, ImageDataset] = {}
        self._compiled: Dict[Tuple[str, str], CompiledNetwork] = {}

    def dataset(self, name: str) -> ImageDataset:
        if name not in self._datasets:
            network = build_model(name)
            num_classes = network.layers[-1].out_features if name in TRAINABLE else 10
            self._datasets[name] = synthetic_image_dataset(
                num_classes=num_classes,
                image_shape=network.input_shape,
                train_per_class=12,
                test_per_class=2,
                seed=hash(name) % 1000,
            )
        return self._datasets[name]

    def network(self, name: str) -> Network:
        if name not in self._networks:
            network = build_model(name)
            if name in TRAINABLE:
                train_readout(network, self.dataset(name), epochs=400, learning_rate=1.0)
            self._networks[name] = network
        return self._networks[name]

    def compiled(self, name: str, policy: str) -> CompiledNetwork:
        key = (name, policy)
        if key not in self._compiled:
            compiler = DnnCompiler(
                NETWORK_SCALES[name], CompilerOptions(policy=policy)
            )
            self._compiled[key] = compiler.compile(self.network(name))
        return self._compiled[key]

    def test_images(self, name: str, count: int = 8):
        dataset = self.dataset(name)
        return dataset.test_images[:count], dataset.test_labels[:count]


_WORKSPACE = BenchmarkWorkspace()


@pytest.fixture(scope="session")
def workspace() -> BenchmarkWorkspace:
    return _WORKSPACE


@pytest.fixture(scope="session")
def mock_backend() -> MockBackend:
    return MockBackend(seed=2024)
