"""Table 8: arithmetic, statistical ML, and image processing applications.

Per application: the vector size, the lines of code of its PyEVA builder
(the paper's point is that each fits in a few tens of lines), and the
single-thread execution time on the mock backend.  The image-processing
programs additionally check their output against the NumPy reference.
"""

from __future__ import annotations

import inspect
import time

import numpy as np

from repro.apps import (
    build_harris_program,
    build_linear_regression_program,
    build_multivariate_regression_program,
    build_path_length_program,
    build_polynomial_regression_program,
    build_sobel_program,
    random_image,
    random_path,
)
from repro.apps import harris, path_length, regression, sobel
from repro.backend import MockBackend
from repro.api import Executor

from conftest import print_table

#: Image side used for the image-processing rows (paper: 64x64 -> 4096 slots).
IMAGE_SIZE = 32


def loc_of(function) -> int:
    """Lines of code of an application builder (the Table 8 LoC column)."""
    return len(inspect.getsource(function).splitlines())


def application_rows():
    rng = np.random.default_rng(0)
    image = random_image(IMAGE_SIZE, seed=1).reshape(-1)
    path = random_path(1024, seed=2)
    return [
        (
            "3-dimensional Path Length",
            build_path_length_program(num_points=1024),
            path,
            loc_of(path_length.build_path_length_program),
        ),
        (
            "Linear Regression",
            build_linear_regression_program(vec_size=2048),
            {"x": rng.uniform(-1, 1, 2048)},
            loc_of(regression.build_linear_regression_program),
        ),
        (
            "Polynomial Regression",
            build_polynomial_regression_program(vec_size=4096),
            {"x": rng.uniform(-1, 1, 4096)},
            loc_of(regression.build_polynomial_regression_program),
        ),
        (
            "Multivariate Regression",
            build_multivariate_regression_program(vec_size=2048),
            {f"x{i}": rng.uniform(-1, 1, 2048) for i in range(5)},
            loc_of(regression.build_multivariate_regression_program),
        ),
        (
            "Sobel Filter Detection",
            build_sobel_program(image_size=IMAGE_SIZE),
            {"image": image},
            loc_of(sobel.build_sobel_program),
        ),
        (
            "Harris Corner Detection",
            build_harris_program(image_size=IMAGE_SIZE),
            {"image": image},
            loc_of(harris.build_harris_program),
        ),
    ]


def test_table8_applications(benchmark):
    rows = []
    harris_runner = None
    for name, program, inputs, loc in application_rows():
        compiled = program.compile()
        executor = Executor(compiled, MockBackend(seed=3))
        start = time.perf_counter()
        executor.execute(inputs)
        elapsed = time.perf_counter() - start
        rows.append([name, program.vec_size, loc, f"{elapsed:.3f}"])
        if name == "Harris Corner Detection":
            harris_runner = (executor, inputs)
        # Table 8's point: each application is a few tens of lines of PyEVA.
        assert loc < 60
    print_table(
        "Table 8: applications written in PyEVA (1 thread, mock backend)",
        ["Application", "Vector size", "LoC", "Time (s)"],
        rows,
    )

    # Benchmark target: Harris corner detection, the paper's most complex app.
    executor, inputs = harris_runner
    benchmark.pedantic(lambda: executor.execute(inputs), rounds=3, iterations=1)
