"""Table 7: compilation, encryption-context, encryption, and decryption times.

The encryption-context column covers key generation (public, relinearization,
and Galois keys); in this reproduction it is measured on the mock backend,
whose context setup is intentionally cheap, so the compile / encrypt / decrypt
columns are the meaningful ones and the shape to check is that they remain
negligible next to inference (as the paper reports).
"""

from __future__ import annotations

import time


from repro.backend import MockBackend
from repro.api import CompilerOptions, Executor
from repro.nn import DnnCompiler

from conftest import NETWORK_NAMES, NETWORK_SCALES, print_table


def measure(workspace, name: str):
    network = workspace.network(name)
    compiler = DnnCompiler(NETWORK_SCALES[name], CompilerOptions(policy="eva"))
    start = time.perf_counter()
    compiled = compiler.compile(network)
    compile_seconds = time.perf_counter() - start

    backend = MockBackend(seed=0)
    executor = Executor(compiled.compilation, backend=backend)
    image = workspace.test_images(name, 1)[0][0]
    result = executor.execute(compiled.image_to_inputs(image))
    stats = result.stats
    return compile_seconds, stats.context_seconds, stats.encrypt_seconds, stats.decrypt_seconds


def test_table7_compile_and_context_times(benchmark, workspace):
    rows = []
    for name in NETWORK_NAMES:
        compile_s, context_s, encrypt_s, decrypt_s = measure(workspace, name)
        rows.append(
            [
                name,
                f"{compile_s:.2f}",
                f"{context_s:.4f}",
                f"{encrypt_s:.4f}",
                f"{decrypt_s:.4f}",
            ]
        )
        # The paper's observation: these costs are small (seconds, not minutes).
        assert compile_s < 60.0
    print_table(
        "Table 7: compilation, context, encryption, and decryption times (seconds)",
        ["Model", "Compilation", "Context", "Encrypt", "Decrypt"],
        rows,
    )

    # Benchmark target: compiling the smallest network.
    network = workspace.network("LeNet-5-small")
    compiler = DnnCompiler(NETWORK_SCALES["LeNet-5-small"], CompilerOptions(policy="eva"))
    benchmark.pedantic(lambda: compiler.compile(network), rounds=3, iterations=1)
