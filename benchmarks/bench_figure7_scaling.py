"""Figure 7: strong scaling of CHET and EVA from 1 to 56 threads.

For each network and thread count, the schedule simulator reports the makespan
of the compiled program under the appropriate scheduling discipline (CHET:
bulk-synchronous per kernel; EVA: whole-program DAG).  The figure's shape —
EVA scales substantially better because it exploits parallelism across tensor
kernels — is asserted by comparing the self-relative speedups at 56 threads.
"""

from __future__ import annotations


from repro.core import simulate_schedule

from conftest import print_table

THREAD_COUNTS = [1, 7, 14, 28, 56]
#: Networks plotted in Figure 7 (LeNet-5-small is omitted there as too small).
FIGURE7_NETWORKS = ["LeNet-5-medium", "LeNet-5-large", "Industrial", "SqueezeNet-CIFAR"]


def scaling_curve(workspace, name: str, policy: str):
    compiled = workspace.compiled(name, policy).compilation
    discipline = "dag" if policy == "eva" else "kernel"
    return {
        threads: simulate_schedule(compiled, threads=threads, discipline=discipline).makespan_seconds
        for threads in THREAD_COUNTS
    }


def test_figure7_strong_scaling(benchmark, workspace):
    rows = []
    for name in FIGURE7_NETWORKS:
        chet = scaling_curve(workspace, name, "chet")
        eva = scaling_curve(workspace, name, "eva")
        for policy, curve in (("CHET", chet), ("EVA", eva)):
            rows.append(
                [name, policy]
                + [f"{curve[t]:.3f}" for t in THREAD_COUNTS]
                + [f"{curve[1] / curve[56]:.1f}x"]
            )
        eva_speedup = eva[1] / eva[56]
        chet_speedup = chet[1] / chet[56]
        # Figure 7 shape: EVA's DAG schedule scales better than CHET's
        # bulk-synchronous schedule, and EVA is faster at every thread count.
        assert eva_speedup >= chet_speedup * 0.9
        for threads in THREAD_COUNTS:
            assert eva[threads] <= chet[threads]
    print_table(
        "Figure 7: modeled strong scaling (seconds per inference)",
        ["Model", "Compiler"] + [f"{t} thr" for t in THREAD_COUNTS] + ["Speedup 1->56"],
        rows,
    )

    # Benchmark target: one 56-thread schedule simulation.
    compiled = workspace.compiled("LeNet-5-medium", "eva").compilation
    benchmark.pedantic(
        lambda: simulate_schedule(compiled, threads=56, discipline="dag"),
        rounds=3,
        iterations=1,
    )
