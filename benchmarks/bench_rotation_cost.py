"""Rotation cost of lane batching: the lane tax, before and after clawback.

Lane lowering (PR 6) made rotation-bearing kernels batchable, but at a
price — every rotation became a masked pair, doubling both the rotation
count per evaluation and the Galois key set a client must generate and
upload per session.  This benchmark measures what the rotation-cost layer
(hoisted wrap composition + rotation hoisting + BSGS key decomposition)
claws back on the paper's two rotation-heavy kernels, Sobel and Harris:

* **rotation ratio** — ROT ops per batched evaluation over ROT ops per
  unbatched (solo) evaluation.  One batched evaluation serves a full
  ciphertext of lanes, so anything near 1.0 means batching is effectively
  rotation-free; the acceptance bar is <= 1.2x.
* **per-session Galois key bytes** — modeled key-set size (steps x
  per-key bytes at the compilation's own parameters) a client uploads in
  ``create_session`` for the lane variant, optimized versus the PR 7
  baseline (``hoist_rotations=False, bsgs_rotations="off"``).  The
  acceptance bar is a >= 2x reduction.

Both metrics are compile-time facts — deterministic across hosts, which is
why they are the gated metrics in check_regression.py.  Runs standalone
(``python benchmarks/bench_rotation_cost.py``) for the CI gate, or under
pytest-benchmark with the rest of the suite (the benchmark target is the
optimized lane-variant compilation itself).
"""

from __future__ import annotations

import json
import sys

from repro.apps.harris import build_harris_program
from repro.apps.sobel import build_sobel_program
from repro.backend.cost_model import DEFAULT_COST_MODEL
from repro.core import CompilerOptions, compile_program
from repro.core.types import Op

try:
    from conftest import print_table
except ImportError:  # standalone invocation without the benchmarks conftest
    def print_table(title, header, rows):
        print(f"\n=== {title} ===")
        for row in [header] + rows:
            print("  ".join(str(cell).ljust(18) for cell in row))

#: Image side; 64-pixel lanes keep the compilations fast and match the
#: golden lane tests in tests/test_lane_lowering.py.
IMAGE_SIZE = 8
LANE = IMAGE_SIZE**2
#: Acceptance bar: batched rotations per evaluation vs unbatched.
MAX_ROTATION_RATIO = 1.2
#: Acceptance bar: baseline key bytes over optimized key bytes.
MIN_KEYS_RATIO = 2.0

#: The PR 7 baseline: masked-pair lowering, no hoisting, direct keys.
BASELINE = dict(hoist_rotations=False, bsgs_rotations="off")


def rotation_count(compilation) -> int:
    counts = compilation.program.op_counts()
    return counts.get(Op.ROTATE_LEFT, 0) + counts.get(Op.ROTATE_RIGHT, 0)


def session_key_bytes(compilation) -> int:
    """Modeled Galois key upload for one session of this compilation."""
    parameters = compilation.parameters
    return len(parameters.rotation_steps) * DEFAULT_COST_MODEL.galois_key_bytes(
        parameters.poly_modulus_degree,
        max(len(parameters.coeff_modulus_bits), 1),
    )


def measure(build, vec_factor: int):
    program = build(IMAGE_SIZE, vec_size=vec_factor * LANE)
    unbatched = compile_program(program.graph)
    optimized = compile_program(
        program.graph, options=CompilerOptions(lane_width=LANE)
    )
    baseline = compile_program(
        program.graph, options=CompilerOptions(lane_width=LANE, **BASELINE)
    )
    solo_rotations = rotation_count(unbatched)
    lane_rotations = rotation_count(optimized)
    return {
        "vec_size": vec_factor * LANE,
        "lane_width": LANE,
        "lane_capacity": vec_factor,
        "unbatched_rotations": solo_rotations,
        "batched_rotations": lane_rotations,
        "rotation_ratio": lane_rotations / max(solo_rotations, 1),
        "unbatched_key_steps": len(unbatched.rotation_steps),
        "optimized_key_steps": len(optimized.rotation_steps),
        "baseline_key_steps": len(baseline.rotation_steps),
        "optimized_key_bytes": session_key_bytes(optimized),
        "baseline_key_bytes": session_key_bytes(baseline),
    }


def run(benchmark=None) -> dict:
    kernels = {
        "sobel": measure(build_sobel_program, 8),
        "harris": measure(build_harris_program, 4),
    }
    baseline_bytes = sum(k["baseline_key_bytes"] for k in kernels.values())
    optimized_bytes = sum(k["optimized_key_bytes"] for k in kernels.values())
    keys_ratio = baseline_bytes / max(optimized_bytes, 1)

    print_table(
        f"Lane tax on {IMAGE_SIZE}x{IMAGE_SIZE} kernels "
        f"(lane {LANE}, PR 7 baseline vs optimized)",
        ["Kernel", "Solo ROTs", "Lane ROTs", "Ratio", "Keys base", "Keys opt"],
        [
            [
                name,
                k["unbatched_rotations"],
                k["batched_rotations"],
                f"{k['rotation_ratio']:.3f}x",
                k["baseline_key_steps"],
                k["optimized_key_steps"],
            ]
            for name, k in kernels.items()
        ],
    )
    print(
        f"  session key upload: baseline {baseline_bytes / 1e6:.2f} MB -> "
        f"optimized {optimized_bytes / 1e6:.2f} MB ({keys_ratio:.2f}x smaller)"
    )

    for name, k in kernels.items():
        assert k["rotation_ratio"] <= MAX_ROTATION_RATIO, (
            f"{name}: batched evaluation costs {k['batched_rotations']} "
            f"rotations vs {k['unbatched_rotations']} unbatched "
            f"({k['rotation_ratio']:.3f}x > {MAX_ROTATION_RATIO}x)"
        )
    assert keys_ratio >= MIN_KEYS_RATIO, (
        f"per-session Galois key bytes only {keys_ratio:.2f}x smaller than "
        f"the PR 7 baseline (need >= {MIN_KEYS_RATIO}x)"
    )

    payload = {
        "benchmark": "rotation_cost",
        "image_size": IMAGE_SIZE,
        "max_rotation_ratio": MAX_ROTATION_RATIO,
        "min_keys_ratio": MIN_KEYS_RATIO,
        "keys": {
            "baseline_bytes": baseline_bytes,
            "optimized_bytes": optimized_bytes,
            "ratio": keys_ratio,
        },
        **kernels,
    }
    print(json.dumps(payload))

    if benchmark is not None:
        program = build_sobel_program(IMAGE_SIZE, vec_size=8 * LANE)
        benchmark.pedantic(
            lambda: compile_program(
                program.graph, options=CompilerOptions(lane_width=LANE)
            ),
            rounds=3,
            iterations=1,
        )
    else:
        import os

        os.makedirs("bench-out", exist_ok=True)
        with open(
            "bench-out/rotation_cost.json", "w", encoding="utf-8"
        ) as handle:
            json.dump(payload, handle, indent=2)
    return payload


def test_rotation_cost(benchmark):
    run(benchmark)


if __name__ == "__main__":
    result = run(None)
    print(
        f"rotation cost ok: ratios "
        f"sobel {result['sobel']['rotation_ratio']:.3f}x, "
        f"harris {result['harris']['rotation_ratio']:.3f}x "
        f"<= {MAX_ROTATION_RATIO}x; keys {result['keys']['ratio']:.2f}x "
        f">= {MIN_KEYS_RATIO}x"
    )
    sys.exit(0)
