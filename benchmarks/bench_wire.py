"""Bytes-on-wire and session-setup latency: binary frames vs JSON lines.

The serving stack speaks two protocols on the same listener — the legacy
JSON-lines encoding and the ``repro.wire`` binary framing (varint-tagged
records, raw little-endian blobs, chunked streaming uploads).  This
benchmark quantifies what the binary path buys on the one workload where
encoding actually dominates: shipping a client's evaluation-key set
(public + relin + galois keys, several MB for a rotation program) in
``create_session``, followed by an encrypted submit.

Both clients talk to the *same* ``EvaTcpServer`` over real sockets; the
only variable is ``ServingClient(wire=...)``.  Measured:

* **bytes on wire** — client-side ``bytes_sent + bytes_received`` for one
  session creation plus one encrypted request/response.  JSON pays base64
  (4/3 expansion) on every key and ciphertext blob; binary ships raw
  bytes.  The acceptance bar is a >= 1.3x reduction, and the ratio is
  deterministic (blob sizes are fixed by the parameter set), which is why
  it is the gated metric in check_regression.py.
* **session-setup latency** — min-of-N wall clock for ``create_session``
  on a warm connection.  Binary skips the multi-MB base64 encode, the
  giant-string JSON parse, and streams the key set as chunked frames.
  Latency is asserted faster here but not CI-gated (too noisy on shared
  runners).

Uses the real RNS-CKKS backend so the key material is genuine (the mock
backend's key export has no blobs to speak of).  Runs standalone
(``python benchmarks/bench_wire.py``) for the CI smoke, or under
pytest-benchmark with the rest of the suite.
"""

from __future__ import annotations

import json
import sys
import time

import numpy as np

from repro.api import ClientKit, CompiledProgram
from repro.backend import CkksBackend
from repro.core.compiler import CompilerOptions
from repro.core.executor import execute_reference
from repro.frontend import EvaProgram, input_encrypted, output
from repro.serving import EvaServer, EvaTcpServer, ServingClient

try:
    from conftest import print_table
except ImportError:  # standalone invocation without the benchmarks conftest
    def print_table(title, header, rows):
        print(f"\n=== {title} ===")
        for row in [header] + rows:
            print("  ".join(str(cell).ljust(18) for cell in row))

#: Slot count: degree 4096 under the pure-python CKKS profile, which puts
#: the exported key set (public + relin + 2 galois keys) in the low MB —
#: big enough to cross the binary path's chunked-streaming threshold.
VEC_SIZE = 512
#: Pure-python CKKS supports coefficient primes <= 30 bits.
OPTIONS = CompilerOptions(max_rescale_bits=25)
#: Session creations per protocol; latency is the min across reps.
SETUP_REPS = 3
#: Acceptance bar for bytes-on-wire reduction (JSON bytes / binary bytes).
MIN_BYTES_RATIO = 1.3
#: Decrypted-output tolerance against the plaintext reference.
ATOL = 0.05


def make_rotation_program() -> EvaProgram:
    """A rotation-bearing polynomial: galois keys make the key set heavy."""
    program = EvaProgram("rotpoly", vec_size=VEC_SIZE, default_scale=25)
    with program:
        x = input_encrypted("x", 25)
        output("y", x * x * 0.5 + (x << 1) + (x << 4) + 1.0, 25)
    return program


def measure_mode(host: str, port: int, mode: str, kit, xv: np.ndarray):
    """One protocol's numbers: setup latency (min-of-N) and total bytes."""
    setup_seconds = []
    for rep in range(SETUP_REPS):
        with ServingClient(host, port, wire=mode) as client:
            start = time.perf_counter()
            session = client.create_session(
                "rotpoly", kit, client_id=f"{mode}-{rep}"
            )
            setup_seconds.append(time.perf_counter() - start)
            assert session["client_id"] == f"{mode}-{rep}"

    # Bytes for the canonical workload — one session + one encrypted
    # roundtrip — on a single connection, isolated from the reps above.
    with ServingClient(host, port, wire=mode) as client:
        assert client.protocol == ("binary" if mode == "binary" else "json")
        client.create_session("rotpoly", kit, client_id=f"{mode}-bytes")
        setup_bytes = client.bytes_sent + client.bytes_received
        outputs = client.submit_encrypted(
            "rotpoly", kit, {"x": xv}, client_id=f"{mode}-bytes"
        )
        total_bytes = client.bytes_sent + client.bytes_received
    reference = execute_reference(kit.compiled.source, {"x": xv})
    assert np.max(np.abs(outputs["y"][: len(xv)] - reference["y"][: len(xv)])) < ATOL, (
        f"{mode} encrypted roundtrip diverged from reference"
    )
    return {
        "setup_seconds": min(setup_seconds),
        "setup_bytes": setup_bytes,
        "total_bytes": total_bytes,
    }


def run(benchmark=None) -> float:
    program = make_rotation_program()
    backend = CkksBackend(seed=11)
    server = EvaServer(backend=backend, workers=1, batch_window=0.0,
                       session_capacity=16)
    server.register("rotpoly", program, options=OPTIONS)
    tcp = EvaTcpServer(server, port=0)
    tcp.start_background()
    host, port = tcp.address

    kit = ClientKit(
        CompiledProgram.compile(program.graph, options=OPTIONS),
        backend=backend,
        client_id="bench",
    )
    key_bytes = len(json.dumps(kit.export_evaluation_keys()).encode("utf-8"))
    xv = np.linspace(-1.0, 1.0, 32)

    try:
        results = {
            mode: measure_mode(host, port, mode, kit, xv)
            for mode in ("json", "binary")
        }
    finally:
        tcp.shutdown()
        tcp.server_close()
        server.close()

    ratio = results["json"]["total_bytes"] / max(results["binary"]["total_bytes"], 1)
    speedup = results["json"]["setup_seconds"] / max(
        results["binary"]["setup_seconds"], 1e-12
    )
    print_table(
        "Wire protocol: session + encrypted submit, JSON lines vs binary frames",
        ["Protocol", "Setup (ms)", "Setup bytes", "Total bytes"],
        [
            [
                mode,
                f"{results[mode]['setup_seconds'] * 1e3:.1f}",
                f"{results[mode]['setup_bytes']:,}",
                f"{results[mode]['total_bytes']:,}",
            ]
            for mode in ("json", "binary")
        ],
    )
    print(
        f"  key set {key_bytes / 1e6:.2f} MB (json-encoded); "
        f"bytes ratio {ratio:.3f}x, setup speedup {speedup:.2f}x"
    )

    assert ratio >= MIN_BYTES_RATIO, (
        f"binary wire only {ratio:.3f}x smaller than JSON "
        f"({results['binary']['total_bytes']:,} vs "
        f"{results['json']['total_bytes']:,} bytes)"
    )
    assert speedup > 1.0, (
        f"binary session setup not faster: {results['binary']['setup_seconds']:.3f}s "
        f"vs JSON {results['json']['setup_seconds']:.3f}s"
    )

    payload = {
        "benchmark": "wire",
        "vec_size": VEC_SIZE,
        "key_json_bytes": key_bytes,
        "bytes": {
            "json": results["json"]["total_bytes"],
            "binary": results["binary"]["total_bytes"],
            "ratio": ratio,
            "min_ratio": MIN_BYTES_RATIO,
        },
        "setup": {
            "json_seconds": results["json"]["setup_seconds"],
            "binary_seconds": results["binary"]["setup_seconds"],
            "speedup": speedup,
        },
    }
    print(json.dumps(payload))

    if benchmark is not None:
        # Benchmark target: one binary-wire session creation end to end.
        def binary_setup():
            with ServingClient(host, port, wire="binary") as client:  # pragma: no cover
                client.create_session("rotpoly", kit, client_id="bench-loop")

        # The server is closed by now in the pytest-benchmark path; rebuild.
        server2 = EvaServer(backend=backend, workers=1, batch_window=0.0)
        server2.register("rotpoly", program, options=OPTIONS)
        tcp2 = EvaTcpServer(server2, port=0)
        tcp2.start_background()
        host, port = tcp2.address
        try:
            benchmark.pedantic(binary_setup, rounds=3, iterations=1)
        finally:
            tcp2.shutdown()
            tcp2.server_close()
            server2.close()
    else:
        # Standalone (CI) runs leave the payload on disk for the regression
        # gate and artifact upload; bench-out/ keeps fresh output from ever
        # colliding with the committed BENCH_* baseline.
        import os

        os.makedirs("bench-out", exist_ok=True)
        with open("bench-out/wire.json", "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
    return ratio


def test_wire(benchmark):
    run(benchmark)


if __name__ == "__main__":
    achieved = run(None)
    print(f"wire bytes ratio ok: {achieved:.2f}x >= {MIN_BYTES_RATIO:.1f}x")
    sys.exit(0)
