"""Table 5: average inference latency of CHET vs EVA on 56 threads.

The paper's testbed (SEAL on a 56-core Xeon) is replaced by the calibrated
cost model plus the schedule simulator: CHET-compiled programs run under the
bulk-synchronous per-kernel schedule and EVA-compiled programs under the
whole-program DAG schedule, both with 56 workers.  The reported speedups are
expected to preserve the paper's shape (EVA several times faster everywhere),
not its absolute seconds.  The measured wall-clock time of the mock-backend
execution (single thread) is reported alongside as a sanity column.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import simulate_schedule
from repro.nn import encrypted_inference

from conftest import NETWORK_NAMES, print_table

THREADS = 56


def modeled_latency(workspace, name: str, policy: str) -> float:
    compiled = workspace.compiled(name, policy)
    discipline = "dag" if policy == "eva" else "kernel"
    return simulate_schedule(
        compiled.compilation, threads=THREADS, discipline=discipline
    ).makespan_seconds


def test_table5_latency(benchmark, workspace, mock_backend):
    rows = []
    speedups = []
    for name in NETWORK_NAMES:
        chet_latency = modeled_latency(workspace, name, "chet")
        eva_latency = modeled_latency(workspace, name, "eva")
        compiled = workspace.compiled(name, "eva")
        image = workspace.test_images(name, 1)[0][0]
        start = time.perf_counter()
        encrypted_inference(compiled, image, backend=mock_backend)
        mock_seconds = time.perf_counter() - start
        speedup = chet_latency / max(eva_latency, 1e-12)
        speedups.append(speedup)
        rows.append(
            [
                name,
                f"{chet_latency:.3f}",
                f"{eva_latency:.3f}",
                f"{speedup:.1f}x",
                f"{mock_seconds:.2f}",
            ]
        )
        # Shape check: EVA is faster on every network (Table 5 shows 4.2x-7.3x).
        assert eva_latency <= chet_latency
    rows.append(["Geo-mean speedup", "", "", f"{float(np.exp(np.mean(np.log(speedups)))):.1f}x", ""])
    print_table(
        f"Table 5: modeled average latency on {THREADS} threads (seconds)",
        ["Model", "CHET (s)", "EVA (s)", "Speedup", "Mock exec wall (s)"],
        rows,
    )

    # Benchmark target: the 56-thread schedule simulation for LeNet-5-medium.
    compiled = workspace.compiled("LeNet-5-medium", "eva")
    benchmark.pedantic(
        lambda: simulate_schedule(compiled.compilation, threads=THREADS, discipline="dag"),
        rounds=3,
        iterations=1,
    )
