"""Real-backend CKKS kernel speedups: NTT-domain key switching vs reference.

The profiling harness (``repro.cli profile``) showed key switching dominating
every relinearization- and rotation-heavy program on the real backend: the
coefficient-domain path pays a full forward/inverse NTT pass per
decomposition digit per key prime, for every switch.  The evaluator now runs
key switching in the NTT (evaluation) domain — switching keys transformed
once and cached, digits transformed once and multiply-accumulated pointwise,
Galois automorphisms applied as index permutations of the cached digit
transforms so a *group* of rotations of one ciphertext shares a single
decomposition (SEAL-style hoisting).  The original coefficient-domain path
is retained as the property-test oracle (``fast_keyswitch=False``).

This benchmark times both paths on the real scheme and gates their ratio:

* **relinearize speedup** — NTT-domain vs reference relinearization of a
  freshly squared ciphertext (bit-exact agreement, asserted).
* **rotation-group speedup** — five rotations of one ciphertext, hoisted vs
  per-rotation reference key switching (decryption-level agreement: digit
  lifting does not commute with the automorphism's sign flips, so the two
  valid decompositions differ at noise level only).

Speedups are ratios of wall times measured back to back in one process, so
they transfer between hosts; the acceptance bar is >= 2x on both.  Runs
standalone for the CI gate or under pytest-benchmark with the suite.
"""

from __future__ import annotations

import json
import sys
import time

import numpy as np

from repro.ckks import (
    CkksContext,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
)

try:
    from conftest import print_table
except ImportError:  # standalone invocation without the benchmarks conftest
    def print_table(title, header, rows):
        print(f"\n=== {title} ===")
        for row in [header] + rows:
            print("  ".join(str(cell).ljust(18) for cell in row))

#: Ring dimension and modulus chain; 30+24+24+30 = 108 bits fits the 128-bit
#: security bound for N=4096 (109 bits) and keeps the bench CI-fast.
POLY_MODULUS_DEGREE = 4096
COEFF_MODULUS_BITS = (30, 24, 24, 30)
SCALE = float(2**26)
ROTATION_STEPS = (1, 2, 4, 8, 16)
#: Acceptance bar for both gated kernels.
MIN_SPEEDUP = 2.0
ROUNDS = 3


def _best_of(rounds, fn) -> float:
    """Best (minimum) wall time over ``rounds`` runs; robust to CI jitter."""
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _setup():
    context = CkksContext(POLY_MODULUS_DEGREE, COEFF_MODULUS_BITS)
    keygen = KeyGenerator(context, seed=7)
    relin_key = keygen.create_relin_key()
    galois_keys = keygen.create_galois_keys(ROTATION_STEPS)
    encryptor = Encryptor(context, keygen.create_public_key(), seed=11)
    decryptor = Decryptor(context, keygen.secret_key)
    fast = Evaluator(context, relin_key, galois_keys, fast_keyswitch=True)
    reference = Evaluator(context, relin_key, galois_keys, fast_keyswitch=False)
    rng = np.random.default_rng(3)
    values = rng.uniform(-1.0, 1.0, context.slots)
    cipher = encryptor.encode_and_encrypt(values, SCALE)
    return context, fast, reference, decryptor, values, cipher


def measure_relinearize(fast, reference, cipher) -> dict:
    squared = fast.multiply(cipher, cipher)
    # Warm both paths once: the fast evaluator builds and caches the key's
    # NTT form on first use; timing that one-off would flatter the reference.
    want = reference.relinearize(squared)
    got = fast.relinearize(squared)
    for a, b in zip(want.polys, got.polys):
        assert np.array_equal(a.residues, b.residues), (
            "NTT-domain relinearization must agree bit-exactly with the "
            "coefficient-domain reference"
        )
    ref_seconds = _best_of(ROUNDS, lambda: reference.relinearize(squared))
    fast_seconds = _best_of(ROUNDS, lambda: fast.relinearize(squared))
    return {
        "reference_seconds": ref_seconds,
        "fast_seconds": fast_seconds,
        "speedup": ref_seconds / fast_seconds,
    }


def measure_rotation_group(fast, reference, decryptor, values, cipher) -> dict:
    def rotate_all(evaluator):
        return [evaluator.rotate(cipher, step) for step in ROTATION_STEPS]

    rotated_ref = rotate_all(reference)
    rotated_fast = rotate_all(fast)
    for step, ref_ct, fast_ct in zip(ROTATION_STEPS, rotated_ref, rotated_fast):
        expected = np.roll(values, -step)
        for name, ct in (("reference", ref_ct), ("hoisted", fast_ct)):
            got = np.real(decryptor.decrypt(ct))
            err = float(np.max(np.abs(got - expected)))
            # Sanity bound, not a precision gate (the property tests pin
            # accuracy): hoisted digits differ from the reference at noise
            # level, so allow the same order of magnitude.
            assert err < 2e-2, f"{name} rotation by {step} drifted: {err:g}"
    ref_seconds = _best_of(ROUNDS, lambda: rotate_all(reference))
    fast_seconds = _best_of(ROUNDS, lambda: rotate_all(fast))
    return {
        "steps": len(ROTATION_STEPS),
        "reference_seconds": ref_seconds,
        "fast_seconds": fast_seconds,
        "speedup": ref_seconds / fast_seconds,
    }


def run(benchmark=None) -> dict:
    context, fast, reference, decryptor, values, cipher = _setup()
    relin = measure_relinearize(fast, reference, cipher)
    rotation = measure_rotation_group(fast, reference, decryptor, values, cipher)

    print_table(
        f"CKKS key-switch kernels at N={POLY_MODULUS_DEGREE} "
        f"(reference = coefficient domain)",
        ["Kernel", "Reference", "Fast", "Speedup"],
        [
            [
                "relinearize",
                f"{relin['reference_seconds'] * 1e3:.1f} ms",
                f"{relin['fast_seconds'] * 1e3:.1f} ms",
                f"{relin['speedup']:.2f}x",
            ],
            [
                f"rotate x{rotation['steps']}",
                f"{rotation['reference_seconds'] * 1e3:.1f} ms",
                f"{rotation['fast_seconds'] * 1e3:.1f} ms",
                f"{rotation['speedup']:.2f}x",
            ],
        ],
    )

    for name, result in (("relinearize", relin), ("rotation group", rotation)):
        assert result["speedup"] >= MIN_SPEEDUP, (
            f"{name}: NTT-domain key switching is only "
            f"{result['speedup']:.2f}x the reference (need >= {MIN_SPEEDUP}x)"
        )

    payload = {
        "benchmark": "ckks_kernels",
        "poly_modulus_degree": POLY_MODULUS_DEGREE,
        "coeff_modulus_bits": list(COEFF_MODULUS_BITS),
        "min_speedup": MIN_SPEEDUP,
        "relinearize": relin,
        "rotation_group": rotation,
    }
    print(json.dumps(payload))

    if benchmark is not None:
        squared = fast.multiply(cipher, cipher)
        benchmark.pedantic(
            lambda: fast.relinearize(squared), rounds=ROUNDS, iterations=1
        )
    else:
        import os

        os.makedirs("bench-out", exist_ok=True)
        with open("bench-out/ckks_kernels.json", "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
    return payload


def test_ckks_kernels(benchmark):
    run(benchmark)


if __name__ == "__main__":
    result = run(None)
    print(
        f"ckks kernels ok: relinearize {result['relinearize']['speedup']:.2f}x, "
        f"rotation group {result['rotation_group']['speedup']:.2f}x "
        f">= {MIN_SPEEDUP}x"
    )
    sys.exit(0)
