"""Table 4: input/output scales and encrypted-vs-unencrypted accuracy.

The paper's claim reproduced here: using the programmer-specified scaling
factors, fully-homomorphic inference with both the CHET baseline and the EVA
policy matches the unencrypted accuracy (negligible difference).  The
reproduction reports, per network and policy, the unencrypted accuracy, the
encrypted accuracy, and the prediction-agreement rate between encrypted and
unencrypted inference on the synthetic test set.
"""

from __future__ import annotations

import numpy as np

from repro.nn import encrypted_inference
from repro.nn.training import accuracy

from conftest import NETWORK_SCALES, print_table

#: Networks evaluated for accuracy (Industrial has no model, as in the paper).
ACCURACY_NETWORKS = ["LeNet-5-small", "LeNet-5-medium", "SqueezeNet-CIFAR"]
#: Encrypted test images per network (the paper uses 20; 8 keeps CI-scale time).
IMAGES_PER_NETWORK = 8


def evaluate(workspace, backend, name: str, policy: str):
    compiled = workspace.compiled(name, policy)
    network = workspace.network(name)
    images, labels = workspace.test_images(name, IMAGES_PER_NETWORK)
    correct = 0
    agreements = 0
    for image, label in zip(images, labels):
        logits = encrypted_inference(compiled, image, backend=backend)
        encrypted_prediction = int(np.argmax(logits))
        plaintext_prediction = network.predict(image)
        correct += int(encrypted_prediction == int(label))
        agreements += int(encrypted_prediction == plaintext_prediction)
    return 100.0 * correct / len(labels), 100.0 * agreements / len(labels)


def test_table4_encrypted_accuracy(benchmark, workspace, mock_backend):
    rows = []
    for name in ACCURACY_NETWORKS:
        scales = NETWORK_SCALES[name]
        network = workspace.network(name)
        images, labels = workspace.test_images(name, IMAGES_PER_NETWORK)
        plain_acc = 100.0 * accuracy(network, images, labels)
        chet_acc, chet_agree = evaluate(workspace, mock_backend, name, "chet")
        eva_acc, eva_agree = evaluate(workspace, mock_backend, name, "eva")
        rows.append(
            [
                name,
                int(scales.cipher),
                int(scales.vector),
                int(scales.scalar),
                int(scales.output),
                f"{plain_acc:.1f}",
                f"{chet_acc:.1f}",
                f"{eva_acc:.1f}",
                f"{chet_agree:.0f}/{eva_agree:.0f}",
            ]
        )
        # The paper's observation: encrypted accuracy tracks unencrypted accuracy.
        assert abs(eva_acc - plain_acc) <= 100.0 / IMAGES_PER_NETWORK + 1e-9
        assert eva_agree >= 100.0 * (IMAGES_PER_NETWORK - 1) / IMAGES_PER_NETWORK
    print_table(
        "Table 4: scaling factors and accuracy of homomorphic inference",
        [
            "Model",
            "Cipher",
            "Vector",
            "Scalar",
            "Output",
            "Plain acc (%)",
            "CHET acc (%)",
            "EVA acc (%)",
            "Agreement (CHET/EVA %)",
        ],
        rows,
    )

    # Benchmark target: one encrypted LeNet-5-small inference under EVA.
    compiled = workspace.compiled("LeNet-5-small", "eva")
    image = workspace.test_images("LeNet-5-small", 1)[0][0]
    benchmark.pedantic(
        lambda: encrypted_inference(compiled, image, backend=mock_backend),
        rounds=3,
        iterations=1,
    )
