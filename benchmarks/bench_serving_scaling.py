"""Shard-scaling throughput: 1, 2, and 4 EvaServer shard processes.

The single-process server is ultimately bounded by one interpreter;
:class:`~repro.serving.EvaCluster` scales past it by running N full
``EvaServer`` shards in their own processes and consistent-hash-routing each
client to one of them.  This benchmark measures end-to-end request throughput
(TCP transport, routing, queueing, evaluation) at 1, 2, and 4 shards and
asserts the sharded topology actually pays: **>= 2x throughput at 4 shards
vs 1**.

The mock backend is run with a simulated per-operation hardware latency
(``op_latency``): real CKKS primitives cost milliseconds each, while the
plain mock executes in microseconds, so without it the measurement would
reflect the host's core count (CI runners have 2-4, this container has 1)
instead of the serving stack's ability to keep N shards busy.  With it, the
experiment is reproducible anywhere: per-request cost is dominated by
(simulated) evaluation time, and throughput scales with the number of shard
processes exactly as it would with real per-node FHE hardware.

Clients are chosen so the consistent-hash ring spreads them evenly over the
4-shard topology (the ring is deterministic, so this is reproducible); the
benchmark measures shard scaling, not hash luck.  Each client submits its
requests serially — as independent clients would — from its own thread.

Runs standalone (``python benchmarks/bench_serving_scaling.py``) for CI, or
under pytest-benchmark with the rest of the suite.  Standalone runs also
write ``bench-out/serving_scaling.json`` for the CI regression gate and
artifact upload.
"""

from __future__ import annotations

import json
import sys
import threading
import time

import numpy as np

from repro.api import execute_reference
from repro.frontend import EvaProgram, input_encrypted, output
from repro.serving import BackendSpec, ConsistentHashRing, EvaCluster

try:
    from conftest import print_table
except ImportError:  # standalone invocation without the benchmarks conftest
    def print_table(title, header, rows):
        print(f"\n=== {title} ===")
        for row in [header] + rows:
            print("  ".join(str(cell).ljust(18) for cell in row))

#: Shard counts measured (the assert compares the last against the first).
SHARD_COUNTS = (1, 2, 4)
#: Simulated hardware latency per homomorphic op (seconds).
OP_LATENCY = 0.003
#: Clients, spread evenly across the 4-shard ring.
NUM_CLIENTS = 12
#: Serial requests per client per measured run.
REQUESTS_PER_CLIENT = 4
#: Job-engine workers per shard (identical at every shard count).
WORKERS_PER_SHARD = 2
#: Logical width of each request.
REQUEST_WIDTH = 16
#: Ciphertext slot budget.
VEC_SIZE = 256
#: Reference-comparison tolerance (mock-exact backend).
ATOL = 1e-6
#: Acceptance bar: throughput at 4 shards vs 1 shard.
MIN_SPEEDUP = 2.0


def build_program() -> EvaProgram:
    program = EvaProgram("poly35", vec_size=VEC_SIZE, default_scale=25)
    with program:
        x = input_encrypted("x", 25)
        output("y", (x ** 2 + x * 0.5) * (x ** 2 - 1.0) + x, 25)
    return program


def pick_clients(count: int = NUM_CLIENTS) -> list:
    """Client ids that the deterministic ring spreads evenly over 4 shards."""
    ring = ConsistentHashRing(tuple(range(max(SHARD_COUNTS))))
    per_shard = count // max(SHARD_COUNTS)
    buckets = {node: [] for node in ring.nodes}
    candidate = 0
    while any(len(ids) < per_shard for ids in buckets.values()):
        client = f"client-{candidate}"
        candidate += 1
        home = ring.route(client)
        if len(buckets[home]) < per_shard:
            buckets[home].append(client)
    clients = [client for ids in buckets.values() for client in ids]
    assert len(clients) == count
    return clients


def run_shards(shards: int, program: EvaProgram, clients: list, requests) -> float:
    """Wall-clock seconds to serve every client's request stream."""
    cluster = EvaCluster(
        shards=shards,
        backend=BackendSpec("mock-exact", seed=7, op_latency=OP_LATENCY),
        workers=WORKERS_PER_SHARD,
        batch_window=0.0,
    )
    cluster.register("poly35", program)
    cluster.start()
    try:
        reference = execute_reference(program.graph, {"x": requests[0]})
        # Warm every (client, shard) pair: per-shard compilation and
        # per-client keygen are one-time costs, not the steady state.
        for client_id in clients:
            outputs = cluster.request(
                "poly35", {"x": requests[0]}, client_id=client_id
            )
            np.testing.assert_allclose(
                outputs["y"][:REQUEST_WIDTH], reference["y"][:REQUEST_WIDTH], atol=ATOL
            )

        errors = []

        def client_stream(client_id: str) -> None:
            try:
                for request in requests:
                    cluster.request("poly35", {"x": request}, client_id=client_id)
            except Exception as exc:  # noqa: BLE001 - surface in the main thread
                errors.append(exc)

        threads = [
            threading.Thread(target=client_stream, args=(client_id,), daemon=True)
            for client_id in clients
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        if errors:
            raise errors[0]
        return elapsed
    finally:
        cluster.close()


def run(benchmark=None) -> float:
    program = build_program()
    clients = pick_clients()
    rng = np.random.default_rng(42)
    requests = [rng.uniform(-1.0, 1.0, REQUEST_WIDTH) for _ in range(REQUESTS_PER_CLIENT)]
    total_requests = len(clients) * len(requests)

    results = {}
    for shards in SHARD_COUNTS:
        elapsed = run_shards(shards, program, clients, requests)
        results[shards] = {
            "seconds": elapsed,
            "throughput_per_second": total_requests / elapsed,
        }

    base = results[SHARD_COUNTS[0]]["throughput_per_second"]
    rows = []
    for shards in SHARD_COUNTS:
        throughput = results[shards]["throughput_per_second"]
        results[shards]["speedup"] = throughput / base
        rows.append(
            [
                shards,
                f"{results[shards]['seconds']:.3f}",
                f"{throughput:.1f}",
                f"{throughput / base:.2f}x",
            ]
        )
    print_table(
        f"Cluster scaling: {total_requests} requests, {len(clients)} clients, "
        f"op latency {OP_LATENCY * 1e3:.0f}ms",
        ["Shards", "Total (s)", "Requests/s", "Scaling"],
        rows,
    )

    speedup = results[max(SHARD_COUNTS)]["speedup"]
    payload = {
        "benchmark": "serving_scaling",
        "total_requests": total_requests,
        "op_latency_seconds": OP_LATENCY,
        "per_shards": {str(k): v for k, v in results.items()},
        "speedup_4_vs_1": speedup,
        "min_speedup": MIN_SPEEDUP,
    }
    print(json.dumps(payload))

    assert speedup >= MIN_SPEEDUP, (
        f"4 shards only {speedup:.2f}x the 1-shard throughput "
        f"(expected >= {MIN_SPEEDUP:.1f}x)"
    )

    if benchmark is not None:
        cluster = EvaCluster(
            shards=2,
            backend=BackendSpec("mock-exact", seed=7, op_latency=OP_LATENCY),
            workers=WORKERS_PER_SHARD,
            batch_window=0.0,
        )
        cluster.register("poly35", program)
        cluster.start()
        try:
            cluster.request("poly35", {"x": requests[0]}, client_id=clients[0])
            benchmark.pedantic(
                lambda: cluster.request(
                    "poly35", {"x": requests[0]}, client_id=clients[0]
                ),
                rounds=3,
                iterations=1,
            )
        finally:
            cluster.close()
    else:
        # bench-out/ keeps the fresh payload apart from the committed
        # BENCH_* baseline (which differs only by case — a collision on
        # case-insensitive filesystems).
        import os

        os.makedirs("bench-out", exist_ok=True)
        with open("bench-out/serving_scaling.json", "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
    return speedup


def test_serving_scaling(benchmark):
    run(benchmark)


if __name__ == "__main__":
    achieved = run(None)
    print(f"shard scaling ok: {achieved:.2f}x >= {MIN_SPEEDUP:.1f}x")
    sys.exit(0)
