"""CI regression gate: compare a fresh benchmark run against a committed baseline.

The serving benchmarks print (and, standalone, write) a JSON payload with a
``benchmark`` name and their headline metrics.  The repository commits one
baseline payload per gated benchmark (``BENCH_<name>.json`` at the repo
root); CI re-runs the benchmark and calls::

    python benchmarks/check_regression.py \
        --baseline BENCH_serving_scaling.json \
        --fresh bench_serving_scaling.json

which fails (exit 1) when any gated metric regressed by more than the
tolerance band (default 20%).  Metrics are chosen to be hardware-independent
where possible — speedups and amortization ratios, plus throughput under the
mock backend's *simulated* per-op latency, which dominates the measurement on
any host — so the committed numbers transfer between the dev container and
CI runners.

When a legitimate speedup lands, refresh the baseline by re-running the
benchmark and committing its fresh JSON over the old ``BENCH_*.json`` (see
README "Operating the cluster").
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Tuple

#: Gated metrics per benchmark: (dotted path, direction) or (dotted path,
#: direction, tolerance).  ``higher`` means bigger is better (a drop is a
#: regression); ``lower`` the opposite.  The optional third element pins the
#: tolerance band for that metric regardless of the run-wide ``--tolerance``
#: (for attainment-style fractions where 20% of slack would be meaningless).
GATES: Dict[str, List[Tuple]] = {
    "serving_scaling": [
        ("speedup_4_vs_1", "higher"),
        ("per_shards.4.throughput_per_second", "higher"),
    ],
    "serving_amortized": [
        ("speedup", "higher"),
    ],
    "wire": [
        # Bytes-on-wire reduction, JSON / binary, for one session creation
        # plus one encrypted submit.  Blob sizes are fixed by the parameter
        # set, so this ratio is deterministic across hosts; setup latency is
        # deliberately *not* gated (too noisy on shared runners).
        ("bytes.ratio", "higher"),
    ],
    "rotation_cost": [
        # Rotations per batched evaluation over unbatched, on the two
        # rotation-heavy kernels — the lane tax after hoisting.  Compile-time
        # op counts: deterministic across hosts.
        ("sobel.rotation_ratio", "lower"),
        ("harris.rotation_ratio", "lower"),
        # Per-session Galois key bytes, PR 7 baseline over optimized (BSGS +
        # shared wrap step).  A drop below the band means keygen dedup or the
        # planner regressed and clients upload fat key sets again.
        ("keys.ratio", "higher"),
    ],
    "cluster_fairness": [
        # Light-client p95 contended/solo: a *growing* ratio means the fair
        # queue is letting the greedy client win.  Run with a wide tolerance
        # (CI passes --tolerance 0.5): the ratio hovers near 1.0 but single
        # scheduler hiccups move it tens of percent on shared runners.
        ("fairness.ratio", "lower"),
        # Artifact-cache cold start: second-shard load vs first-shard
        # compile.  A drop below the band means shards went back to
        # recompiling what a sibling already published.
        ("coldstart.ratio", "higher"),
    ],
    "ckks_kernels": [
        # NTT-domain key switching vs the retained coefficient-domain
        # reference, timed back to back in one process on the real scheme —
        # ratios, so they transfer between hosts.  The pinned bands keep the
        # gate floor at or above the 2x acceptance bar instead of 20% under
        # whatever number was last committed.
        ("relinearize.speedup", "higher", 0.25),
        ("rotation_group.speedup", "higher", 0.6),
    ],
    "async_frontdoor": [
        # Idle connections the event loop held open while mixed JSON+binary
        # traffic flowed, and the fraction of that traffic answered
        # correctly.  Exact counts — near-zero bands.
        ("connections.sustained", "higher", 0.001),
        ("traffic.ok_fraction", "higher", 0.001),
    ],
    "slo_attainment": [
        # Fraction of tight requests finishing inside their deadline under a
        # relaxed flood.  Baseline 1.0 with a pinned 5% band: the gate is
        # "p99 attainment >= 0.95", not "within 20% of last time".
        ("tight.attainment", "higher", 0.05),
        # Relaxed throughput with SLO scheduling on, over the same flood with
        # no SLO fields at all.  Honoring tight deadlines must not cost
        # relaxed clients their batching amortization; the pinned 30% band
        # under a ~1.1x committed ratio puts the hard floor right at the
        # benchmark's own 0.8x bar while absorbing scheduler jitter.
        ("relaxed.throughput_ratio", "higher", 0.3),
    ],
}


def lookup(payload: Dict[str, Any], path: str) -> float:
    value: Any = payload
    for part in path.split("."):
        if not isinstance(value, dict) or part not in value:
            raise KeyError(f"metric {path!r} missing (at {part!r})")
        value = value[part]
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise KeyError(f"metric {path!r} is not numeric: {value!r}")
    return float(value)


def load_payload(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "benchmark" not in payload:
        raise SystemExit(f"{path} is not a benchmark payload (no 'benchmark' key)")
    return payload


def compare(
    baseline: Dict[str, Any], fresh: Dict[str, Any], tolerance: float
) -> Tuple[List[str], List[str]]:
    """Returns (regressions, notes) for the benchmark's gated metrics."""
    name = baseline["benchmark"]
    if fresh.get("benchmark") != name:
        raise SystemExit(
            f"benchmark mismatch: baseline is {name!r}, "
            f"fresh is {fresh.get('benchmark')!r}"
        )
    gates = GATES.get(name)
    if gates is None:
        raise SystemExit(
            f"no regression gates defined for benchmark {name!r} "
            f"(known: {sorted(GATES)})"
        )
    regressions, notes = [], []
    print(f"benchmark {name!r}, tolerance {tolerance:.0%}")
    for gate in gates:
        path, direction = gate[0], gate[1]
        band = gate[2] if len(gate) > 2 else tolerance
        base = lookup(baseline, path)
        now = lookup(fresh, path)
        change = (now - base) / base if base else 0.0
        line = (
            f"  {path}: baseline {base:.4g} -> fresh {now:.4g} "
            f"({change:+.1%}, {direction} is better, band {band:.0%})"
        )
        print(line)
        if direction == "higher":
            regressed = now < base * (1.0 - band)
            improved = now > base * (1.0 + band)
        else:
            regressed = now > base * (1.0 + band)
            improved = now < base * (1.0 - band)
        if regressed:
            regressions.append(line.strip())
        elif improved:
            notes.append(
                f"{path} improved past the band — consider refreshing the "
                f"committed baseline with this run's JSON"
            )
    return regressions, notes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when a fresh benchmark run regresses past the baseline."
    )
    parser.add_argument("--baseline", required=True, help="committed BENCH_*.json")
    parser.add_argument("--fresh", required=True, help="JSON written by the fresh run")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed relative regression before failing (default 0.20)",
    )
    args = parser.parse_args(argv)
    if not 0.0 < args.tolerance < 1.0:
        raise SystemExit("tolerance must be in (0, 1)")
    regressions, notes = compare(
        load_payload(args.baseline), load_payload(args.fresh), args.tolerance
    )
    for note in notes:
        print(f"note: {note}")
    if regressions:
        print(
            f"REGRESSION: {len(regressions)} gated metric(s) fell outside the "
            f"{args.tolerance:.0%} band:",
            file=sys.stderr,
        )
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("regression gate ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
