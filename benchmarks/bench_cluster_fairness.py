"""Cluster fairness under a greedy client, and artifact-cache cold start.

Two control-plane claims of the serving layer, measured end to end:

**Fairness.**  One *greedy* client floods a 2-shard cluster as fast as the
wire allows while one *light* client keeps a slow, paced request stream —
both deliberately chosen to consistent-hash to the *same* shard, so they
truly contend.  With per-client quotas at the router (token bucket + 429s
with ``retry_after``) and weighted fair dequeue at the shard's job engine,
the greedy client is throttled and interleaved instead of monopolizing the
queue: the light client's p95 latency under contention must stay within
``MAX_P95_RATIO`` (2x) of its solo p95.  Without admission control the light
client would wait behind the greedy client's entire backlog.

**Artifact-cache cold start.**  The first shard to compile a program
publishes the finished compilation to the shared
:class:`~repro.serving.ArtifactCache`; a sibling (or restarted) shard *loads*
it instead of recompiling.  The benchmark measures the cold program
resolution on a second shard — load vs the first shard's recorded compile —
and asserts **>= 2x** (typically ~5-8x for the Sobel kernel), plus reports
the end-to-end first-request latency of both shards.

Runs standalone (``python benchmarks/bench_cluster_fairness.py``) for CI,
writing ``bench-out/cluster_fairness.json`` for artifact upload, or under
pytest-benchmark with the rest of the suite.
"""

from __future__ import annotations

import json
import sys
import tempfile
import threading
import time

import numpy as np

from repro.api import execute_reference
from repro.apps.sobel import build_sobel_program, random_image
from repro.backend import MockBackend
from repro.errors import QuotaExceededError
from repro.frontend import EvaProgram, input_encrypted, output
from repro.serving import (
    ArtifactCache,
    BackendSpec,
    ConsistentHashRing,
    EvaCluster,
    EvaServer,
    FairnessPolicy,
    ProgramRegistry,
)

try:
    from conftest import print_table
except ImportError:  # standalone invocation without the benchmarks conftest
    def print_table(title, header, rows):
        print(f"\n=== {title} ===")
        for row in [header] + rows:
            print("  ".join(str(cell).ljust(18) for cell in row))

#: Shards in the fairness experiment.
SHARDS = 2
#: Simulated hardware latency per homomorphic op (seconds).
OP_LATENCY = 0.002
#: Per-client sustained rate quota (requests/second) and burst.
QUOTA_RPS = 10.0
QUOTA_BURST = 4.0
#: Per-client in-flight cap.
MAX_INFLIGHT = 4
#: The light client's paced request stream.
LIGHT_REQUESTS = 20
LIGHT_INTERVAL = 0.15
#: Seconds the greedy flood runs alongside the light stream.
GREEDY_SECONDS = LIGHT_REQUESTS * LIGHT_INTERVAL
#: Acceptance bar: light-client p95 under contention vs solo.
MAX_P95_RATIO = 2.0
#: Acceptance bar: second-shard program resolution vs first-shard compile.
MIN_COLDSTART_SPEEDUP = 2.0
#: Reference-comparison tolerance (mock-exact backend).
ATOL = 1e-6


def build_program() -> EvaProgram:
    program = EvaProgram("poly", vec_size=64, default_scale=25)
    with program:
        x = input_encrypted("x", 25)
        output("y", (x * x + x * 0.5) * (x * x - 1.0) + x, 25)
    return program


def colocated_clients() -> tuple:
    """A (greedy, light) client pair that hashes to the same shard.

    Fairness only matters under contention; the deterministic ring makes the
    co-location reproducible everywhere.
    """
    ring = ConsistentHashRing(tuple(range(SHARDS)))
    by_home = {}
    candidate = 0
    while True:
        client = f"fair-client-{candidate}"
        candidate += 1
        home = ring.route(client)
        bucket = by_home.setdefault(home, [])
        bucket.append(client)
        if len(bucket) == 2:
            return bucket[0], bucket[1]


def percentile(samples, q) -> float:
    return float(np.percentile(np.asarray(samples, dtype=np.float64), q))


def light_stream(cluster, client_id, inputs, expected) -> list:
    """The light client's paced stream; returns per-request seconds."""
    latencies = []
    for _ in range(LIGHT_REQUESTS):
        start = time.perf_counter()
        outputs = cluster.request("poly", {"x": inputs}, client_id=client_id)
        latencies.append(time.perf_counter() - start)
        np.testing.assert_allclose(outputs["y"][: len(inputs)], expected, atol=ATOL)
        time.sleep(LIGHT_INTERVAL)
    return latencies


def run_fairness() -> dict:
    program = build_program()
    inputs = [0.1, 0.4, -0.3, 0.9]
    expected = execute_reference(program.graph, {"x": inputs})["y"][: len(inputs)]
    greedy_id, light_id = colocated_clients()

    cluster = EvaCluster(
        shards=SHARDS,
        backend=BackendSpec("mock-exact", seed=11, op_latency=OP_LATENCY),
        batch_window=0.0,
        fairness=FairnessPolicy(
            quota_rps=QUOTA_RPS, burst=QUOTA_BURST, max_inflight=MAX_INFLIGHT
        ),
    )
    cluster.register("poly", program)
    cluster.start()
    try:
        # Warm both clients (compile + keygen are one-time costs).
        for client_id in (greedy_id, light_id):
            cluster.request("poly", {"x": inputs}, client_id=client_id)
        time.sleep(1.0)  # refill the token buckets spent warming

        solo = light_stream(cluster, light_id, inputs, expected)

        stop = threading.Event()
        throttled = [0]
        submitted = [0]

        def greedy_flood() -> None:
            while not stop.is_set():
                try:
                    cluster.request("poly", {"x": inputs}, client_id=greedy_id)
                    submitted[0] += 1
                except QuotaExceededError as exc:
                    throttled[0] += 1
                    # An obedient-but-relentless client: honor retry_after,
                    # then hammer again.
                    stop.wait(min(exc.retry_after, 0.05))

        flooder = threading.Thread(target=greedy_flood, daemon=True)
        flooder.start()
        try:
            contended = light_stream(cluster, light_id, inputs, expected)
        finally:
            stop.set()
            flooder.join(timeout=30)
    finally:
        cluster.close()

    p95_solo = percentile(solo, 95)
    p95_contended = percentile(contended, 95)
    ratio = p95_contended / max(p95_solo, 1e-9)
    print_table(
        f"Cluster fairness: greedy flood vs paced light client "
        f"(quota {QUOTA_RPS:g} rps, burst {QUOTA_BURST:g}, "
        f"inflight cap {MAX_INFLIGHT})",
        ["Light client", "p50 (ms)", "p95 (ms)"],
        [
            ["solo", f"{percentile(solo, 50) * 1e3:.1f}", f"{p95_solo * 1e3:.1f}"],
            [
                "vs greedy",
                f"{percentile(contended, 50) * 1e3:.1f}",
                f"{p95_contended * 1e3:.1f}",
            ],
        ],
    )
    print(
        f"  greedy: {submitted[0]} served, {throttled[0]} throttled "
        f"(p95 ratio {ratio:.2f}x, bar {MAX_P95_RATIO:.1f}x)"
    )

    assert throttled[0] > 0, (
        "the greedy client was never throttled — quotas are not engaging"
    )
    assert ratio <= MAX_P95_RATIO, (
        f"light client p95 degraded {ratio:.2f}x under a greedy flood "
        f"(allowed {MAX_P95_RATIO:.1f}x): fairness is not holding"
    )
    return {
        "p95_solo_ms": p95_solo * 1e3,
        "p95_contended_ms": p95_contended * 1e3,
        "ratio": ratio,
        "max_ratio": MAX_P95_RATIO,
        "greedy_served": submitted[0],
        "greedy_throttled": throttled[0],
    }


def run_coldstart() -> dict:
    program = build_sobel_program(8, scale=30, vec_size=1024)
    graph = getattr(program, "graph", program)
    image = random_image(8, seed=0).reshape(-1)
    with tempfile.TemporaryDirectory() as artifact_dir:
        # Shard 1: compiles from source and publishes the artifact.
        first = EvaServer(
            backend=MockBackend(seed=1),
            artifact_cache=ArtifactCache(artifact_dir),
            batch_window=0.0,
        )
        first.register("sobel", program)
        start = time.perf_counter()
        first.request("sobel", {"image": image})
        first_request = time.perf_counter() - start
        first.close()

        # The compile the first shard actually paid, as recorded in the
        # published artifact.
        cache = ArtifactCache(artifact_dir)
        (record,) = cache.records()
        compile_seconds = float(record["compile_seconds"])

        # Second shard's program resolution: a fresh registry over the shared
        # directory loads instead of recompiling.
        registry = ProgramRegistry(artifacts=ArtifactCache(artifact_dir))
        start = time.perf_counter()
        registry.get_or_compile(graph)
        load_seconds = time.perf_counter() - start

        # ... and end to end: a second server's first request over the warm
        # cache (still pays keygen + one evaluation, like the first did).
        second = EvaServer(
            backend=MockBackend(seed=2),
            artifact_cache=ArtifactCache(artifact_dir),
            batch_window=0.0,
        )
        second.register("sobel", program)
        start = time.perf_counter()
        second.request("sobel", {"image": image})
        second_request = time.perf_counter() - start
        second.close()

    speedup = compile_seconds / max(load_seconds, 1e-9)
    print_table(
        "Artifact-cache cold start: Sobel on a second shard",
        ["Stage", "Shard 1 (ms)", "Shard 2 (ms)", "Speedup"],
        [
            [
                "program resolution",
                f"{compile_seconds * 1e3:.2f}",
                f"{load_seconds * 1e3:.2f}",
                f"{speedup:.1f}x",
            ],
            [
                "first request e2e",
                f"{first_request * 1e3:.2f}",
                f"{second_request * 1e3:.2f}",
                f"{first_request / max(second_request, 1e-9):.1f}x",
            ],
        ],
    )

    assert speedup >= MIN_COLDSTART_SPEEDUP, (
        f"loading the shared artifact was only {speedup:.2f}x faster than "
        f"recompiling (expected >= {MIN_COLDSTART_SPEEDUP:.1f}x)"
    )
    assert second_request <= first_request, (
        "the warm-cache shard's first request was slower than the cold "
        f"shard's ({second_request:.3f}s vs {first_request:.3f}s)"
    )
    return {
        "compile_ms": compile_seconds * 1e3,
        "load_ms": load_seconds * 1e3,
        "ratio": speedup,
        "min_ratio": MIN_COLDSTART_SPEEDUP,
        "first_request_cold_ms": first_request * 1e3,
        "first_request_warm_ms": second_request * 1e3,
    }


def run(benchmark=None) -> dict:
    fairness = run_fairness()
    coldstart = run_coldstart()
    payload = {
        "benchmark": "cluster_fairness",
        "op_latency_seconds": OP_LATENCY,
        "quota_rps": QUOTA_RPS,
        "fairness": fairness,
        "coldstart": coldstart,
    }
    print(json.dumps(payload))
    if benchmark is not None:
        # Benchmark target: one paced light request under no contention.
        program = build_program()
        server = EvaServer(backend=MockBackend(seed=11), batch_window=0.0)
        server.register("poly", program)
        server.request("poly", {"x": [0.1]})
        benchmark.pedantic(
            lambda: server.request("poly", {"x": [0.1]}), rounds=3, iterations=1
        )
        server.close()
    else:
        import os

        os.makedirs("bench-out", exist_ok=True)
        with open("bench-out/cluster_fairness.json", "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
    return payload


def test_cluster_fairness(benchmark):
    run(benchmark)


if __name__ == "__main__":
    result = run(None)
    print(
        f"cluster fairness ok: light p95 {result['fairness']['ratio']:.2f}x <= "
        f"{MAX_P95_RATIO:.1f}x, artifact cold start "
        f"{result['coldstart']['ratio']:.1f}x >= {MIN_COLDSTART_SPEEDUP:.1f}x"
    )
    sys.exit(0)
