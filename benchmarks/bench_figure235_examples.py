"""Figures 2, 3, and 5: the paper's worked compiler examples.

These micro-benchmarks regenerate the instruction mixes of the three worked
examples — x^2*y^3 (Figure 2), x^2+x (Figure 3), and x^2+x+x (Figure 5) —
after each relevant pass combination, and check the structural facts the paper
derives from them (rescale counts, the shared eager MOD_SWITCH, the
MATCH-SCALE constant, and the resulting modulus-chain length).
"""

from __future__ import annotations


from repro.core import compile_program
from repro.core.ir import Program
from repro.core.rewrite import (
    EagerModSwitchPass,
    LazyModSwitchPass,
    MatchScalePass,
    RelinearizePass,
    WaterlineRescalePass,
)
from repro.core.rewrite.framework import PassContext
from repro.core.types import Op, ValueType

from conftest import print_table


def x2y3() -> Program:
    program = Program("x2y3", vec_size=8)
    x = program.input("x", ValueType.CIPHER, scale=60)
    y = program.input("y", ValueType.CIPHER, scale=30)
    x2 = program.make_term(Op.MULTIPLY, [x, x])
    y3 = program.make_term(Op.MULTIPLY, [program.make_term(Op.MULTIPLY, [y, y]), y])
    program.set_output("out", program.make_term(Op.MULTIPLY, [x2, y3]), scale=30)
    return program


def x2_plus_x() -> Program:
    program = Program("x2_plus_x", vec_size=8)
    x = program.input("x", ValueType.CIPHER, scale=30)
    program.set_output(
        "out", program.make_term(Op.ADD, [program.make_term(Op.MULTIPLY, [x, x]), x]), scale=30
    )
    return program


def x2_plus_x_plus_x() -> Program:
    program = Program("x2xx", vec_size=8)
    x = program.input("x", ValueType.CIPHER, scale=40)
    x2 = program.make_term(Op.MULTIPLY, [x, x])
    add1 = program.make_term(Op.ADD, [x2, x])
    program.set_output("out", program.make_term(Op.ADD, [add1, x]), scale=30)
    return program


def op_count(program: Program, op: Op) -> int:
    return sum(1 for t in program.terms() if t.op is op)


def test_figure2_and_3_and_5_examples(benchmark):
    rows = []

    # Figure 2(d)/(e): waterline rescale + relinearize on x^2*y^3.
    fig2 = x2y3()
    result2 = compile_program(fig2, output_scales={"out": 30})
    rows.append(
        [
            "Fig 2 x^2*y^3 (EVA)",
            op_count(result2.program, Op.RESCALE),
            op_count(result2.program, Op.MOD_SWITCH),
            op_count(result2.program, Op.RELINEARIZE),
            result2.parameters.modulus_count,
            result2.parameters.total_coeff_modulus_bits,
        ]
    )
    assert op_count(result2.program, Op.RESCALE) == 2
    assert op_count(result2.program, Op.RELINEARIZE) == 4
    assert result2.parameters.modulus_count == 5

    # Figure 3(c): MATCH-SCALE on x^2 + x instead of rescale + modswitch.
    fig3 = x2_plus_x()
    result3 = compile_program(fig3, output_scales={"out": 30})
    boost_constants = [
        t for t in result3.program.terms() if t.is_constant and t.scale == 30.0
    ]
    rows.append(
        [
            "Fig 3 x^2+x (EVA)",
            op_count(result3.program, Op.RESCALE),
            op_count(result3.program, Op.MOD_SWITCH),
            op_count(result3.program, Op.RELINEARIZE),
            result3.parameters.modulus_count,
            result3.parameters.total_coeff_modulus_bits,
        ]
    )
    assert op_count(result3.program, Op.RESCALE) == 0
    assert op_count(result3.program, Op.MOD_SWITCH) == 0
    assert boost_constants, "MATCH-SCALE should introduce a constant-1 multiplication"

    # Figure 5: eager vs lazy MOD_SWITCH placement on x^2 + x + x.
    def run_passes(program, eager: bool):
        context = PassContext(
            max_rescale_bits=40.0, waterline_bits=20.0, rescale_bits=40.0
        )
        WaterlineRescalePass().run(program, context)
        if eager:
            EagerModSwitchPass().run(program, context)
        else:
            LazyModSwitchPass().run(program, context)
        MatchScalePass().run(program, context)
        RelinearizePass().run(program, context)
        return program

    eager_program = run_passes(x2_plus_x_plus_x(), eager=True)
    lazy_program = run_passes(x2_plus_x_plus_x(), eager=False)
    rows.append(
        [
            "Fig 5 x^2+x+x (eager)",
            op_count(eager_program, Op.RESCALE),
            op_count(eager_program, Op.MOD_SWITCH),
            op_count(eager_program, Op.RELINEARIZE),
            "-",
            "-",
        ]
    )
    rows.append(
        [
            "Fig 5 x^2+x+x (lazy)",
            op_count(lazy_program, Op.RESCALE),
            op_count(lazy_program, Op.MOD_SWITCH),
            op_count(lazy_program, Op.RELINEARIZE),
            "-",
            "-",
        ]
    )
    assert op_count(eager_program, Op.MOD_SWITCH) <= op_count(lazy_program, Op.MOD_SWITCH)

    print_table(
        "Figures 2/3/5: worked compiler examples",
        ["Example", "RESCALE", "MOD_SWITCH", "RELINEARIZE", "r", "logQ"],
        rows,
    )

    benchmark(lambda: compile_program(x2y3(), output_scales={"out": 30}))
