"""Ablation study (extension): contribution of each EVA compiler choice.

Not a table of the paper, but the design choices DESIGN.md calls out are
ablated here on the Sobel / Harris applications and LeNet-5-medium:

* rescale policy — maximal (2^60) waterline rescaling vs per-level rescaling;
* MOD_SWITCH placement — eager vs lazy;
* MATCH-SCALE and the whole-program DAG schedule vs per-kernel scheduling.

Reported per configuration: modulus-chain length r, log2 Q, log2 N, the
number of FHE-specific instructions inserted, and the modeled 56-thread
latency.
"""

from __future__ import annotations


from repro.apps import build_harris_program, build_sobel_program
from repro.core import CompilerOptions, simulate_schedule
from repro.core.types import Op

from conftest import print_table


def fhe_op_count(program) -> int:
    return sum(
        1
        for t in program.terms()
        if t.op in (Op.RESCALE, Op.MOD_SWITCH, Op.RELINEARIZE)
    )


def describe(compilation, discipline: str):
    summary = compilation.parameters.summary()
    latency = simulate_schedule(compilation, threads=56, discipline=discipline)
    return summary, fhe_op_count(compilation.program), latency.makespan_seconds


CONFIGURATIONS = [
    ("EVA (waterline 60 + eager, DAG)", CompilerOptions(policy="eva"), "dag"),
    ("per-level rescale + lazy (CHET-like)", CompilerOptions(policy="chet"), "kernel"),
    ("EVA with 30-bit rescales", CompilerOptions(policy="eva", rescale_bits=30, max_rescale_bits=30), "dag"),
    ("EVA scheduled bulk-synchronously", CompilerOptions(policy="eva"), "kernel"),
]


def test_ablation_compiler_choices(benchmark, workspace):
    rows = []
    programs = {
        "Sobel 32x32": build_sobel_program(image_size=32),
        "Harris 32x32": build_harris_program(image_size=32),
    }
    for program_name, program in programs.items():
        for label, options, discipline in CONFIGURATIONS:
            compilation = program.compile(options=options)
            summary, fhe_ops, latency = describe(compilation, discipline)
            rows.append(
                [
                    program_name,
                    label,
                    summary["log_n"],
                    summary["log_q"],
                    summary["r"],
                    fhe_ops,
                    f"{latency:.3f}",
                ]
            )

    # LeNet-5-medium via the cached workspace (eva/chet policies only).
    for label, policy, discipline in (
        ("EVA (waterline 60 + eager, DAG)", "eva", "dag"),
        ("per-level rescale + lazy (CHET-like)", "chet", "kernel"),
    ):
        compilation = workspace.compiled("LeNet-5-medium", policy).compilation
        summary, fhe_ops, latency = describe(compilation, discipline)
        rows.append(
            ["LeNet-5-medium", label, summary["log_n"], summary["log_q"], summary["r"], fhe_ops, f"{latency:.3f}"]
        )

    print_table(
        "Ablation: effect of rescale policy, modswitch placement, and scheduling",
        ["Workload", "Configuration", "logN", "logQ", "r", "FHE ops", "56-thr latency (s)"],
        rows,
    )

    # The headline ablation facts: the full EVA policy has the shortest chain,
    # and DAG scheduling beats bulk-synchronous scheduling of the same program.
    sobel_rows = [r for r in rows if r[0] == "Sobel 32x32"]
    eva_row = sobel_rows[0]
    chet_row = sobel_rows[1]
    assert eva_row[4] <= chet_row[4]
    dag = next(r for r in rows if r[0] == "Sobel 32x32" and "DAG" in r[1])
    bulk = next(r for r in rows if r[0] == "Sobel 32x32" and "bulk" in r[1])
    assert float(dag[6]) <= float(bulk[6]) + 1e-9

    program = build_sobel_program(image_size=32)
    benchmark.pedantic(lambda: program.compile(), rounds=3, iterations=1)
