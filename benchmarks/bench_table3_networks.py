"""Table 3: the evaluated networks and their unencrypted accuracy.

Paper columns: layer counts (Conv / FC / Act), number of floating-point
operations, and unencrypted test accuracy.  This reproduction prints the same
columns for the scaled-down networks (FP operation counts are estimated from
the layer shapes); the Industrial network has no accuracy, exactly as in the
paper (random weights).
"""

from __future__ import annotations

import numpy as np

from repro.nn import Conv2D, Dense
from repro.nn.training import accuracy

from conftest import NETWORK_NAMES, TRAINABLE, print_table


def estimate_fp_operations(network) -> int:
    """Rough multiply-accumulate count of one unencrypted inference."""
    total = 0
    shape = network.input_shape
    x = np.zeros(shape)
    for layer in network.layers:
        before = x.size
        x = layer.forward(x)
        if isinstance(layer, Conv2D):
            total += 2 * x.size * layer.in_channels * layer.kernel * layer.kernel
        elif isinstance(layer, Dense):
            total += 2 * layer.out_features * layer.in_features
        else:
            total += before
    return int(total)


def test_table3_network_summary(benchmark, workspace):
    rows = []
    for name in NETWORK_NAMES:
        network = workspace.network(name)
        counts = network.count_layers()
        if name in TRAINABLE:
            dataset = workspace.dataset(name)
            acc = 100.0 * accuracy(network, dataset.test_images, dataset.test_labels)
            acc_text = f"{acc:.2f}"
        else:
            acc_text = "-"
        rows.append(
            [
                name,
                counts["conv"],
                counts["fc"],
                counts["act"],
                estimate_fp_operations(network),
                acc_text,
            ]
        )
    print_table(
        "Table 3: networks used in the evaluation",
        ["Network", "Conv", "FC", "Act", "# FP ops", "Accuracy (%)"],
        rows,
    )

    # Benchmark target: one unencrypted inference of the smallest network.
    network = workspace.network("LeNet-5-small")
    image = workspace.dataset("LeNet-5-small").test_images[0]
    benchmark(network.forward, image)
