"""Amortized serving throughput: warm cached path vs the naive one-shot path.

The paper's deployment story compiles a program once and serves many requests
against it; the one-shot ``Executor.execute`` workflow instead pays
compilation, context creation, and key generation on *every* request.  This
benchmark quantifies the gap on the mock backend:

* **naive** — per request: compile the program, build a fresh context and
  keys, execute (exactly what ``repro.cli run`` does today);
* **warm**  — the serving subsystem: the compilation comes from the program
  registry, the context and keys from the session cache, and requests are
  slot-batched into shared ciphertexts.

Every served output is bit-compared against the ``ReferenceExecutor`` with
the integration-test tolerance (atol=1e-3).  The acceptance bar is a >= 5x
amortized speedup for the warm path.
"""

from __future__ import annotations

import time

import numpy as np

from repro.backend import MockBackend
from repro.api import Executor, compile_program, execute_reference
from repro.frontend import EvaProgram, input_encrypted, output
from repro.serving import EvaServer

from conftest import print_table

#: Served requests per measured run.
NUM_REQUESTS = 48
#: Logical width of each client request (slots per lane).
REQUEST_WIDTH = 16
#: Ciphertext slot budget shared by the batched requests.
VEC_SIZE = 2048
#: Tolerance of tests/test_integration.py's reference comparisons.
ATOL = 1e-3


def build_program() -> EvaProgram:
    program = EvaProgram("poly35", vec_size=VEC_SIZE, default_scale=25)
    with program:
        x = input_encrypted("x", 25)
        # Depth-3 polynomial: enough compiler work (rescales, modswitches,
        # parameter selection) to represent a realistic small workload.
        output("y", (x ** 2 + x * 0.5) * (x ** 2 - 1.0) + x, 25)
    return program


def make_requests(count: int = NUM_REQUESTS):
    rng = np.random.default_rng(42)
    return [rng.uniform(-1.0, 1.0, REQUEST_WIDTH) for _ in range(count)]


def run_naive(program: EvaProgram, requests) -> float:
    """Per-request compile + fresh context/keys + execute (the status quo)."""
    backend = MockBackend(seed=7)
    start = time.perf_counter()
    for xv in requests:
        compilation = compile_program(program.graph)
        result = Executor(compilation, backend).execute({"x": xv})
        reference = execute_reference(program.graph, {"x": xv})
        np.testing.assert_allclose(
            result["y"][:REQUEST_WIDTH], reference["y"][:REQUEST_WIDTH], atol=ATOL
        )
    return time.perf_counter() - start


def run_warm(server: EvaServer, program: EvaProgram, requests) -> float:
    """Registry + session cache + slot batching through the job engine."""
    start = time.perf_counter()
    futures = [server.submit("poly35", {"x": xv}) for xv in requests]
    responses = [future.result(120) for future in futures]
    elapsed = time.perf_counter() - start
    for xv, response in zip(requests, responses):
        reference = execute_reference(program.graph, {"x": xv})
        np.testing.assert_allclose(response["y"], reference["y"][:REQUEST_WIDTH], atol=ATOL)
    return elapsed


def test_serving_throughput(benchmark):
    program = build_program()
    requests = make_requests()

    naive_seconds = run_naive(program, requests)

    server = EvaServer(
        backend=MockBackend(seed=7),
        workers=2,
        max_batch=64,
        batch_window=0.001,
    )
    server.register("poly35", program)
    # Prime the caches with one request: the steady state being measured is
    # the warm path, not the first-ever compilation.
    server.request("poly35", {"x": requests[0]})
    warm_seconds = run_warm(server, program, requests)

    stats = server.stats()
    speedup = naive_seconds / max(warm_seconds, 1e-12)
    per_request_naive = naive_seconds / NUM_REQUESTS
    per_request_warm = warm_seconds / NUM_REQUESTS
    print_table(
        "Serving throughput: naive one-shot vs warm cached+batched path",
        ["Path", "Total (s)", "Per request (ms)", "Speedup"],
        [
            ["naive (compile+keygen each)", f"{naive_seconds:.3f}", f"{per_request_naive * 1e3:.2f}", "1.0x"],
            ["warm (registry+session+batch)", f"{warm_seconds:.3f}", f"{per_request_warm * 1e3:.2f}", f"{speedup:.1f}x"],
        ],
    )
    print(
        f"  engine: {stats['engine']['batches']} batches, largest "
        f"{stats['engine']['largest_batch']}, registry hit rate "
        f"{stats['registry']['hit_rate']}, session hit rate "
        f"{stats['sessions']['hit_rate']}"
    )

    # Acceptance bar: amortized warm requests are at least 5x cheaper.
    assert speedup >= 5.0, (
        f"warm path only {speedup:.1f}x faster than naive "
        f"({warm_seconds:.3f}s vs {naive_seconds:.3f}s)"
    )
    # The batcher actually packed multiple requests per execution.
    assert stats["engine"]["largest_batch"] > 1

    # Benchmark target: one warm request end to end.
    benchmark.pedantic(
        lambda: server.request("poly35", {"x": requests[0]}),
        rounds=5,
        iterations=1,
    )
    server.close()
