"""Manifest-driven benchmark gate runner for CI.

Every gated benchmark used to be a copy-pasted pair of workflow steps — run
the bench, then call ``check_regression.py`` with the matching baseline.
Adding a benchmark meant editing the pair into up to three jobs and hoping
the file names lined up.  The pairs now live in one manifest,
``benchmarks/gates.toml``; CI calls::

    python benchmarks/run_gates.py --suite tier1

which runs every manifest entry tagged with that suite (the bench script as
a subprocess, its stdout mirrored and saved to ``bench-out/<name>.log``) and
gates the fresh payload against the committed ``BENCH_<name>.json`` via
:mod:`check_regression` in-process.  ``tools/check_docs.py`` cross-checks
the manifest against the baselines committed at the repo root, so a
``BENCH_*.json`` can be neither orphaned nor silently ungated.

The manifest is parsed with :mod:`tomllib` where the interpreter has it
(3.11+) and a minimal TOML-subset parser otherwise — the tier-1 matrix
still includes 3.10.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path
from typing import Any, Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_MANIFEST = Path(__file__).resolve().parent / "gates.toml"
REQUIRED_FIELDS = ("script", "baseline", "fresh", "suites")


class ManifestError(RuntimeError):
    """The gates manifest is malformed or inconsistent."""


# -- minimal TOML subset (3.10 fallback) -------------------------------------------
def _toml_scalar(text: str) -> Any:
    text = text.strip()
    if len(text) >= 2 and text[0] == text[-1] and text[0] in ("'", '"'):
        return text[1:-1]
    if text.startswith("[") and text.endswith("]"):
        inner = text[1:-1].strip()
        if not inner:
            return []
        return [_toml_scalar(part) for part in inner.split(",") if part.strip()]
    if text == "true":
        return True
    if text == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise ManifestError(f"unsupported TOML value {text!r}") from None


def _parse_toml_minimal(text: str) -> Dict[str, Any]:
    """TOML subset the manifest needs: dotted ``[table.sub]`` headers and
    ``key = scalar-or-string-array`` pairs with ``#`` comments."""
    data: Dict[str, Any] = {}
    current: Dict[str, Any] = data
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("["):
            if not line.endswith("]"):
                raise ManifestError(f"malformed TOML table header {line!r}")
            node = data
            for part in line[1:-1].strip().split("."):
                node = node.setdefault(part.strip(), {})
            current = node
            continue
        if "=" not in line:
            raise ManifestError(f"malformed TOML line {line!r}")
        key, _, value = line.partition("=")
        if not value.strip().startswith(('"', "'", "[")):
            value = value.split("#", 1)[0]
        current[key.strip()] = _toml_scalar(value)
    return data


def load_manifest(path: Path = DEFAULT_MANIFEST) -> Dict[str, Dict[str, Any]]:
    """Parse and validate the gates manifest; returns ``{name: entry}``."""
    raw = Path(path).read_bytes().decode("utf-8")
    try:
        import tomllib
    except ModuleNotFoundError:
        data = _parse_toml_minimal(raw)
    else:
        data = tomllib.loads(raw)
    gates = data.get("gate")
    if not isinstance(gates, dict) or not gates:
        raise ManifestError(f"{path}: no [gate.<name>] tables found")
    for name, entry in gates.items():
        for field in REQUIRED_FIELDS:
            if field not in entry:
                raise ManifestError(f"{path}: gate {name!r} is missing {field!r}")
        if not isinstance(entry["suites"], list) or not entry["suites"]:
            raise ManifestError(f"{path}: gate {name!r} needs a non-empty suites list")
        tolerance = entry.get("tolerance")
        if tolerance is not None and not 0.0 < float(tolerance) < 1.0:
            raise ManifestError(f"{path}: gate {name!r} tolerance must be in (0, 1)")
    return gates


def manifest_suites(gates: Dict[str, Dict[str, Any]]) -> List[str]:
    names: List[str] = []
    for entry in gates.values():
        for suite in entry["suites"]:
            if suite not in names:
                names.append(suite)
    return names


def run_gate(name: str, entry: Dict[str, Any], log_dir: Path) -> bool:
    """Run one benchmark and its regression gate; True when both pass."""
    script = REPO_ROOT / entry["script"]
    baseline = REPO_ROOT / entry["baseline"]
    fresh = REPO_ROOT / entry["fresh"]
    title = entry.get("title", name)
    print(f"::group::{name} — {title}" if os.environ.get("GITHUB_ACTIONS") else f"== {name} — {title}")
    sys.stdout.flush()
    proc = subprocess.run(
        [sys.executable, str(script)],
        cwd=REPO_ROOT,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    sys.stdout.write(proc.stdout)
    log_dir.mkdir(parents=True, exist_ok=True)
    (log_dir / f"{name}.log").write_text(proc.stdout, encoding="utf-8")
    ok = proc.returncode == 0
    if not ok:
        print(f"{name}: benchmark exited with {proc.returncode}")
    elif not fresh.exists():
        ok = False
        print(f"{name}: benchmark did not write {entry['fresh']}")
    else:
        import check_regression

        gate_argv = ["--baseline", str(baseline), "--fresh", str(fresh)]
        if "tolerance" in entry:
            gate_argv += ["--tolerance", str(entry["tolerance"])]
        ok = check_regression.main(gate_argv) == 0
    if os.environ.get("GITHUB_ACTIONS"):
        print("::endgroup::")
        if not ok:
            print(f"::error::benchmark gate {name} failed ({title})")
    sys.stdout.flush()
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the gated benchmarks of one CI suite from gates.toml."
    )
    parser.add_argument(
        "--manifest", type=Path, default=DEFAULT_MANIFEST, help="gates manifest path"
    )
    parser.add_argument("--suite", help="run every gate tagged with this suite")
    parser.add_argument(
        "--gate", action="append", default=None, help="run specific gate(s) by name"
    )
    parser.add_argument(
        "--list", action="store_true", help="print the manifest and exit"
    )
    parser.add_argument(
        "--log-dir",
        type=Path,
        default=REPO_ROOT / "bench-out",
        help="where per-benchmark stdout logs are written",
    )
    args = parser.parse_args(argv)

    gates = load_manifest(args.manifest)
    if args.list:
        for name, entry in gates.items():
            suites = ",".join(entry["suites"])
            print(f"{name:20s} suites={suites:30s} baseline={entry['baseline']}")
        return 0

    if bool(args.suite) == bool(args.gate):
        parser.error("pass exactly one of --suite or --gate (or --list)")
    if args.suite:
        known = manifest_suites(gates)
        if args.suite not in known:
            parser.error(f"unknown suite {args.suite!r}; manifest has {known}")
        selected = {
            name: entry
            for name, entry in gates.items()
            if args.suite in entry["suites"]
        }
    else:
        missing = [name for name in args.gate if name not in gates]
        if missing:
            parser.error(f"unknown gate(s) {missing}; manifest has {sorted(gates)}")
        selected = {name: gates[name] for name in args.gate}

    failures = []
    for name, entry in selected.items():
        if not run_gate(name, entry, args.log_dir):
            failures.append(name)
    print(
        f"gates: {len(selected) - len(failures)}/{len(selected)} passed"
        + (f", FAILED: {', '.join(failures)}" if failures else "")
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
