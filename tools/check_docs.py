#!/usr/bin/env python
"""Docs drift gate: fail CI when docs/ stops mentioning a real surface.

Documentation rots by omission: a new CLI flag, metric, or wire op lands
with tests and telemetry but never reaches the prose.  This script
re-derives the ground truth from the code and asserts the docs mention
every piece of it:

* the metric catalogue in ``repro.serving.telemetry``'s module docstring
  (the table between ``====`` rulers) -> every metric name must appear in
  ``docs/metrics.md``;
* the CLI surface from ``repro.cli.build_parser()`` -> every subcommand
  (as ``repro.cli <name>``) and every long option must appear in
  ``docs/operations.md``;
* the wire op set ``repro.core.serialization.messages.REQUEST_OPS`` ->
  every op must appear backticked in ``docs/wire-protocol.md``;
* the committed benchmark baselines (``BENCH_*.json`` at the repo root) ->
  every one must be listed (and gated) by ``benchmarks/gates.toml``, every
  manifest entry must point at files that exist, and every baseline's
  benchmark name must have gates in ``benchmarks/check_regression.py``.

Exit status 1 lists everything missing.  Run from anywhere::

    python tools/check_docs.py [--docs-dir docs]

The check is deliberately one-directional: docs may explain more than the
code exposes (deprecated aliases, planned work), but never less.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def catalogue_metrics() -> list:
    """Metric names from the telemetry module docstring's ruler table."""
    from repro.serving import telemetry

    doc = telemetry.__doc__ or ""
    rulers = [
        index
        for index, line in enumerate(doc.splitlines())
        if re.match(r"^=+\s+=+", line.strip())
    ]
    if len(rulers) < 3:
        raise SystemExit(
            "telemetry docstring: expected a ====-ruled catalogue table "
            f"(found {len(rulers)} ruler lines)"
        )
    lines = doc.splitlines()[rulers[1] + 1 : rulers[2]]
    names = []
    for line in lines:
        first_column = re.split(r"\s{2,}", line.strip())[0]
        for token in first_column.split(" / "):
            token = token.strip()
            if token:
                names.append(token)
    if not names:
        raise SystemExit("telemetry docstring: catalogue table parsed empty")
    return names


def cli_surface() -> list:
    """(subcommand, [long options]) pairs from the real argument parser."""
    from repro import cli

    parser = cli.build_parser()
    surface = []
    for action in parser._actions:
        if not isinstance(action, argparse._SubParsersAction):
            continue
        for name, sub in action.choices.items():
            options = sorted(
                {
                    option
                    for sub_action in sub._actions
                    for option in sub_action.option_strings
                    if option.startswith("--") and option != "--help"
                }
            )
            surface.append((name, options))
    if not surface:
        raise SystemExit("repro.cli.build_parser(): no subcommands found")
    return surface


def wire_ops() -> list:
    from repro.core.serialization import messages

    return sorted(messages.REQUEST_OPS)


def _load_benchmarks_module(name: str):
    """Import a module from benchmarks/ (a script directory, not a package)."""
    import importlib.util

    path = REPO_ROOT / "benchmarks" / f"{name}.py"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def check_gates_manifest() -> list:
    """Cross-check committed BENCH_*.json baselines against gates.toml."""
    import json

    complaints = []
    run_gates = _load_benchmarks_module("run_gates")
    check_regression = _load_benchmarks_module("check_regression")
    try:
        gates = run_gates.load_manifest()
    except Exception as exc:  # malformed manifest is itself drift
        return [f"gates.toml: {exc}"]

    baselines = {entry["baseline"]: name for name, entry in gates.items()}
    for path in sorted(REPO_ROOT.glob("BENCH_*.json")):
        if path.name not in baselines:
            complaints.append(
                f"gates.toml: committed baseline {path.name} has no gate entry"
            )
    for name, entry in gates.items():
        for field in ("script", "baseline"):
            if not (REPO_ROOT / entry[field]).is_file():
                complaints.append(
                    f"gates.toml: gate {name!r} {field} {entry[field]!r} "
                    "does not exist"
                )
        baseline_path = REPO_ROOT / entry["baseline"]
        if baseline_path.is_file():
            payload = json.loads(baseline_path.read_text(encoding="utf-8"))
            bench_name = payload.get("benchmark")
            if bench_name not in check_regression.GATES:
                complaints.append(
                    f"gates.toml: gate {name!r} baseline declares benchmark "
                    f"{bench_name!r}, which has no GATES entry in "
                    "check_regression.py"
                )
    return complaints


def check(docs_dir: Path) -> list:
    """Returns a list of human-readable drift complaints (empty = clean)."""
    missing = []

    def read(name: str) -> str:
        path = docs_dir / name
        if not path.is_file():
            missing.append(f"{name}: file missing from {docs_dir}")
            return ""
        return path.read_text(encoding="utf-8")

    metrics_doc = read("metrics.md")
    for metric in catalogue_metrics():
        if metric not in metrics_doc:
            missing.append(f"metrics.md: metric {metric!r} undocumented")

    operations_doc = read("operations.md")
    for subcommand, options in cli_surface():
        if f"repro.cli {subcommand}" not in operations_doc:
            missing.append(
                f"operations.md: subcommand 'repro.cli {subcommand}' undocumented"
            )
        for option in options:
            if option not in operations_doc:
                missing.append(
                    f"operations.md: {subcommand} flag {option!r} undocumented"
                )

    wire_doc = read("wire-protocol.md")
    for op in wire_ops():
        if f"`{op}`" not in wire_doc:
            missing.append(f"wire-protocol.md: request op `{op}` undocumented")

    missing.extend(check_gates_manifest())

    return missing


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when docs/ stops mentioning a metric, CLI flag, or wire op."
    )
    parser.add_argument(
        "--docs-dir",
        type=Path,
        default=REPO_ROOT / "docs",
        help="documentation tree to check (default: <repo>/docs)",
    )
    args = parser.parse_args(argv)
    missing = check(args.docs_dir)
    if missing:
        print(f"DOCS DRIFT: {len(missing)} undocumented item(s):", file=sys.stderr)
        for item in missing:
            print(f"  {item}", file=sys.stderr)
        return 1
    print(f"docs drift gate ok ({args.docs_dir})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
