#!/usr/bin/env python
"""Profile the real CKKS backend and emit a per-op cost breakdown as JSON.

Thin wrapper over :mod:`repro.profiling` so the harness can run standalone
(``python tools/profile_ckks.py --out profile.json``) as well as through
``repro.cli profile``.  See ``docs/performance.md`` for the workflow.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.profiling import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
