"""Sobel edge detection on encrypted images (Figure 6 and Table 8).

A faithful transcription of the paper's PyEVA Sobel example: the two 3x3
Sobel filters are applied to an encrypted, row-major-packed square image by
rotating the image ciphertext and multiplying by plaintext filter constants,
and the gradient magnitude is approximated with the third-degree polynomial
square root.
"""

from __future__ import annotations

import numpy as np

from ..frontend.pyeva import EvaProgram, constant, input_encrypted, output
from .common import sqrt_poly, sqrt_poly_reference

#: The 3x3 Sobel filter of the paper's Figure 6.
SOBEL_FILTER = np.array([[-1.0, 0.0, 1.0], [-2.0, 0.0, 2.0], [-1.0, 0.0, 1.0]])

#: Image side length used in the paper's evaluation (64x64 -> 4096 slots).
DEFAULT_IMAGE_SIZE = 64


def build_sobel_program(
    image_size: int = DEFAULT_IMAGE_SIZE,
    scale: float = 30.0,
    vec_size: int = None,
) -> EvaProgram:
    """Build the Sobel filtering program for a ``image_size`` x ``image_size`` image.

    ``vec_size`` defaults to ``image_size ** 2`` (the image exactly fills the
    ciphertext).  Passing a larger power of two leaves spare slots: compiled
    with ``CompilerOptions(lane_width=image_size ** 2)``, the program then
    serves ``vec_size / image_size**2`` images per ciphertext (lane batching).
    """
    if vec_size is None:
        vec_size = image_size * image_size
    elif vec_size < image_size * image_size:
        raise ValueError(
            f"vec_size {vec_size} cannot hold a {image_size}x{image_size} image"
        )
    program = EvaProgram("sobel", vec_size=vec_size, default_scale=scale)
    with program:
        image = input_encrypted("image", scale)
        horizontal = None
        vertical = None
        for i in range(3):
            for j in range(3):
                rotated = image << (i * image_size + j)
                h = rotated * constant(SOBEL_FILTER[i][j], scale)
                v = rotated * constant(SOBEL_FILTER[j][i], scale)
                horizontal = h if horizontal is None else horizontal + h
                vertical = v if vertical is None else vertical + v
        magnitude = sqrt_poly(horizontal ** 2 + vertical ** 2, scale)
        output("edges", magnitude, scale)
    return program


def reference_sobel(image: np.ndarray) -> np.ndarray:
    """Unencrypted reference with identical semantics (including wrap-around).

    The encrypted program uses plain rotations without border masking, exactly
    like the paper's Figure 6, so the reference reproduces the same circular
    boundary behaviour.
    """
    size = image.shape[0]
    flat = image.reshape(-1).astype(np.float64)
    horizontal = np.zeros_like(flat)
    vertical = np.zeros_like(flat)
    for i in range(3):
        for j in range(3):
            rotated = np.roll(flat, -(i * size + j))
            horizontal += SOBEL_FILTER[i][j] * rotated
            vertical += SOBEL_FILTER[j][i] * rotated
    magnitude = sqrt_poly_reference(horizontal**2 + vertical**2)
    return magnitude.reshape(size, size)


def random_image(image_size: int = DEFAULT_IMAGE_SIZE, seed: int = 0) -> np.ndarray:
    """Random grayscale image with values in [0, 0.5] (keeps gradients small)."""
    rng = np.random.default_rng(seed)
    image = rng.uniform(0.0, 0.5, (image_size, image_size))
    # Smooth a little so the gradients stay in the sqrt approximation's range.
    image = 0.5 * image + 0.25 * (np.roll(image, 1, axis=0) + np.roll(image, 1, axis=1))
    return image
