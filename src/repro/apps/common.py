"""Shared helpers for the example applications of Section 8.3."""

from __future__ import annotations

import time
from typing import Dict, Optional

import numpy as np

from ..backend.hisa import HomomorphicBackend
from ..core.compiler import CompilerOptions
from ..core.executor import ExecutionResult, ExecutionStats
from ..frontend.pyeva import EvaProgram, Expr, constant


def sqrt_poly(x: Expr, scale: float) -> Expr:
    """Third-degree polynomial approximation of the square root.

    This is the approximation used in the paper's Sobel example (Figure 6):
    ``sqrt(x) ~ 2.214 x - 1.098 x^2 + 0.173 x^3`` on the interval the image
    gradients live in.
    """
    return (
        x * constant(2.214, scale)
        + (x ** 2) * constant(-1.098, scale)
        + (x ** 3) * constant(0.173, scale)
    )


def sqrt_poly_reference(x: np.ndarray) -> np.ndarray:
    """NumPy reference of :func:`sqrt_poly`."""
    return 2.214 * x - 1.098 * x**2 + 0.173 * x**3


def run_application(
    program: EvaProgram,
    inputs: Dict[str, np.ndarray],
    backend: Optional[HomomorphicBackend] = None,
    options: Optional[CompilerOptions] = None,
    threads: int = 1,
) -> ExecutionResult:
    """Compile a PyEVA application and run it through the client/server split.

    The flow is the three-artifact API of :mod:`repro.api`: compile to a
    :class:`~repro.api.CompiledProgram`, encrypt with a
    :class:`~repro.api.ClientKit`, evaluate blindly on a
    :class:`~repro.api.ServerRuntime` (which never sees the secret key), and
    decrypt client-side.  The result is packaged as an
    :class:`~repro.core.executor.ExecutionResult` for the benchmark harness.
    """
    from ..api import ClientKit, CompiledProgram, ServerRuntime

    start_all = time.perf_counter()
    compiled = CompiledProgram.compile(program, options=options)

    t0 = time.perf_counter()
    client = ClientKit(compiled, backend=backend)
    context_seconds = time.perf_counter() - t0
    server = ServerRuntime(compiled, backend=client.backend, threads=threads)
    server.attach_client(client.client_id, client.evaluation_context())

    t0 = time.perf_counter()
    bundle = client.encrypt_inputs(inputs)
    encrypt_seconds = time.perf_counter() - t0

    encrypted = server.evaluate(bundle)

    t0 = time.perf_counter()
    outputs = client.decrypt_outputs(encrypted)
    decrypt_seconds = time.perf_counter() - t0

    server_context = server.client_context(client.client_id)
    stats = ExecutionStats(
        wall_seconds=time.perf_counter() - start_all,
        context_seconds=context_seconds,
        encrypt_seconds=encrypt_seconds,
        evaluate_seconds=encrypted.evaluate_seconds,
        decrypt_seconds=decrypt_seconds,
        op_count=getattr(server_context, "op_count", 0),
        peak_live_ciphertexts=getattr(server_context, "peak_live_ciphertexts", 0),
        threads=threads,
    )
    return ExecutionResult(outputs=outputs, stats=stats)
