"""Shared helpers for the example applications of Section 8.3."""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from ..backend.hisa import HomomorphicBackend
from ..core.compiler import CompilationResult, CompilerOptions
from ..core.executor import ExecutionResult, Executor
from ..frontend.pyeva import EvaProgram, Expr, constant


def sqrt_poly(x: Expr, scale: float) -> Expr:
    """Third-degree polynomial approximation of the square root.

    This is the approximation used in the paper's Sobel example (Figure 6):
    ``sqrt(x) ~ 2.214 x - 1.098 x^2 + 0.173 x^3`` on the interval the image
    gradients live in.
    """
    return (
        x * constant(2.214, scale)
        + (x ** 2) * constant(-1.098, scale)
        + (x ** 3) * constant(0.173, scale)
    )


def sqrt_poly_reference(x: np.ndarray) -> np.ndarray:
    """NumPy reference of :func:`sqrt_poly`."""
    return 2.214 * x - 1.098 * x**2 + 0.173 * x**3


def run_application(
    program: EvaProgram,
    inputs: Dict[str, np.ndarray],
    backend: Optional[HomomorphicBackend] = None,
    options: Optional[CompilerOptions] = None,
    threads: int = 1,
) -> ExecutionResult:
    """Compile a PyEVA application and execute it on encrypted inputs."""
    compilation = program.compile(options=options)
    executor = Executor(compilation, backend=backend, threads=threads)
    return executor.execute(inputs)
