"""Harris corner detection on encrypted images (Table 8).

The paper calls Harris corner detection "one of the most complex programs that
have been evaluated using CKKS".  The pipeline is the classic one:

1. image gradients ``Ix``, ``Iy`` via the Sobel filters,
2. the products ``Ixx = Ix^2``, ``Iyy = Iy^2``, ``Ixy = Ix*Iy``,
3. a 3x3 box filter accumulating the products over a window,
4. the corner response ``R = det(M) - k * trace(M)^2``.

Everything is expressed with rotations and plaintext multiplications on a
single row-major-packed image ciphertext.
"""

from __future__ import annotations

import numpy as np

from ..frontend.pyeva import EvaProgram, constant, input_encrypted, output
from .sobel import SOBEL_FILTER

#: Harris sensitivity constant.
DEFAULT_K = 0.04

#: Image side length used in the paper's evaluation (64x64 -> 4096 slots).
DEFAULT_IMAGE_SIZE = 64


def build_harris_program(
    image_size: int = DEFAULT_IMAGE_SIZE,
    k: float = DEFAULT_K,
    scale: float = 30.0,
    vec_size: int = None,
) -> EvaProgram:
    """Build the Harris corner detection program for a square image.

    ``vec_size`` defaults to ``image_size ** 2``; a larger power of two
    leaves spare slots for lane batching (compile with
    ``CompilerOptions(lane_width=image_size ** 2)``).
    """
    if vec_size is None:
        vec_size = image_size * image_size
    elif vec_size < image_size * image_size:
        raise ValueError(
            f"vec_size {vec_size} cannot hold a {image_size}x{image_size} image"
        )
    program = EvaProgram("harris", vec_size=vec_size, default_scale=scale)
    with program:
        image = input_encrypted("image", scale)

        gradient_x = None
        gradient_y = None
        for i in range(3):
            for j in range(3):
                rotated = image << (i * image_size + j)
                gx = rotated * constant(SOBEL_FILTER[i][j], scale)
                gy = rotated * constant(SOBEL_FILTER[j][i], scale)
                gradient_x = gx if gradient_x is None else gradient_x + gx
                gradient_y = gy if gradient_y is None else gradient_y + gy

        ixx = gradient_x * gradient_x
        iyy = gradient_y * gradient_y
        ixy = gradient_x * gradient_y

        def box_filter(values):
            acc = None
            for i in range(3):
                for j in range(3):
                    rotated = values << (i * image_size + j)
                    acc = rotated if acc is None else acc + rotated
            return acc

        sxx = box_filter(ixx)
        syy = box_filter(iyy)
        sxy = box_filter(ixy)

        determinant = sxx * syy - sxy * sxy
        trace = sxx + syy
        response = determinant - (trace * trace) * constant(k, scale)
        output("response", response, scale)
    return program


def reference_harris(image: np.ndarray, k: float = DEFAULT_K) -> np.ndarray:
    """Unencrypted reference with the same (wrap-around) boundary behaviour."""
    size = image.shape[0]
    flat = image.reshape(-1).astype(np.float64)
    gradient_x = np.zeros_like(flat)
    gradient_y = np.zeros_like(flat)
    for i in range(3):
        for j in range(3):
            rotated = np.roll(flat, -(i * size + j))
            gradient_x += SOBEL_FILTER[i][j] * rotated
            gradient_y += SOBEL_FILTER[j][i] * rotated
    ixx, iyy, ixy = gradient_x**2, gradient_y**2, gradient_x * gradient_y

    def box_filter(values: np.ndarray) -> np.ndarray:
        acc = np.zeros_like(values)
        for i in range(3):
            for j in range(3):
                acc += np.roll(values, -(i * size + j))
        return acc

    sxx, syy, sxy = box_filter(ixx), box_filter(iyy), box_filter(ixy)
    response = (sxx * syy - sxy * sxy) - k * (sxx + syy) ** 2
    return response.reshape(size, size)
