"""Statistical machine learning on encrypted data (Table 8).

Three applications mirror the paper's statistical-ML workloads: evaluating a
linear regression model, a (univariate) polynomial regression model, and a
multivariate regression model on encrypted feature vectors.  The model
coefficients are plaintext (they belong to the service provider); the feature
vectors are encrypted (they belong to the client).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..frontend.pyeva import EvaProgram, constant, input_encrypted, output

#: Vector sizes reported in Table 8.
LINEAR_VEC_SIZE = 2048
POLYNOMIAL_VEC_SIZE = 4096
MULTIVARIATE_VEC_SIZE = 2048


def build_linear_regression_program(
    slope: float = 1.7,
    intercept: float = -0.3,
    vec_size: int = LINEAR_VEC_SIZE,
    scale: float = 30.0,
) -> EvaProgram:
    """``y = a*x + b`` evaluated element-wise on an encrypted vector."""
    program = EvaProgram("linear_regression", vec_size=vec_size, default_scale=scale)
    with program:
        x = input_encrypted("x", scale)
        y = x * constant(slope, scale) + constant(intercept, scale)
        output("prediction", y, scale)
    return program


def reference_linear_regression(x: np.ndarray, slope: float = 1.7, intercept: float = -0.3) -> np.ndarray:
    return slope * x + intercept


def build_polynomial_regression_program(
    coefficients: Sequence[float] = (0.5, -1.2, 0.8, 0.3),
    vec_size: int = POLYNOMIAL_VEC_SIZE,
    scale: float = 30.0,
) -> EvaProgram:
    """Polynomial model ``c0 + c1*x + c2*x^2 + c3*x^3`` on an encrypted vector.

    Evaluated in Horner form to keep the multiplicative depth at the number of
    coefficients minus one.
    """
    program = EvaProgram("polynomial_regression", vec_size=vec_size, default_scale=scale)
    coeffs = list(coefficients)
    with program:
        x = input_encrypted("x", scale)
        result = constant(coeffs[-1], scale) * x
        for coefficient in reversed(coeffs[1:-1]):
            result = (result + constant(coefficient, scale)) * x
        result = result + constant(coeffs[0], scale)
        output("prediction", result, scale)
    return program


def reference_polynomial_regression(
    x: np.ndarray, coefficients: Sequence[float] = (0.5, -1.2, 0.8, 0.3)
) -> np.ndarray:
    result = np.zeros_like(np.asarray(x, dtype=np.float64))
    for power, coefficient in enumerate(coefficients):
        result = result + coefficient * np.power(x, power)
    return result


def build_multivariate_regression_program(
    weights: Sequence[float] = (0.9, -0.4, 1.3, 0.2, -0.7),
    intercept: float = 0.1,
    vec_size: int = MULTIVARIATE_VEC_SIZE,
    scale: float = 30.0,
) -> EvaProgram:
    """``y = w . x + b`` where each feature is a separate encrypted vector."""
    program = EvaProgram("multivariate_regression", vec_size=vec_size, default_scale=scale)
    weights = list(weights)
    with program:
        features = [input_encrypted(f"x{i}", scale) for i in range(len(weights))]
        result = features[0] * constant(weights[0], scale)
        for feature, weight in zip(features[1:], weights[1:]):
            result = result + feature * constant(weight, scale)
        result = result + constant(intercept, scale)
        output("prediction", result, scale)
    return program


def reference_multivariate_regression(
    features: Dict[str, np.ndarray],
    weights: Sequence[float] = (0.9, -0.4, 1.3, 0.2, -0.7),
    intercept: float = 0.1,
) -> np.ndarray:
    result = None
    for index, weight in enumerate(weights):
        term = weight * np.asarray(features[f"x{index}"], dtype=np.float64)
        result = term if result is None else result + term
    return result + intercept
