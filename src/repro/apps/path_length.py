"""3-dimensional path length on encrypted coordinates (Table 8).

Given encrypted vectors of x/y/z coordinates of consecutive waypoints, the
program computes the total length of the polyline connecting them:
``sum_i sqrt(dx_i^2 + dy_i^2 + dz_i^2)``, with the square root evaluated by
the same third-degree polynomial approximation the paper uses.  This kernel
appears in secure fitness-tracking scenarios (the paper's motivating example).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..frontend.pyeva import EvaProgram, constant, input_encrypted, output
from .common import sqrt_poly, sqrt_poly_reference

#: Default vector size used by the paper's evaluation (Table 8).
DEFAULT_VEC_SIZE = 4096


def build_path_length_program(
    num_points: int = DEFAULT_VEC_SIZE, scale: float = 30.0
) -> EvaProgram:
    """Build the PyEVA program computing the length of an encrypted 3-D path."""
    program = EvaProgram("path_length_3d", vec_size=num_points, default_scale=scale)
    segment_mask = np.zeros(num_points)
    segment_mask[: num_points - 1] = 1.0
    with program:
        x = input_encrypted("x", scale)
        y = input_encrypted("y", scale)
        z = input_encrypted("z", scale)
        dx = (x << 1) - x
        dy = (y << 1) - y
        dz = (z << 1) - z
        squared = dx * dx + dy * dy + dz * dz
        lengths = sqrt_poly(squared, scale)
        # Mask out the wrap-around segment before the reduction.
        valid = lengths * constant(segment_mask, scale)
        total = valid.sum()
        output("length", total, scale)
    return program


def reference_path_length(x: np.ndarray, y: np.ndarray, z: np.ndarray) -> float:
    """Unencrypted reference using the same polynomial square-root approximation."""
    dx, dy, dz = np.diff(x), np.diff(y), np.diff(z)
    squared = dx * dx + dy * dy + dz * dz
    return float(np.sum(sqrt_poly_reference(squared)))


def random_path(num_points: int = DEFAULT_VEC_SIZE, seed: int = 0) -> Dict[str, np.ndarray]:
    """Random smooth 3-D path with steps small enough for the sqrt approximation."""
    rng = np.random.default_rng(seed)
    steps = rng.normal(0.0, 0.05, (3, num_points))
    coords = np.cumsum(steps, axis=1)
    coords -= coords.mean(axis=1, keepdims=True)
    coords = np.clip(coords, -1.0, 1.0)
    return {"x": coords[0], "y": coords[1], "z": coords[2]}
