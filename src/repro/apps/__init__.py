"""Applications evaluated in Section 8.3: arithmetic, statistical ML, image processing."""

from .common import run_application, sqrt_poly, sqrt_poly_reference
from .harris import build_harris_program, reference_harris
from .path_length import build_path_length_program, random_path, reference_path_length
from .regression import (
    build_linear_regression_program,
    build_multivariate_regression_program,
    build_polynomial_regression_program,
    reference_linear_regression,
    reference_multivariate_regression,
    reference_polynomial_regression,
)
from .sobel import build_sobel_program, random_image, reference_sobel

__all__ = [
    "run_application",
    "sqrt_poly",
    "sqrt_poly_reference",
    "build_harris_program",
    "reference_harris",
    "build_path_length_program",
    "random_path",
    "reference_path_length",
    "build_linear_regression_program",
    "build_multivariate_regression_program",
    "build_polynomial_regression_program",
    "reference_linear_regression",
    "reference_multivariate_regression",
    "reference_polynomial_regression",
    "build_sobel_program",
    "random_image",
    "reference_sobel",
]
