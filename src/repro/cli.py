"""Command-line interface for working with serialized EVA programs.

Mirrors the workflow split the paper describes (the client owns the keys and
data, the server owns the compiled program): programs written with PyEVA can
be saved to disk (``repro.core.serialization.save``), then inspected, compiled
and executed from the command line::

    python -m repro.cli info program.evaproto
    python -m repro.cli compile program.evaproto -o compiled.evaproto --policy eva
    python -m repro.cli run compiled.evaproto --inputs inputs.json --backend mock

``inputs.json`` maps input names to numbers or lists of numbers; the decrypted
outputs are printed as JSON.

The serving subsystem is exposed as a command pair: ``serve`` registers one or
more program files with an :class:`~repro.serving.EvaServer` and listens on a
TCP port (newline-delimited JSON requests), and ``submit`` sends a request to
a running server::

    python -m repro.cli serve squares.evaproto --port 8587
    python -m repro.cli submit squares --inputs inputs.json --port 8587

With ``--encrypt``, ``submit`` keeps the keys client-side: it compiles the
program locally (``--program-file`` must name the same file the server
serves, with the same compile options), registers its evaluation keys as a
session, sends *encrypted* inputs, and decrypts the ciphertext reply
locally — the server never sees plaintext or the secret key::

    python -m repro.cli submit squares --inputs inputs.json --port 8587 \\
        --encrypt --program-file squares.evaproto
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict

import numpy as np

from .core import CompilerOptions, EvaCompiler, Executor
from .core.analysis import select_parameters, select_rotation_steps
from .core.serialization import load, save
from .errors import EvaError


def _load_inputs(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _make_backend(name: str, seed: int):
    from .serving import BackendSpec

    return BackendSpec(name=name, seed=seed).build()


def cmd_info(args: argparse.Namespace) -> int:
    program = load(args.program)
    counts = {op.name: count for op, count in sorted(program.op_counts().items())}
    info = {
        "name": program.name,
        "vec_size": program.vec_size,
        "terms": len(program),
        "inputs": {name: term.scale for name, term in program.inputs.items()},
        "outputs": list(program.outputs),
        "multiplicative_depth": program.multiplicative_depth(),
        "op_counts": counts,
    }
    print(json.dumps(info, indent=2))
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    program = load(args.program)
    options = CompilerOptions(
        policy=args.policy,
        max_rescale_bits=args.max_rescale_bits,
        security_level=args.security,
        lane_width=args.lane_width,
    )
    result = EvaCompiler(options).compile(program)
    save(result.program, args.output)
    summary = dict(result.summary())
    summary["coeff_modulus_bits"] = result.parameters.coeff_modulus_bits
    summary["rotation_steps"] = result.rotation_steps
    summary["output"] = str(args.output)
    print(json.dumps(summary, indent=2))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    program = load(args.program)
    options = CompilerOptions(
        policy=args.policy,
        max_rescale_bits=args.max_rescale_bits,
        security_level=args.security,
        lane_width=args.lane_width,
    )
    # The executable on disk may be an already-compiled program (containing
    # FHE-specific instructions); in that case only parameter selection is
    # needed.  Otherwise compile from scratch.
    has_fhe_ops = any(term.op.is_fhe_specific for term in program.terms())
    if has_fhe_ops:
        rotation_steps = select_rotation_steps(program)
        parameters = select_parameters(
            program,
            max_rescale_bits=options.max_rescale_bits,
            security_level=options.security_level,
            rotation_steps=rotation_steps,
        )
        from .core.compiler import CompilationResult

        compilation = CompilationResult(
            program=program,
            parameters=parameters,
            rotation_steps=rotation_steps,
            options=options,
            input_scales={n: float(t.scale or 0.0) for n, t in program.inputs.items()},
            output_scales=dict(program.output_scales),
        )
    else:
        compilation = EvaCompiler(options).compile(program)

    inputs = _load_inputs(args.inputs)
    backend = _make_backend(args.backend, args.seed)
    executor = Executor(compilation, backend=backend, threads=args.threads)
    result = executor.execute(inputs)
    outputs = {
        name: np.asarray(values)[: args.head].tolist()
        for name, values in result.outputs.items()
    }
    print(json.dumps({"outputs": outputs, "wall_seconds": result.stats.wall_seconds}, indent=2))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    options = CompilerOptions(
        policy=args.policy,
        max_rescale_bits=args.max_rescale_bits,
        security_level=args.security,
        lane_width=args.lane_width,
    )
    # Load and validate everything before spinning up worker threads or
    # binding the port, so a bad invocation fails fast and clean.
    programs = {}
    for path in args.programs:
        name = Path(path).stem
        if name in programs:
            raise EvaError(
                f"duplicate program name {name!r}: {path} would overwrite an "
                "already-registered file with the same stem"
            )
        program = load(path)
        if any(term.op.is_fhe_specific for term in program.terms()):
            raise EvaError(
                f"{path} is an already-compiled program (contains FHE-specific "
                "instructions); the server compiles on registration, so serve "
                "the source program instead"
            )
        programs[name] = program
    config = None
    if args.cluster_config:
        from .serving import load_cluster_config

        config = load_cluster_config(args.cluster_config)
    if config is not None or args.shards > 1:
        return _serve_cluster(args, options, programs, config)
    return _serve_single(args, options, programs)


def _fairness_policy(args):
    """A FairnessPolicy from the serve flags, or None when no quota is set."""
    if args.quota_burst is not None and args.quota_rps is None:
        # Burst is the rate limiter's bucket capacity; without a rate it
        # would be silently ignored — refuse rather than mislead.
        raise EvaError("--quota-burst requires --quota-rps")
    if args.quota_rps is None and args.max_inflight is None:
        return None
    from .serving import FairnessPolicy

    return FairnessPolicy(
        quota_rps=args.quota_rps,
        burst=args.quota_burst,
        max_inflight=args.max_inflight,
    )


def _serve_single(args, options, programs) -> int:
    from .serving import (
        ArtifactCache,
        EvaServer,
        EvaTcpServer,
        LaneWidthPolicy,
        SessionStore,
        Telemetry,
        configure_logging,
    )

    configure_logging(json_logs=args.log_json, level=args.log_level)
    session_store = None
    if args.session_dir:
        session_store = SessionStore(args.session_dir, ttl=args.session_ttl)
        pruned = session_store.prune()
        if pruned:
            print(f"pruned {pruned} expired session record(s)", file=sys.stderr)
    server = EvaServer(
        backend=_make_backend(args.backend, args.seed),
        workers=args.workers,
        max_batch=args.max_batch,
        batch_window=args.batch_window,
        executor_threads=args.threads,
        session_store=session_store,
        artifact_cache=ArtifactCache(args.artifact_dir) if args.artifact_dir else None,
        fairness=_fairness_policy(args),
        precompile=(
            LaneWidthPolicy(top_widths=args.precompile_widths)
            if args.precompile_widths
            else None
        ),
        telemetry=Telemetry(slow_threshold=args.slow_threshold),
    )
    for name, program in programs.items():
        server.register(name, program, options=options)
    tcp = EvaTcpServer(
        server,
        host=args.host,
        port=args.port,
        wire_policy=args.wire,
        frontdoor=args.frontdoor,
    )
    host, port = tcp.address
    print(
        json.dumps(
            {
                "serving": f"{host}:{port}",
                "programs": server.programs(),
                "session_dir": args.session_dir,
                "artifact_dir": args.artifact_dir,
            }
        ),
        flush=True,
    )
    try:
        tcp.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        tcp.shutdown()
        server.close()
    return 0


def _serve_cluster(args, options, programs, config=None) -> int:
    from .serving import BackendSpec, ClusterTcpServer, EvaCluster, configure_logging

    configure_logging(json_logs=args.log_json, level=args.log_level)
    kwargs = dict(
        shards=args.shards,
        backend=BackendSpec(name=args.backend, seed=args.seed),
        session_dir=args.session_dir,
        workers=args.workers,
        max_batch=args.max_batch,
        batch_window=args.batch_window,
        executor_threads=args.threads,
        host=args.host,
        session_ttl=args.session_ttl,
        artifact_dir=args.artifact_dir,
        fairness=_fairness_policy(args),
        health_interval=args.health_interval or None,
        slow_threshold=args.slow_threshold,
        log_json=args.log_json,
        log_level=args.log_level,
        wire=args.wire,
    )
    if config is not None:
        # [cluster] table entries override the flag-derived kwargs; [[remote]]
        # endpoints attach at start; a [scale] table enables the autoscaler
        # (ticking every `interval` seconds, default 1).
        kwargs.update(config["cluster"])
        if config["remote"]:
            kwargs["remote_shards"] = config["remote"]
        if config["scale"] is not None:
            kwargs["scale_policy"] = config["scale"]
            kwargs["scale_interval"] = config["scale_interval"] or 1.0
    try:
        cluster = EvaCluster(**kwargs)
    except TypeError as error:
        raise EvaError(f"bad [cluster] config key: {error}") from None
    for name, program in programs.items():
        cluster.register(name, program, options=options)
    cluster.start()
    tcp = ClusterTcpServer(
        cluster,
        host=args.host,
        port=args.port,
        slow_threshold=args.slow_threshold,
        wire_policy=args.wire,
        frontdoor=args.frontdoor,
    )
    host, port = tcp.address
    print(
        json.dumps(
            {
                "serving": f"{host}:{port}",
                "programs": sorted(programs),
                "shards": cluster.shard_infos(),
                "session_dir": args.session_dir,
                "artifact_dir": args.artifact_dir,
            }
        ),
        flush=True,
    )
    try:
        tcp.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        tcp.shutdown()
        cluster.close()
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    from .serving import ServingClient

    inputs = _load_inputs(args.inputs)
    with ServingClient(
        args.host, args.port, timeout=args.timeout, wire=args.wire
    ) as client:
        if args.encrypt:
            if not args.program_file:
                raise EvaError(
                    "--encrypt needs --program-file (the same program file the "
                    "server serves) to compile locally and derive keys"
                )
            from .api import ClientKit, CompiledProgram

            options = CompilerOptions(
                policy=args.policy,
                max_rescale_bits=args.max_rescale_bits,
                security_level=args.security,
                lane_width=args.lane_width,
            )
            compiled = CompiledProgram.compile(load(args.program_file), options=options)
            kit = ClientKit(
                compiled,
                backend=_make_backend(args.backend, args.seed),
                client_id=args.client,
            )
            if not args.resume:
                client.create_session(args.program, kit)
            outputs = client.submit_encrypted(
                args.program,
                kit,
                inputs,
                trace=args.trace,
                deadline_ms=args.deadline_ms,
                slo_class=args.slo_class,
            )
        else:
            outputs = client.submit(
                args.program,
                inputs,
                client_id=args.client,
                trace=args.trace,
                deadline_ms=args.deadline_ms,
                slo_class=args.slo_class,
            )
        payload = {
            "outputs": {
                name: np.asarray(values)[: args.head].tolist()
                for name, values in outputs.items()
            },
            "stats": client.last_stats,
        }
        if args.trace:
            payload["trace"] = client.last_trace
            if client.last_trace:
                # A human-readable per-stage breakdown alongside the raw spans
                # (summed per stage, in case a merged trace repeats one).
                breakdown: Dict[str, float] = {}
                for span in client.last_trace.get("spans", []):
                    stage = str(span.get("stage"))
                    breakdown[stage] = round(
                        breakdown.get(stage, 0.0) + float(span.get("seconds", 0.0)), 6
                    )
                payload["trace_breakdown"] = breakdown
    print(json.dumps(payload, indent=2))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Profile the real CKKS backend on representative programs."""
    from .profiling import run_profile

    report = run_profile(
        args.programs,
        repeats=args.repeats,
        top=args.top,
        log=lambda line: print(line, file=sys.stderr),
    )
    text = json.dumps(report, indent=2)
    if args.out:
        Path(args.out).write_text(text + "\n", encoding="utf-8")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(text)
    return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    """Cluster administration against a running router: health, drain, rejoin."""
    from .serving import ServingClient

    with ServingClient(
        args.host, args.port, timeout=args.timeout, wire=args.wire
    ) as client:
        if args.action == "health":
            payload = {"health": client.health()}
        elif args.action == "stats":
            payload = {"stats": client.stats()}
        elif args.action == "route":
            payload = {"route": client.route(args.client)}
        elif args.action == "drain":
            if args.shard is None:
                raise EvaError("cluster drain needs --shard")
            payload = {"drain": client.drain(args.shard)}
        elif args.action == "rejoin":
            if args.shard is None:
                raise EvaError("cluster rejoin needs --shard")
            payload = {"rejoin": client.rejoin(args.shard)}
        elif args.action == "join":
            if not args.join_host or args.join_port is None:
                raise EvaError("cluster join needs --join-host and --join-port")
            payload = {"join": client.join(args.join_host, args.join_port)}
        elif args.action == "metrics":
            reply = client.metrics(prometheus=args.prometheus)
            if args.prometheus:
                # Raw text exposition, ready for a scraper — not JSON.
                print(reply.get("prometheus", ""))
                return 0
            payload = reply
        elif args.action == "trace":
            if not args.trace_id:
                raise EvaError("cluster trace needs a trace id argument")
            payload = {"trace": client.trace_of(args.trace_id)}
        elif args.action == "slow":
            payload = {"slow": client.slow(limit=args.limit)}
        else:  # pragma: no cover - argparse restricts the choices
            raise EvaError(f"unknown cluster action {args.action!r}")
    print(json.dumps(payload, indent=2))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli", description="Inspect, compile, and run serialized EVA programs."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="print a summary of a program file")
    info.add_argument("program", type=Path)
    info.set_defaults(func=cmd_info)

    def add_compile_options(p):
        p.add_argument("--policy", choices=["eva", "chet"], default="eva")
        p.add_argument("--max-rescale-bits", type=float, default=60.0)
        p.add_argument("--security", type=int, default=128, choices=[128, 192, 256])
        p.add_argument(
            "--lane-width",
            type=int,
            default=None,
            help="lane-lower rotations to this power-of-two width (makes "
            "rotation-bearing programs slot-batchable; server and encrypting "
            "clients must agree on it)",
        )

    comp = sub.add_parser("compile", help="compile an input program")
    comp.add_argument("program", type=Path)
    comp.add_argument("-o", "--output", type=Path, required=True)
    add_compile_options(comp)
    comp.set_defaults(func=cmd_compile)

    run = sub.add_parser("run", help="compile (if needed) and execute a program")
    run.add_argument("program", type=Path)
    run.add_argument("--inputs", required=True, help="JSON file mapping input names to values")
    run.add_argument("--backend", default="mock", choices=["mock", "mock-exact", "ckks"])
    run.add_argument("--threads", type=int, default=1)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--head", type=int, default=8, help="number of output slots to print")
    add_compile_options(run)
    run.set_defaults(func=cmd_run)

    serve = sub.add_parser(
        "serve", help="serve programs over TCP (JSON lines + binary frames)"
    )
    serve.add_argument("programs", type=Path, nargs="+", help="program files; each is registered under its file stem")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8587, help="TCP port (0 picks a free port)")
    serve.add_argument("--backend", default="mock", choices=["mock", "mock-exact", "ckks"])
    serve.add_argument("--workers", type=int, default=2, help="job-engine worker threads")
    serve.add_argument("--max-batch", type=int, default=8, help="max requests packed per execution")
    serve.add_argument("--batch-window", type=float, default=0.005, help="seconds a worker lingers to fill a batch")
    serve.add_argument("--threads", type=int, default=1, help="executor threads per evaluation")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="number of worker shard processes; >1 serves through a "
        "consistent-hash router (each shard is a full server process)",
    )
    serve.add_argument(
        "--session-dir",
        default=None,
        help="directory persisting client evaluation-key blobs, so encrypted "
        "sessions survive restarts and shard failures",
    )
    serve.add_argument(
        "--session-ttl",
        type=float,
        default=None,
        help="seconds a persisted session record stays valid; expired records "
        "are pruned at startup and read as missing, so --session-dir "
        "directories don't grow unboundedly",
    )
    serve.add_argument(
        "--artifact-dir",
        default=None,
        help="shared compiled-artifact cache directory: shards load programs "
        "(and lane variants) their siblings already compiled instead of "
        "recompiling",
    )
    serve.add_argument(
        "--quota-rps",
        type=float,
        default=None,
        help="per-client sustained requests/second (token bucket); violations "
        "get a QuotaExceededError reply with retry_after",
    )
    serve.add_argument(
        "--quota-burst",
        type=float,
        default=None,
        help="per-client burst allowance (bucket capacity; default 2x the rate)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="per-client cap on queued+executing requests",
    )
    serve.add_argument(
        "--health-interval",
        type=float,
        default=2.0,
        help="seconds between the cluster's shard health probes (shards >1; "
        "0 disables)",
    )
    serve.add_argument(
        "--slow-threshold",
        type=float,
        default=1.0,
        help="seconds above which a request is recorded in the slow-request "
        "ring and logged as a structured WARNING",
    )
    serve.add_argument(
        "--log-json",
        action="store_true",
        help="emit one-line JSON log events (trace_id, client, op fields) "
        "instead of plain text",
    )
    serve.add_argument(
        "--log-level",
        default="INFO",
        help="logging level for the serving logger tree (DEBUG, INFO, ...)",
    )
    serve.add_argument(
        "--precompile-widths",
        type=int,
        default=0,
        help="pre-warm this many of the most-requested lane widths per "
        "program in the background (0 disables; single-process serve only)",
    )
    serve.add_argument(
        "--wire",
        choices=["auto", "binary", "json"],
        default="auto",
        help="wire policy: auto serves JSON lines and grants binary framing "
        "to clients that negotiate it; json pins the listener to JSON "
        "(legacy clients work unchanged under every policy)",
    )
    serve.add_argument(
        "--frontdoor",
        choices=["async", "threaded"],
        default=None,
        help="listener transport: async (default) multiplexes every "
        "connection on one event loop and scales to thousands of idle "
        "sessions; threaded dedicates an OS thread per connection (the "
        "legacy fallback); REPRO_FRONTDOOR sets the default",
    )
    serve.add_argument(
        "--cluster-config",
        type=Path,
        default=None,
        help="TOML cluster config: a [cluster] table of EvaCluster settings "
        "(overrides the flags), [[remote]] shard endpoints to attach at "
        "start, and a [scale] table enabling queue-depth autoscaling; "
        "implies cluster mode even with --shards 1",
    )
    add_compile_options(serve)
    serve.set_defaults(func=cmd_serve)

    submit = sub.add_parser("submit", help="submit a request to a running server")
    submit.add_argument("program", help="registered program name")
    submit.add_argument("--inputs", required=True, help="JSON file mapping input names to values")
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=8587)
    submit.add_argument("--client", default="default", help="client id (keys are cached per client)")
    submit.add_argument("--timeout", type=float, default=30.0)
    submit.add_argument("--head", type=int, default=8, help="number of output slots to print")
    submit.add_argument(
        "--encrypt",
        action="store_true",
        help="encrypt inputs client-side; the server evaluates ciphertexts only",
    )
    submit.add_argument(
        "--program-file",
        type=Path,
        default=None,
        help="program file for --encrypt (must match what the server serves)",
    )
    submit.add_argument(
        "--resume",
        action="store_true",
        help="with --encrypt: skip session creation and reuse the session the "
        "server already holds (or can restore from its --session-dir store)",
    )
    submit.add_argument(
        "--backend",
        default="mock",
        choices=["mock", "mock-exact", "ckks"],
        help="client-side backend for --encrypt (must match the server's)",
    )
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument(
        "--trace",
        action="store_true",
        help="mint a trace id, have the server record per-stage spans, and "
        "print the stage breakdown with the outputs",
    )
    submit.add_argument(
        "--wire",
        choices=["auto", "binary", "json"],
        default="auto",
        help="wire framing: auto negotiates the binary protocol and falls "
        "back to JSON lines; binary demands it; json skips negotiation",
    )
    submit.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="latency deadline in milliseconds; the server rejects the "
        "request up front (DeadlineInfeasibleError with retry_after) when "
        "its modeled queue wait plus execution cannot meet it",
    )
    submit.add_argument(
        "--slo-class",
        choices=["tight", "standard", "relaxed"],
        default=None,
        help="service class steering batch-vs-solo: tight never lingers for "
        "a batch, relaxed always amortizes the full window, standard "
        "lingers only within its deadline slack",
    )
    add_compile_options(submit)
    submit.set_defaults(func=cmd_submit)

    profile = sub.add_parser(
        "profile",
        help="profile the real CKKS backend's hot paths (cProfile + "
        "tracemalloc) on representative programs and print a per-op cost "
        "breakdown as JSON",
    )
    profile.add_argument(
        "--programs",
        nargs="+",
        default=None,
        help="subset of the profile suite (sobel_lanes, harris_lanes, sum, "
        "poly_relin); default runs all",
    )
    profile.add_argument(
        "--repeats", type=int, default=3, help="evaluations per program"
    )
    profile.add_argument(
        "--top", type=int, default=15, help="top functions to report"
    )
    profile.add_argument(
        "--out", type=Path, default=None, help="write the JSON report here instead of stdout"
    )
    profile.set_defaults(func=cmd_profile)

    cluster = sub.add_parser(
        "cluster",
        help="administer a running sharded server (health, drain, rejoin, "
        "join, metrics, trace, slow)",
    )
    cluster.add_argument(
        "action",
        choices=[
            "health",
            "stats",
            "route",
            "drain",
            "rejoin",
            "join",
            "metrics",
            "trace",
            "slow",
        ],
        help="health: per-shard liveness; stats: cluster stats; route: a "
        "client's shard; drain: remove a shard from the ring without "
        "stopping it; rejoin: return a shard to the ring (respawning it "
        "if dead); join: attach a running remote shard (--join-host/"
        "--join-port) to the ring; metrics: aggregated metrics snapshot "
        "(--prometheus for text exposition); trace: per-stage spans of one "
        "trace id; slow: recent slow requests",
    )
    cluster.add_argument(
        "trace_id",
        nargs="?",
        default=None,
        help="trace id for the trace action",
    )
    cluster.add_argument("--host", default="127.0.0.1")
    cluster.add_argument("--port", type=int, default=8587)
    cluster.add_argument("--shard", type=int, default=None, help="shard index for drain/rejoin")
    cluster.add_argument(
        "--join-host",
        default=None,
        help="host of a running shard server to attach with the join action",
    )
    cluster.add_argument(
        "--join-port",
        type=int,
        default=None,
        help="port of the shard server to attach with the join action",
    )
    cluster.add_argument("--client", default="default", help="client id for route")
    cluster.add_argument("--timeout", type=float, default=30.0)
    cluster.add_argument(
        "--prometheus",
        action="store_true",
        help="with metrics: print the Prometheus text exposition",
    )
    cluster.add_argument(
        "--limit",
        type=int,
        default=None,
        help="with slow: cap the number of records returned",
    )
    cluster.add_argument(
        "--wire",
        choices=["auto", "binary", "json"],
        default="auto",
        help="wire framing: auto negotiates the binary protocol and falls "
        "back to JSON lines; binary demands it; json skips negotiation",
    )
    cluster.set_defaults(func=cmd_cluster)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except EvaError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
