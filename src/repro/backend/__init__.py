"""Homomorphic backends implementing the HISA interface.

Two backends are provided:

* :class:`~repro.backend.mock_backend.MockBackend` — a metadata-exact CKKS
  simulator.  It stores logical values in the clear but tracks scales, the
  coefficient-modulus chain, polynomial counts and an approximation-error
  model, and raises the same class of errors a real RNS-CKKS library raises
  when a cryptographic constraint is violated.  It is the default backend for
  tests and the DNN benchmarks.
* :class:`~repro.backend.seal_backend.CkksBackend` — a real RNS-CKKS
  implementation built on :mod:`repro.ckks` (the SEAL substitute), suitable
  for laptop-scale parameters.
"""

from .hisa import HomomorphicBackend, BackendContext
from .mock_backend import MockBackend
from .cost_model import CostModel, DEFAULT_COST_MODEL

__all__ = [
    "HomomorphicBackend",
    "BackendContext",
    "MockBackend",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "CkksBackend",
]


def __getattr__(name):
    if name == "CkksBackend":
        from .seal_backend import CkksBackend

        return CkksBackend
    raise AttributeError(name)
