"""Analytical cost model for RNS-CKKS operations.

The paper's latency results were measured on SEAL running on a 56-core Xeon;
this reproduction replaces the hardware with a calibrated analytical model so
the *relative* behaviour (which policy wins, how the advantage scales with
network depth, how the DAG parallelises) is preserved.

The model follows the asymptotic costs of the RNS-CKKS primitives: every
primitive touches all ``L`` remaining RNS components of ``N`` coefficients,
NTTs cost ``N log N`` per component, and key-switching operations
(relinearization, rotation) additionally pay a quadratic factor in ``L`` for
the decomposition products.  The constants were chosen so that a LeNet-scale
program lands in the seconds range on the paper's reference machine, which
makes the reproduced tables easy to compare side by side with the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..core.types import Op, ValueType

#: Seconds per (coefficient * RNS component) of simple modular arithmetic.
_BASE_SECONDS = 2.0e-9


@dataclass
class CostModel:
    """Per-operation latency model parameterized by N and the remaining level count."""

    base_seconds: float = _BASE_SECONDS
    #: Relative weight of each operation class.
    weights: Dict[str, float] = field(
        default_factory=lambda: {
            "add": 0.4,
            "negate": 0.25,
            "multiply": 3.0,
            "multiply_plain": 1.6,
            "relinearize": 0.0,  # keyswitch term dominates; see keyswitch_weight
            "rotate": 0.0,
            "mod_switch": 0.4,
            "rescale": 1.2,
            "encode": 1.0,
            "encrypt": 2.5,
            "decrypt": 1.0,
        }
    )
    #: Weight of the key-switching inner product, multiplied by L (quadratic in L overall).
    keyswitch_weight: float = 1.5
    #: Seconds per byte of Galois key material generated and shipped at
    #: session setup (keygen + serialization + upload, ~80 MB/s end to end —
    #: calibrated against the PR 7 streaming-key-upload measurements).
    key_seconds_per_byte: float = 1.25e-8
    #: Amortization horizon: evaluations one session is expected to serve.
    #: Key costs are paid once per session, rotations on every evaluation.
    session_evaluations: float = 64.0

    def op_seconds(self, kind: str, poly_degree: int, remaining_levels: int) -> float:
        """Latency (seconds) of one primitive of class ``kind``.

        ``remaining_levels`` is the number of RNS components still present in
        the operand ciphertexts (the paper's ``r`` minus the consumed levels).
        """
        levels = max(int(remaining_levels), 1)
        n = max(int(poly_degree), 2)
        log_n = max(n.bit_length() - 1, 1)
        unit = self.base_seconds * n * levels
        weight = self.weights.get(kind, 1.0)
        cost = weight * unit * log_n / 14.0
        if kind in ("relinearize", "rotate"):
            cost += self.keyswitch_weight * unit * levels * log_n / 14.0
        return cost

    def galois_key_bytes(self, poly_degree: int, levels: int) -> int:
        """Modeled wire size of *one* Galois key at ``(N, L)``.

        A key-switching key holds one pair of RNS polynomials per
        decomposition component: ``L`` components x 2 polynomials x ``L + 1``
        primes x ``N`` coefficients x 8 bytes.  The estimate is deterministic
        in the parameters, so telemetry and benchmarks report the same number
        on the mock and real backends.
        """
        levels = max(int(levels), 1)
        n = max(int(poly_degree), 2)
        return 2 * levels * (levels + 1) * n * 8

    def rotation_plan_seconds(
        self,
        key_count: int,
        extra_rotations: int,
        poly_degree: int,
        remaining_levels: int,
    ) -> float:
        """Amortized per-session cost of a rotation-key plan.

        ``key_count`` Galois keys are generated and uploaded once per session;
        ``extra_rotations`` (giant steps not already computed directly) are
        paid on each of the session's ``session_evaluations`` evaluations.
        The BSGS planner minimizes this sum.
        """
        key_seconds = (
            key_count
            * self.galois_key_bytes(poly_degree, remaining_levels)
            * self.key_seconds_per_byte
        )
        run_seconds = (
            extra_rotations
            * self.op_seconds("rotate", poly_degree, remaining_levels)
            * self.session_evaluations
        )
        return key_seconds + run_seconds

    def program_seconds(self, program, poly_degree: int, remaining_levels: int) -> float:
        """Modeled evaluation latency of a compiled program graph.

        Uses a flat level count for every term (pessimistic for late, cheap
        levels) — the number is meant for *relative* comparisons, e.g. the
        lane-width picker scoring candidate widths against each other.
        """
        total = 0.0
        for term in program.terms():
            if term.is_root:
                continue
            cipher_operands = sum(
                1 for arg in term.args if arg.value_type is ValueType.CIPHER
            )
            kind = self.term_kind(term.op, cipher_operands)
            total += self.op_seconds(kind, poly_degree, remaining_levels)
        return total

    def term_kind(self, op: Op, cipher_operands: int) -> str:
        """Map an EVA opcode to a cost-model operation class."""
        if op is Op.MULTIPLY:
            return "multiply" if cipher_operands >= 2 else "multiply_plain"
        if op in (Op.ADD, Op.SUB):
            return "add"
        if op is Op.NEGATE or op is Op.COPY:
            return "negate"
        if op in (Op.ROTATE_LEFT, Op.ROTATE_RIGHT):
            return "rotate"
        if op is Op.RELINEARIZE:
            return "relinearize"
        if op is Op.RESCALE:
            return "rescale"
        if op is Op.MOD_SWITCH:
            return "mod_switch"
        return "add"


#: Shared default instance used by the scheduler and the benchmarks.
DEFAULT_COST_MODEL = CostModel()
