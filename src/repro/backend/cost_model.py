"""Analytical cost model for RNS-CKKS operations.

The paper's latency results were measured on SEAL running on a 56-core Xeon;
this reproduction replaces the hardware with a calibrated analytical model so
the *relative* behaviour (which policy wins, how the advantage scales with
network depth, how the DAG parallelises) is preserved.

The model follows the asymptotic costs of the RNS-CKKS primitives: every
primitive touches all ``L`` remaining RNS components of ``N`` coefficients,
NTTs cost ``N log N`` per component, and key-switching operations
(relinearization, rotation) additionally pay a quadratic factor in ``L`` for
the decomposition products.  The constants were chosen so that a LeNet-scale
program lands in the seconds range on the paper's reference machine, which
makes the reproduced tables easy to compare side by side with the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..core.types import Op

#: Seconds per (coefficient * RNS component) of simple modular arithmetic.
_BASE_SECONDS = 2.0e-9


@dataclass
class CostModel:
    """Per-operation latency model parameterized by N and the remaining level count."""

    base_seconds: float = _BASE_SECONDS
    #: Relative weight of each operation class.
    weights: Dict[str, float] = field(
        default_factory=lambda: {
            "add": 0.4,
            "negate": 0.25,
            "multiply": 3.0,
            "multiply_plain": 1.6,
            "relinearize": 0.0,  # keyswitch term dominates; see keyswitch_weight
            "rotate": 0.0,
            "mod_switch": 0.4,
            "rescale": 1.2,
            "encode": 1.0,
            "encrypt": 2.5,
            "decrypt": 1.0,
        }
    )
    #: Weight of the key-switching inner product, multiplied by L (quadratic in L overall).
    keyswitch_weight: float = 1.5

    def op_seconds(self, kind: str, poly_degree: int, remaining_levels: int) -> float:
        """Latency (seconds) of one primitive of class ``kind``.

        ``remaining_levels`` is the number of RNS components still present in
        the operand ciphertexts (the paper's ``r`` minus the consumed levels).
        """
        levels = max(int(remaining_levels), 1)
        n = max(int(poly_degree), 2)
        log_n = max(n.bit_length() - 1, 1)
        unit = self.base_seconds * n * levels
        weight = self.weights.get(kind, 1.0)
        cost = weight * unit * log_n / 14.0
        if kind in ("relinearize", "rotate"):
            cost += self.keyswitch_weight * unit * levels * log_n / 14.0
        return cost

    def term_kind(self, op: Op, cipher_operands: int) -> str:
        """Map an EVA opcode to a cost-model operation class."""
        if op is Op.MULTIPLY:
            return "multiply" if cipher_operands >= 2 else "multiply_plain"
        if op in (Op.ADD, Op.SUB):
            return "add"
        if op is Op.NEGATE or op is Op.COPY:
            return "negate"
        if op in (Op.ROTATE_LEFT, Op.ROTATE_RIGHT):
            return "rotate"
        if op is Op.RELINEARIZE:
            return "relinearize"
        if op is Op.RESCALE:
            return "rescale"
        if op is Op.MOD_SWITCH:
            return "mod_switch"
        return "add"


#: Shared default instance used by the scheduler and the benchmarks.
DEFAULT_COST_MODEL = CostModel()
