"""HISA backend over the real RNS-CKKS implementation (:mod:`repro.ckks`).

This backend is the drop-in replacement for SEAL in the paper's toolchain:
the executor drives it through the same interface as the mock simulator, but
every ciphertext here is a genuine RLWE ciphertext and every operation is the
real homomorphic primitive.

Because the pure-Python scheme caps coefficient-modulus primes at 30 bits,
programs targeting this backend must be compiled with
``CompilerOptions(max_rescale_bits=<= 28)`` (the paper's 60-bit configuration
is available on the mock backend).  The scale bookkeeping is exact: rescaling
divides the scale by the actual prime, so decoded results carry no systematic
scale drift.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..ckks import (
    Ciphertext,
    CkksContext,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
    Plaintext,
)
from ..core.analysis.parameters import EncryptionParameters
from ..errors import ParameterError
from .hisa import BackendContext, HomomorphicBackend, replicate_to_slots


class CkksBackendContext(BackendContext):
    """Execution context holding keys and evaluator for one compiled program."""

    def __init__(
        self,
        parameters: EncryptionParameters,
        seed: Optional[int] = None,
        enforce_security: bool = True,
    ) -> None:
        super().__init__(parameters)
        self.seed = seed
        self.enforce_security = enforce_security
        # Use a 30-bit special (key-switching) prime even when the data primes
        # are smaller: the key-switching noise is divided by the special prime,
        # so a large one keeps rotations and relinearizations accurate.  This
        # mirrors SEAL's practice of making the special prime the largest.
        coeff_bits = list(parameters.coeff_modulus_bits)
        coeff_bits[-1] = max(coeff_bits[-1], 30)
        self.context = CkksContext(
            parameters.poly_modulus_degree,
            coeff_bits,
            security_level=parameters.security_level,
            enforce_security=enforce_security,
        )
        self.keygen: Optional[KeyGenerator] = None
        self.encryptor: Optional[Encryptor] = None
        self.decryptor: Optional[Decryptor] = None
        self.evaluator: Optional[Evaluator] = None
        self.op_count = 0
        self.live_ciphertexts = 0
        self.peak_live_ciphertexts = 0

    # -- setup -----------------------------------------------------------------------
    def generate_keys(self) -> None:
        self.keygen = KeyGenerator(self.context, seed=self.seed)
        public_key = self.keygen.create_public_key()
        relin_key = self.keygen.create_relin_key()
        galois_keys = self.keygen.create_galois_keys(self.parameters.rotation_steps)
        self.encryptor = Encryptor(self.context, public_key, seed=self.seed)
        self.decryptor = Decryptor(self.context, self.keygen.secret_key)
        self.evaluator = Evaluator(self.context, relin_key, galois_keys)

    def _require_keys(self) -> None:
        if self.evaluator is None or self.encryptor is None:
            raise ParameterError("generate_keys() must be called before execution")

    def _track(self, cipher: Ciphertext) -> Ciphertext:
        self.op_count += 1
        self.live_ciphertexts += 1
        self.peak_live_ciphertexts = max(self.peak_live_ciphertexts, self.live_ciphertexts)
        return cipher

    # -- data movement -----------------------------------------------------------------
    def encode(self, values, scale_bits: float, level: int = 0) -> Plaintext:
        self._require_keys()
        data = replicate_to_slots(values, self.slot_count)
        return self.encryptor.encode(data, 2.0 ** float(scale_bits), level=level)

    def encode_at_scale(self, values, scale: float, level: int = 0) -> Plaintext:
        """Encode at an exact (non power-of-two) scale; used for scale matching."""
        self._require_keys()
        data = replicate_to_slots(values, self.slot_count)
        return self.encryptor.encode(data, float(scale), level=level)

    def encrypt(self, values, scale_bits: float, level: int = 0) -> Ciphertext:
        self._require_keys()
        data = replicate_to_slots(values, self.slot_count)
        return self._track(
            self.encryptor.encode_and_encrypt(data, 2.0 ** float(scale_bits), level=level)
        )

    def decrypt(self, handle: Ciphertext) -> np.ndarray:
        self._require_keys()
        return self.decryptor.decrypt(handle)

    # -- evaluation ----------------------------------------------------------------------
    def negate(self, a: Ciphertext) -> Ciphertext:
        return self._track(self.evaluator.negate(a))

    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        return self._track(self.evaluator.add(a, b))

    def add_plain(self, a: Ciphertext, b: Plaintext) -> Ciphertext:
        return self._track(self.evaluator.add_plain(a, b))

    def sub(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        return self._track(self.evaluator.sub(a, b))

    def sub_plain(self, a: Ciphertext, b: Plaintext, reverse: bool = False) -> Ciphertext:
        return self._track(self.evaluator.sub_plain(a, b, reverse=reverse))

    def multiply(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        return self._track(self.evaluator.multiply(a, b))

    def multiply_plain(self, a: Ciphertext, b: Plaintext) -> Ciphertext:
        return self._track(self.evaluator.multiply_plain(a, b))

    def rotate(self, a: Ciphertext, steps: int) -> Ciphertext:
        return self._track(self.evaluator.rotate(a, steps))

    def relinearize(self, a: Ciphertext) -> Ciphertext:
        return self._track(self.evaluator.relinearize(a))

    def rescale(self, a: Ciphertext, bits: float) -> Ciphertext:
        expected = self.context.prime_at_level(a.level)
        if abs(math.log2(expected) - float(bits)) > 1.0:
            raise ParameterError(
                f"rescale by 2^{bits:g} requested but the next prime has "
                f"{math.log2(expected):.2f} bits"
            )
        result = self.evaluator.rescale_to_next(a)
        # Follow the paper's executor (footnote 1): book-keep the scale as if
        # the division had been by the power of two.  The chosen primes are as
        # close as possible to 2^bits, so the induced relative error per
        # rescale is on the order of 2N / 2^bits.
        result.scale = a.scale / (2.0 ** float(bits))
        return self._track(result)

    def mod_switch(self, a: Ciphertext) -> Ciphertext:
        return self._track(self.evaluator.mod_switch_to_next(a))

    # -- introspection ------------------------------------------------------------------
    def scale_bits(self, handle: Ciphertext) -> float:
        return math.log2(handle.scale)

    def level(self, handle: Ciphertext) -> int:
        return handle.level

    def release(self, handle: Ciphertext) -> None:
        handle.polys = []
        self.live_ciphertexts = max(self.live_ciphertexts - 1, 0)


class CkksBackend(HomomorphicBackend):
    """Factory for :class:`CkksBackendContext` objects."""

    name = "ckks"

    def __init__(self, seed: Optional[int] = None, enforce_security: bool = True) -> None:
        self.seed = seed
        self.enforce_security = enforce_security

    def create_context(self, parameters: EncryptionParameters) -> CkksBackendContext:
        return CkksBackendContext(
            parameters, seed=self.seed, enforce_security=self.enforce_security
        )
