"""HISA backend over the real RNS-CKKS implementation (:mod:`repro.ckks`).

This backend is the drop-in replacement for SEAL in the paper's toolchain:
the executor drives it through the same interface as the mock simulator, but
every ciphertext here is a genuine RLWE ciphertext and every operation is the
real homomorphic primitive.

Because the pure-Python scheme caps coefficient-modulus primes at 30 bits,
programs targeting this backend must be compiled with
``CompilerOptions(max_rescale_bits=<= 28)`` (the paper's 60-bit configuration
is available on the mock backend).  The scale bookkeeping is exact: rescaling
divides the scale by the actual prime, so decoded results carry no systematic
scale drift.
"""

from __future__ import annotations

import math
import time
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..ckks import (
    Ciphertext,
    CkksContext,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
    Plaintext,
)
from ..ckks.keys import GaloisKeys, KeySwitchingKey, PublicKey, RelinearizationKey
from ..ckks.rns import RnsBasis, RnsPolynomial
from ..core.analysis.parameters import EncryptionParameters
from ..errors import ExecutionError, ParameterError, SerializationError
from .hisa import BackendContext, HomomorphicBackend, replicate_to_slots


def _poly_to_rows(poly: RnsPolynomial) -> Dict[str, Any]:
    """Pack an RNS polynomial's residue matrix (base64 int64, ~10x smaller
    than the per-residue integer lists the codec originally emitted)."""
    from ..core.serialization.packing import pack_residues

    return pack_residues(poly.residues)


def _poly_from_rows(basis: RnsBasis, rows: Any) -> RnsPolynomial:
    """Inverse of :func:`_poly_to_rows`; also accepts legacy row lists."""
    from ..core.serialization.packing import unpack_residues

    residues = unpack_residues(rows)
    if residues.ndim != 2 or residues.shape != (
        len(basis),
        basis.poly_modulus_degree,
    ):
        raise SerializationError(
            f"polynomial rows have shape {residues.shape}, basis expects "
            f"({len(basis)}, {basis.poly_modulus_degree})"
        )
    return RnsPolynomial(basis, residues)


def _keyswitch_to_dict(key: KeySwitchingKey) -> Dict[str, Any]:
    return {
        str(prime): [_poly_to_rows(b), _poly_to_rows(a)]
        for prime, (b, a) in key.pairs.items()
    }


def _keyswitch_from_dict(basis: RnsBasis, data: Dict[str, Any]) -> KeySwitchingKey:
    pairs: Dict[int, Tuple[RnsPolynomial, RnsPolynomial]] = {}
    for prime, (b_rows, a_rows) in data.items():
        pairs[int(prime)] = (
            _poly_from_rows(basis, b_rows),
            _poly_from_rows(basis, a_rows),
        )
    return KeySwitchingKey(pairs)


class CkksBackendContext(BackendContext):
    """Execution context holding keys and evaluator for one compiled program."""

    def __init__(
        self,
        parameters: EncryptionParameters,
        seed: Optional[int] = None,
        enforce_security: bool = True,
    ) -> None:
        super().__init__(parameters)
        self.seed = seed
        self.enforce_security = enforce_security
        # Use a 30-bit special (key-switching) prime even when the data primes
        # are smaller: the key-switching noise is divided by the special prime,
        # so a large one keeps rotations and relinearizations accurate.  This
        # mirrors SEAL's practice of making the special prime the largest.
        coeff_bits = list(parameters.coeff_modulus_bits)
        coeff_bits[-1] = max(coeff_bits[-1], 30)
        self.context = CkksContext(
            parameters.poly_modulus_degree,
            coeff_bits,
            security_level=parameters.security_level,
            enforce_security=enforce_security,
        )
        self.keygen: Optional[KeyGenerator] = None
        self.encryptor: Optional[Encryptor] = None
        self.decryptor: Optional[Decryptor] = None
        self.evaluator: Optional[Evaluator] = None
        self.op_count = 0
        self.live_ciphertexts = 0
        self.peak_live_ciphertexts = 0
        self.has_secret_key = False
        self.op_seconds: Dict[str, float] = {}
        self.op_counts: Dict[str, int] = {}

    # -- setup -----------------------------------------------------------------------
    def generate_keys(self) -> None:
        self.keygen = KeyGenerator(self.context, seed=self.seed)
        public_key = self.keygen.create_public_key()
        relin_key = self.keygen.create_relin_key()
        galois_keys = self.keygen.create_galois_keys(self.parameters.rotation_steps)
        self.encryptor = Encryptor(self.context, public_key, seed=self.seed)
        self.decryptor = Decryptor(self.context, self.keygen.secret_key)
        self.evaluator = Evaluator(self.context, relin_key, galois_keys)
        self.has_secret_key = True

    def _require_keys(self) -> None:
        if self.evaluator is None or self.encryptor is None:
            raise ParameterError("generate_keys() must be called before execution")

    # -- client/server split -----------------------------------------------------------
    def evaluation_context(self) -> "CkksBackendContext":
        """Derive a server-side context: public + evaluation keys, no secret key.

        The derived context shares this context's validated :class:`CkksContext`
        and its public, relinearization, and Galois keys; the key generator and
        decryptor are absent, so decryption is impossible by construction.
        """
        self._require_keys()
        derived = CkksBackendContext.__new__(CkksBackendContext)
        BackendContext.__init__(derived, self.parameters)
        derived.seed = self.seed
        derived.enforce_security = self.enforce_security
        derived.context = self.context
        derived.keygen = None
        derived.encryptor = Encryptor(
            self.context, self.encryptor.public_key, seed=self.seed
        )
        derived.decryptor = None
        derived.evaluator = Evaluator(
            self.context, self.evaluator.relin_key, self.evaluator.galois_keys
        )
        derived.op_count = 0
        derived.live_ciphertexts = 0
        derived.peak_live_ciphertexts = 0
        derived.has_secret_key = False
        derived.op_seconds = {}
        derived.op_counts = {}
        return derived

    def export_evaluation_keys(self) -> Dict[str, Any]:
        """Serialize public + evaluation keys (never the secret key)."""
        self._require_keys()
        public = self.encryptor.public_key
        blob: Dict[str, Any] = {
            "scheme": "ckks",
            "poly_modulus_degree": self.context.poly_modulus_degree,
            "public_key": [_poly_to_rows(public.b), _poly_to_rows(public.a)],
        }
        relin = self.evaluator.relin_key
        if relin is not None:
            blob["relin_key"] = _keyswitch_to_dict(relin.key)
        galois = self.evaluator.galois_keys
        if galois is not None:
            blob["galois_keys"] = {
                str(element): _keyswitch_to_dict(key)
                for element, key in galois.keys.items()
            }
        return blob

    def import_evaluation_keys(self, blob: Dict[str, Any]) -> None:
        """Install exported key material, making this an evaluation context."""
        if not isinstance(blob, dict) or blob.get("scheme") != "ckks":
            raise SerializationError("not a CKKS evaluation key blob")
        if int(blob.get("poly_modulus_degree", 0)) != self.context.poly_modulus_degree:
            raise SerializationError(
                "evaluation keys were generated for a different polynomial "
                "modulus degree"
            )
        try:
            data_basis = self.context.data_basis(0)
            key_basis = self.context.key_basis(0)
            b_rows, a_rows = blob["public_key"]
            public = PublicKey(
                b=_poly_from_rows(data_basis, b_rows),
                a=_poly_from_rows(data_basis, a_rows),
            )
            relin = None
            if "relin_key" in blob:
                relin = RelinearizationKey(
                    _keyswitch_from_dict(key_basis, blob["relin_key"])
                )
            galois = GaloisKeys()
            for element, key_data in blob.get("galois_keys", {}).items():
                galois.keys[int(element)] = _keyswitch_from_dict(key_basis, key_data)
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"malformed CKKS key blob: {exc}") from exc
        self.keygen = None
        self.decryptor = None
        self.encryptor = Encryptor(self.context, public, seed=self.seed)
        self.evaluator = Evaluator(self.context, relin, galois)
        self.has_secret_key = False

    def encode_cipher(self, handle: Ciphertext) -> Dict[str, Any]:
        if not handle.polys:
            raise SerializationError("cannot serialize a released ciphertext")
        return {
            "scheme": "ckks",
            "scale": float(handle.scale),
            "level": int(handle.level),
            "polys": [_poly_to_rows(poly) for poly in handle.polys],
        }

    def decode_cipher(self, data: Dict[str, Any]) -> Ciphertext:
        if not isinstance(data, dict) or data.get("scheme") != "ckks":
            raise SerializationError("not a CKKS ciphertext")
        try:
            level = int(data["level"])
            basis = self.context.data_basis(level)
            polys = [_poly_from_rows(basis, rows) for rows in data["polys"]]
            cipher = Ciphertext(polys=polys, scale=float(data["scale"]), level=level)
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"malformed CKKS ciphertext: {exc}") from exc
        if not polys:
            raise SerializationError("CKKS ciphertext carries no polynomials")
        self.live_ciphertexts += 1
        self.peak_live_ciphertexts = max(
            self.peak_live_ciphertexts, self.live_ciphertexts
        )
        return cipher

    def _track(self, cipher: Ciphertext) -> Ciphertext:
        self.op_count += 1
        self.live_ciphertexts += 1
        self.peak_live_ciphertexts = max(self.peak_live_ciphertexts, self.live_ciphertexts)
        return cipher

    def _record_op(self, op: str, started: float) -> None:
        elapsed = time.perf_counter() - started
        self.op_seconds[op] = self.op_seconds.get(op, 0.0) + elapsed
        self.op_counts[op] = self.op_counts.get(op, 0) + 1

    def drain_op_times(self) -> Dict[str, Tuple[int, float]]:
        """Return and reset accumulated ``{op: (count, seconds)}`` timings.

        The serving layer harvests this after each execution to feed the
        ``ckks.op.*`` telemetry series; draining keeps the accounting
        per-request instead of cumulative.
        """
        snapshot = {
            op: (self.op_counts.get(op, 0), seconds)
            for op, seconds in self.op_seconds.items()
        }
        self.op_seconds = {}
        self.op_counts = {}
        return snapshot

    # -- data movement -----------------------------------------------------------------
    def encode(self, values, scale_bits: float, level: int = 0) -> Plaintext:
        self._require_keys()
        started = time.perf_counter()
        data = replicate_to_slots(values, self.slot_count)
        result = self.encryptor.encode(data, 2.0 ** float(scale_bits), level=level)
        self._record_op("encode", started)
        return result

    def encode_at_scale(self, values, scale: float, level: int = 0) -> Plaintext:
        """Encode at an exact (non power-of-two) scale; used for scale matching."""
        self._require_keys()
        started = time.perf_counter()
        data = replicate_to_slots(values, self.slot_count)
        result = self.encryptor.encode(data, float(scale), level=level)
        self._record_op("encode", started)
        return result

    def encrypt(self, values, scale_bits: float, level: int = 0) -> Ciphertext:
        self._require_keys()
        started = time.perf_counter()
        data = replicate_to_slots(values, self.slot_count)
        result = self._track(
            self.encryptor.encode_and_encrypt(data, 2.0 ** float(scale_bits), level=level)
        )
        self._record_op("encrypt", started)
        return result

    def decrypt(self, handle: Ciphertext) -> np.ndarray:
        self._require_keys()
        if self.decryptor is None:
            raise ExecutionError(
                "this context holds no secret key: decryption is a client-side "
                "operation (use the ClientKit that generated the keys)"
            )
        started = time.perf_counter()
        result = self.decryptor.decrypt(handle)
        self._record_op("decrypt", started)
        return result

    # -- evaluation ----------------------------------------------------------------------
    def negate(self, a: Ciphertext) -> Ciphertext:
        started = time.perf_counter()
        result = self._track(self.evaluator.negate(a))
        self._record_op("negate", started)
        return result

    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        started = time.perf_counter()
        result = self._track(self.evaluator.add(a, b))
        self._record_op("add", started)
        return result

    def add_plain(self, a: Ciphertext, b: Plaintext) -> Ciphertext:
        started = time.perf_counter()
        result = self._track(self.evaluator.add_plain(a, b))
        self._record_op("add_plain", started)
        return result

    def sub(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        started = time.perf_counter()
        result = self._track(self.evaluator.sub(a, b))
        self._record_op("sub", started)
        return result

    def sub_plain(self, a: Ciphertext, b: Plaintext, reverse: bool = False) -> Ciphertext:
        started = time.perf_counter()
        result = self._track(self.evaluator.sub_plain(a, b, reverse=reverse))
        self._record_op("sub_plain", started)
        return result

    def multiply(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        started = time.perf_counter()
        result = self._track(self.evaluator.multiply(a, b))
        self._record_op("multiply", started)
        return result

    def multiply_plain(self, a: Ciphertext, b: Plaintext) -> Ciphertext:
        started = time.perf_counter()
        result = self._track(self.evaluator.multiply_plain(a, b))
        self._record_op("multiply_plain", started)
        return result

    def rotate(self, a: Ciphertext, steps: int) -> Ciphertext:
        started = time.perf_counter()
        result = self._track(self.evaluator.rotate(a, steps))
        self._record_op("rotate", started)
        return result

    def relinearize(self, a: Ciphertext) -> Ciphertext:
        started = time.perf_counter()
        result = self._track(self.evaluator.relinearize(a))
        self._record_op("relinearize", started)
        return result

    def rescale(self, a: Ciphertext, bits: float) -> Ciphertext:
        expected = self.context.prime_at_level(a.level)
        if abs(math.log2(expected) - float(bits)) > 1.0:
            raise ParameterError(
                f"rescale by 2^{bits:g} requested but the next prime has "
                f"{math.log2(expected):.2f} bits"
            )
        started = time.perf_counter()
        result = self.evaluator.rescale_to_next(a)
        # Follow the paper's executor (footnote 1): book-keep the scale as if
        # the division had been by the power of two.  The chosen primes are as
        # close as possible to 2^bits, so the induced relative error per
        # rescale is on the order of 2N / 2^bits.
        result.scale = a.scale / (2.0 ** float(bits))
        result = self._track(result)
        self._record_op("rescale", started)
        return result

    def mod_switch(self, a: Ciphertext) -> Ciphertext:
        started = time.perf_counter()
        result = self._track(self.evaluator.mod_switch_to_next(a))
        self._record_op("mod_switch", started)
        return result

    # -- introspection ------------------------------------------------------------------
    def scale_bits(self, handle: Ciphertext) -> float:
        return math.log2(handle.scale)

    def level(self, handle: Ciphertext) -> int:
        return handle.level

    def release(self, handle: Ciphertext) -> None:
        handle.polys = []
        self.live_ciphertexts = max(self.live_ciphertexts - 1, 0)


class CkksBackend(HomomorphicBackend):
    """Factory for :class:`CkksBackendContext` objects."""

    name = "ckks"

    def __init__(self, seed: Optional[int] = None, enforce_security: bool = True) -> None:
        self.seed = seed
        self.enforce_security = enforce_security

    def create_context(self, parameters: EncryptionParameters) -> CkksBackendContext:
        return CkksBackendContext(
            parameters, seed=self.seed, enforce_security=self.enforce_security
        )

    def create_evaluation_context(
        self, parameters: EncryptionParameters, evaluation_keys: Dict[str, Any]
    ) -> CkksBackendContext:
        context = self.create_context(parameters)
        context.import_evaluation_keys(evaluation_keys)
        return context
