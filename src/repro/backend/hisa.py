"""The Homomorphic Instruction Set Architecture (HISA) backend interface.

CHET introduced HISA as a common abstraction over FHE libraries; the EVA
executor drives backends exclusively through this interface, so swapping the
metadata simulator for the real RNS-CKKS implementation (or, in principle, a
binding to an external library) requires no executor changes.

A backend supplies a :class:`BackendContext` built from the encryption
parameters the compiler selected; the context performs key generation,
encoding/encryption, the homomorphic evaluation operations of Table 2, and
decryption.  Ciphertext and plaintext handles are backend-specific opaque
objects.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Sequence

import numpy as np

from ..core.analysis.parameters import EncryptionParameters

CipherHandle = Any
PlainHandle = Any


class BackendContext(abc.ABC):
    """Per-program execution context of a homomorphic backend."""

    #: Whether this context holds secret-key material (i.e. can decrypt).
    #: Evaluation-only contexts derived for a server set this to ``False``.
    has_secret_key: bool = True

    def __init__(self, parameters: EncryptionParameters) -> None:
        self.parameters = parameters

    def drain_op_times(self) -> dict:
        """Return and reset per-op ``{op: (count, seconds)}`` wall-time totals.

        Backends that measure real kernel time (the CKKS backend) override
        this; the default reports nothing, so the serving layer can harvest
        unconditionally.
        """
        return {}

    # -- setup -----------------------------------------------------------------
    @property
    def slot_count(self) -> int:
        """Number of plaintext slots available per ciphertext (``N / 2``)."""
        return self.parameters.slots

    @abc.abstractmethod
    def generate_keys(self) -> None:
        """Generate secret/public/relinearization/Galois keys."""

    # -- data movement ----------------------------------------------------------
    @abc.abstractmethod
    def encode(self, values: np.ndarray, scale_bits: float, level: int = 0) -> PlainHandle:
        """Encode a plaintext vector (or scalar) at the given scale and level."""

    @abc.abstractmethod
    def encrypt(self, values: np.ndarray, scale_bits: float, level: int = 0) -> CipherHandle:
        """Encode and encrypt a vector at the given scale and level."""

    @abc.abstractmethod
    def decrypt(self, handle: CipherHandle) -> np.ndarray:
        """Decrypt and decode a ciphertext back to a float vector."""

    # -- evaluation -------------------------------------------------------------
    @abc.abstractmethod
    def negate(self, a: CipherHandle) -> CipherHandle: ...

    @abc.abstractmethod
    def add(self, a: CipherHandle, b: CipherHandle) -> CipherHandle: ...

    @abc.abstractmethod
    def add_plain(self, a: CipherHandle, b: PlainHandle) -> CipherHandle: ...

    @abc.abstractmethod
    def sub(self, a: CipherHandle, b: CipherHandle) -> CipherHandle: ...

    @abc.abstractmethod
    def sub_plain(self, a: CipherHandle, b: PlainHandle, reverse: bool = False) -> CipherHandle: ...

    @abc.abstractmethod
    def multiply(self, a: CipherHandle, b: CipherHandle) -> CipherHandle: ...

    @abc.abstractmethod
    def multiply_plain(self, a: CipherHandle, b: PlainHandle) -> CipherHandle: ...

    @abc.abstractmethod
    def rotate(self, a: CipherHandle, steps: int) -> CipherHandle: ...

    @abc.abstractmethod
    def relinearize(self, a: CipherHandle) -> CipherHandle: ...

    @abc.abstractmethod
    def rescale(self, a: CipherHandle, bits: float) -> CipherHandle: ...

    @abc.abstractmethod
    def mod_switch(self, a: CipherHandle) -> CipherHandle: ...

    # -- introspection ----------------------------------------------------------
    @abc.abstractmethod
    def scale_bits(self, handle: CipherHandle) -> float:
        """Current scale (bits) of a ciphertext handle."""

    @abc.abstractmethod
    def level(self, handle: CipherHandle) -> int:
        """Number of coefficient-modulus primes consumed by the handle."""

    def release(self, handle: CipherHandle) -> None:
        """Hint that ``handle`` will no longer be used (memory reuse)."""

    # -- client/server split -----------------------------------------------------
    # These hooks realize the paper's asymmetric deployment model: the client
    # generates keys and derives an *evaluation context* — public and
    # evaluation (relinearization/Galois) key material only — which is what a
    # server needs to compute on ciphertexts it cannot read.  The cipher codec
    # turns backend-specific handles into JSON-compatible dictionaries so
    # encrypted inputs and outputs can cross a process or network boundary.

    def evaluation_context(self) -> "BackendContext":
        """Derive a context holding only public/evaluation key material.

        The derived context can encode plaintext operands and perform every
        homomorphic evaluation operation, but ``has_secret_key`` is ``False``
        and :meth:`decrypt` raises.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support evaluation-only contexts"
        )

    def export_evaluation_keys(self) -> Dict[str, Any]:
        """Serialize the public/evaluation key material to a JSON-able dict.

        The blob never contains the secret key; feed it to
        :meth:`HomomorphicBackend.create_evaluation_context` on the server
        side to rebuild an evaluation context for this client.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support key export"
        )

    def encode_cipher(self, handle: CipherHandle) -> Dict[str, Any]:
        """Serialize one ciphertext handle to a JSON-able dict."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support ciphertext serialization"
        )

    def decode_cipher(self, data: Dict[str, Any]) -> CipherHandle:
        """Inverse of :meth:`encode_cipher`."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support ciphertext serialization"
        )


class HomomorphicBackend(abc.ABC):
    """Factory for :class:`BackendContext` objects."""

    name: str = "abstract"

    @abc.abstractmethod
    def create_context(self, parameters: EncryptionParameters) -> BackendContext:
        """Build an execution context for the given encryption parameters."""

    def create_evaluation_context(
        self, parameters: EncryptionParameters, evaluation_keys: Dict[str, Any]
    ) -> BackendContext:
        """Rebuild an evaluation-only context from exported key material.

        ``evaluation_keys`` is the dict produced by
        :meth:`BackendContext.export_evaluation_keys` on the client side.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support imported evaluation contexts"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


def replicate_to_slots(values: Sequence[float], slot_count: int) -> np.ndarray:
    """Replicate a vector to fill all slots (Section 3's input replication).

    The input length must be a power of two dividing ``slot_count``; scalars
    are broadcast to every slot.
    """
    array = np.atleast_1d(np.asarray(values, dtype=np.float64)).ravel()
    if array.size == slot_count:
        return array.copy()
    if array.size == 1:
        return np.full(slot_count, float(array[0]))
    if slot_count % array.size != 0:
        raise ValueError(
            f"input of size {array.size} does not divide the slot count {slot_count}"
        )
    return np.tile(array, slot_count // array.size)
