"""Metadata-exact CKKS simulator backend.

The mock backend stores the logical (unencrypted) slot values of every
ciphertext, but otherwise behaves like an RNS-CKKS library: every handle
carries its scale, its position in the coefficient-modulus chain, and its
polynomial count, and every operation enforces the same preconditions SEAL
enforces, raising typed errors (:class:`~repro.errors.ScaleMismatchError`,
:class:`~repro.errors.LevelMismatchError`, ...) when they are violated.

Because the EVA compiler's guarantees are exactly about these preconditions,
the mock backend is a faithful oracle for the compiler while being fast enough
to run the DNN benchmarks of Section 8.  An optional Gaussian error model
injects encryption/key-switching noise of realistic magnitude so that
encrypted-vs-unencrypted accuracy comparisons (Table 4) are meaningful.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from ..core.analysis.parameters import EncryptionParameters
from ..errors import (
    ExecutionError,
    LevelMismatchError,
    ModulusExhaustedError,
    PolynomialCountError,
    ScaleMismatchError,
    SerializationError,
)
from .hisa import BackendContext, HomomorphicBackend, replicate_to_slots

#: Tolerance (bits) when comparing scales or rescale divisors.
_SCALE_TOLERANCE = 1.0
#: Standard deviation of the RLWE error distribution (SEAL's default).
_ERROR_STDDEV = 3.2


@dataclass
class MockPlaintext:
    """An encoded (but unencrypted) vector with its scale and level."""

    values: np.ndarray
    scale_bits: float
    level: int


@dataclass
class MockCiphertext:
    """A simulated ciphertext: logical values plus RNS-CKKS metadata."""

    values: np.ndarray
    scale_bits: float
    level: int
    num_polys: int = 2
    released: bool = False


class MockContext(BackendContext):
    """Execution context of the mock backend."""

    def __init__(
        self,
        parameters: EncryptionParameters,
        error_model: str = "gaussian",
        seed: Optional[int] = None,
        op_latency: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if error_model not in ("none", "gaussian"):
            raise ValueError(f"unknown error model {error_model!r}")
        if op_latency < 0:
            raise ValueError("op_latency must be non-negative")
        self.error_model = error_model
        #: Simulated per-operation hardware latency (seconds, slept).  Real
        #: CKKS primitives cost milliseconds each; the default mock executes
        #: in microseconds, so multi-process scaling experiments on it would
        #: measure the host's core count, not the serving stack.  A non-zero
        #: latency restores the real ratio of compute to coordination.
        self.op_latency = float(op_latency)
        self._rng = np.random.default_rng(seed)
        #: Consumable coefficient-modulus chain (the special prime is excluded:
        #: it is reserved for key switching, as in SEAL).
        self.chain_bits: List[int] = list(parameters.coeff_modulus_bits[:-1])
        self.keys_generated = False
        self.live_ciphertexts = 0
        self.peak_live_ciphertexts = 0
        self.op_count = 0

    # -- helpers ----------------------------------------------------------------
    def _remaining(self, level: int) -> int:
        return len(self.chain_bits) - level

    def _noise(self, scale_bits: float, magnitude: float = 1.0) -> np.ndarray:
        if self.error_model == "none":
            return np.zeros(self.slot_count)
        sigma = (
            magnitude
            * _ERROR_STDDEV
            * np.sqrt(self.parameters.poly_modulus_degree)
            / (2.0 ** min(scale_bits, 300.0))
        )
        return self._rng.normal(0.0, sigma, self.slot_count)

    def _track_new(self, cipher: MockCiphertext) -> MockCiphertext:
        self.live_ciphertexts += 1
        self.peak_live_ciphertexts = max(self.peak_live_ciphertexts, self.live_ciphertexts)
        self.op_count += 1
        if self.op_latency > 0:
            time.sleep(self.op_latency)
        return cipher

    @staticmethod
    def _check_binary(a: MockCiphertext, b: MockCiphertext, additive: bool) -> None:
        if a.level != b.level:
            raise LevelMismatchError(
                f"operands are at different levels ({a.level} vs {b.level}); "
                "encrypted parameters mismatch"
            )
        if additive and abs(a.scale_bits - b.scale_bits) > _SCALE_TOLERANCE:
            raise ScaleMismatchError(
                f"operand scales differ (2^{a.scale_bits:g} vs 2^{b.scale_bits:g})"
            )

    # -- BackendContext API ------------------------------------------------------
    def generate_keys(self) -> None:
        self.keys_generated = True

    # -- client/server split -----------------------------------------------------
    def evaluation_context(self) -> "MockContext":
        """A context with the (notional) secret key stripped.

        The simulator has no real key material, but the derived context
        faithfully models the trust boundary: ``has_secret_key`` is ``False``
        and :meth:`decrypt` refuses to run, so executing through it proves a
        code path never needed the secret key.
        """
        derived = MockContext(
            self.parameters,
            error_model=self.error_model,
            seed=int(self._rng.integers(0, 2**31)),
        )
        derived.keys_generated = self.keys_generated
        derived.has_secret_key = False
        return derived

    def export_evaluation_keys(self) -> Dict[str, Any]:
        return {"scheme": "mock", "error_model": self.error_model}

    def encode_cipher(self, handle: MockCiphertext) -> Dict[str, Any]:
        if handle.released:
            raise SerializationError("cannot serialize a released ciphertext")
        from ..core.serialization.packing import pack_values

        return {
            "scheme": "mock",
            "values": pack_values(handle.values),
            "scale_bits": float(handle.scale_bits),
            "level": int(handle.level),
            "num_polys": int(handle.num_polys),
        }

    def decode_cipher(self, data: Dict[str, Any]) -> MockCiphertext:
        if not isinstance(data, dict) or data.get("scheme") != "mock":
            raise SerializationError("not a mock-backend ciphertext")
        from ..core.serialization.packing import unpack_values

        try:
            # unpack_values accepts both the base64-packed form and the
            # legacy plain float list.
            values = unpack_values(data["values"])
            cipher = MockCiphertext(
                values=values,
                scale_bits=float(data["scale_bits"]),
                level=int(data["level"]),
                num_polys=int(data.get("num_polys", 2)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"malformed mock ciphertext: {exc}") from exc
        if values.size != self.slot_count:
            raise SerializationError(
                f"ciphertext carries {values.size} slots, context expects "
                f"{self.slot_count}"
            )
        self.live_ciphertexts += 1
        self.peak_live_ciphertexts = max(
            self.peak_live_ciphertexts, self.live_ciphertexts
        )
        return cipher

    def encode(self, values, scale_bits: float, level: int = 0) -> MockPlaintext:
        return MockPlaintext(
            values=replicate_to_slots(values, self.slot_count),
            scale_bits=float(scale_bits),
            level=int(level),
        )

    def encrypt(self, values, scale_bits: float, level: int = 0) -> MockCiphertext:
        data = replicate_to_slots(values, self.slot_count)
        data = data + self._noise(scale_bits)
        return self._track_new(
            MockCiphertext(values=data, scale_bits=float(scale_bits), level=int(level))
        )

    def decrypt(self, handle: MockCiphertext) -> np.ndarray:
        if not self.has_secret_key:
            raise ExecutionError(
                "this context holds no secret key: decryption is a client-side "
                "operation (use the ClientKit that generated the keys)"
            )
        return handle.values.copy()

    def negate(self, a: MockCiphertext) -> MockCiphertext:
        return self._track_new(
            MockCiphertext(-a.values, a.scale_bits, a.level, a.num_polys)
        )

    def add(self, a: MockCiphertext, b: MockCiphertext) -> MockCiphertext:
        self._check_binary(a, b, additive=True)
        return self._track_new(
            MockCiphertext(
                a.values + b.values,
                max(a.scale_bits, b.scale_bits),
                a.level,
                max(a.num_polys, b.num_polys),
            )
        )

    def add_plain(self, a: MockCiphertext, b: MockPlaintext) -> MockCiphertext:
        if abs(a.scale_bits - b.scale_bits) > _SCALE_TOLERANCE:
            raise ScaleMismatchError(
                f"plaintext scale 2^{b.scale_bits:g} does not match "
                f"ciphertext scale 2^{a.scale_bits:g}"
            )
        return self._track_new(
            MockCiphertext(a.values + b.values, a.scale_bits, a.level, a.num_polys)
        )

    def sub(self, a: MockCiphertext, b: MockCiphertext) -> MockCiphertext:
        self._check_binary(a, b, additive=True)
        return self._track_new(
            MockCiphertext(
                a.values - b.values,
                max(a.scale_bits, b.scale_bits),
                a.level,
                max(a.num_polys, b.num_polys),
            )
        )

    def sub_plain(self, a: MockCiphertext, b: MockPlaintext, reverse: bool = False) -> MockCiphertext:
        if abs(a.scale_bits - b.scale_bits) > _SCALE_TOLERANCE:
            raise ScaleMismatchError(
                f"plaintext scale 2^{b.scale_bits:g} does not match "
                f"ciphertext scale 2^{a.scale_bits:g}"
            )
        values = (b.values - a.values) if reverse else (a.values - b.values)
        return self._track_new(MockCiphertext(values, a.scale_bits, a.level, a.num_polys))

    def multiply(self, a: MockCiphertext, b: MockCiphertext) -> MockCiphertext:
        self._check_binary(a, b, additive=False)
        for operand in (a, b):
            if operand.num_polys != 2:
                raise PolynomialCountError(
                    f"multiplication operand has {operand.num_polys} polynomials; "
                    "relinearize first"
                )
        result_scale = a.scale_bits + b.scale_bits
        remaining_bits = sum(self.chain_bits[a.level:])
        if result_scale > remaining_bits + _SCALE_TOLERANCE:
            raise ModulusExhaustedError(
                f"scale 2^{result_scale:g} is out of bounds for the remaining "
                f"coefficient modulus (2^{remaining_bits} bits)"
            )
        return self._track_new(
            MockCiphertext(
                a.values * b.values,
                result_scale,
                a.level,
                a.num_polys + b.num_polys - 1,
            )
        )

    def multiply_plain(self, a: MockCiphertext, b: MockPlaintext) -> MockCiphertext:
        result_scale = a.scale_bits + b.scale_bits
        remaining_bits = sum(self.chain_bits[a.level:])
        if result_scale > remaining_bits + _SCALE_TOLERANCE:
            raise ModulusExhaustedError(
                f"scale 2^{result_scale:g} is out of bounds for the remaining "
                f"coefficient modulus (2^{remaining_bits} bits)"
            )
        return self._track_new(
            MockCiphertext(a.values * b.values, result_scale, a.level, a.num_polys)
        )

    def rotate(self, a: MockCiphertext, steps: int) -> MockCiphertext:
        values = np.roll(a.values, -int(steps))
        values = values + self._noise(a.scale_bits, magnitude=2.0)
        return self._track_new(MockCiphertext(values, a.scale_bits, a.level, a.num_polys))

    def relinearize(self, a: MockCiphertext) -> MockCiphertext:
        values = a.values + self._noise(a.scale_bits, magnitude=2.0)
        return self._track_new(MockCiphertext(values, a.scale_bits, a.level, 2))

    def rescale(self, a: MockCiphertext, bits: float) -> MockCiphertext:
        if self._remaining(a.level) < 2:
            raise ModulusExhaustedError(
                "cannot rescale: only one prime left in the coefficient modulus"
            )
        prime_bits = self.chain_bits[a.level]
        if abs(prime_bits - bits) > _SCALE_TOLERANCE:
            raise ModulusExhaustedError(
                f"rescale by 2^{bits:g} requested but the next prime has "
                f"{prime_bits} bits"
            )
        return self._track_new(
            MockCiphertext(
                a.values.copy(), a.scale_bits - float(bits), a.level + 1, a.num_polys
            )
        )

    def mod_switch(self, a: MockCiphertext) -> MockCiphertext:
        if self._remaining(a.level) < 2:
            raise ModulusExhaustedError(
                "cannot switch modulus: only one prime left in the coefficient modulus"
            )
        return self._track_new(
            MockCiphertext(a.values.copy(), a.scale_bits, a.level + 1, a.num_polys)
        )

    def scale_bits(self, handle: MockCiphertext) -> float:
        return handle.scale_bits

    def level(self, handle: MockCiphertext) -> int:
        return handle.level

    def release(self, handle: MockCiphertext) -> None:
        if isinstance(handle, MockCiphertext) and not handle.released:
            handle.released = True
            handle.values = np.empty(0)
            self.live_ciphertexts = max(self.live_ciphertexts - 1, 0)


class MockBackend(HomomorphicBackend):
    """Factory for :class:`MockContext` objects."""

    name = "mock"

    def __init__(
        self,
        error_model: str = "gaussian",
        seed: Optional[int] = None,
        op_latency: float = 0.0,
    ) -> None:
        self.error_model = error_model
        self.seed = seed
        self.op_latency = float(op_latency)

    def create_context(self, parameters: EncryptionParameters) -> MockContext:
        return MockContext(
            parameters,
            error_model=self.error_model,
            seed=self.seed,
            op_latency=self.op_latency,
        )

    def create_evaluation_context(
        self, parameters: EncryptionParameters, evaluation_keys: Dict[str, Any]
    ) -> MockContext:
        if not isinstance(evaluation_keys, dict) or evaluation_keys.get("scheme") != "mock":
            raise SerializationError("not a mock-backend evaluation key blob")
        context = MockContext(
            parameters,
            error_model=str(evaluation_keys.get("error_model", self.error_model)),
            seed=self.seed,
            op_latency=self.op_latency,
        )
        context.keys_generated = True
        context.has_secret_key = False
        return context
