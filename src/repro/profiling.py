"""Measured profiling of the real CKKS backend.

This module is the measurement side of the "profile, then optimize" loop:
it runs representative compiled programs (Sobel/Harris with lane batching, a
rotation-tree SUM, a relinearization-heavy polynomial) end to end on the real
RNS-CKKS backend under :mod:`cProfile` and :mod:`tracemalloc`, and buckets
the measured time into the cost centers the ROADMAP names — key-switch
decomposition, NTT butterflies, RNS base conversion, encode/decode, and
Python dispatch — so kernel work targets what is actually hot instead of
what looks hot.  ``tools/profile_ckks.py`` and ``repro.cli profile`` are thin
wrappers around :func:`run_profile`; the output is machine-readable JSON and
is uploaded as a CI artifact by the weekly full-bench run.
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
import sys
import time
import tracemalloc
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Cost-center buckets, matched in order against (filename, function) pairs.
#: The first rule whose path fragment (and, when given, function set) matches
#: claims the sample; later rules see only what is left.
CATEGORY_RULES: List[Tuple[str, str, Optional[frozenset]]] = [
    ("ntt_butterflies", "ckks/ntt.py", None),
    (
        "key_switch",
        "ckks/evaluator.py",
        frozenset(
            {
                "_key_switch",
                "_key_switch_reference",
                "_key_switch_decomposed",
                "_digit_ntts",
                "_key_evaluation_form",
                "relinearize",
                "rotate",
                "_rotate_reference",
            }
        ),
    ),
    ("base_conversion", "ckks/rns.py", None),
    ("encode_decode", "ckks/encoder.py", None),
    ("encode_decode", "ckks/encryptor.py", None),
    ("encode_decode", "ckks/decryptor.py", None),
    ("encode_decode", "ckks/sampling.py", None),
    ("scheme_other", "repro/ckks/", None),
    ("dispatch", "repro/", None),
]

#: Everything that is not repro code (numpy internals, stdlib) lands here.
FALLBACK_CATEGORY = "runtime_other"


def classify_function(filename: str, function: str) -> str:
    """Bucket one profiled function into a cost center."""
    normalized = filename.replace("\\", "/")
    for category, fragment, names in CATEGORY_RULES:
        if fragment in normalized and (names is None or function in names):
            return category
    return FALLBACK_CATEGORY


# -- representative programs -----------------------------------------------------------


def _build_sum_program(vec_size: int, scale: float):
    from .frontend.pyeva import EvaProgram, input_encrypted, output

    program = EvaProgram("profile-sum", vec_size=vec_size, default_scale=scale)
    with program:
        x = input_encrypted("x", scale)
        acc = x
        shift = 1
        while shift < vec_size:
            acc = acc + (acc << shift)
            shift *= 2
        output("total", acc, scale)
    return program


def _build_poly_relin_program(vec_size: int, scale: float):
    from .frontend.pyeva import EvaProgram, input_encrypted, output

    program = EvaProgram("profile-poly", vec_size=vec_size, default_scale=scale)
    with program:
        x = input_encrypted("x", scale)
        y = x * x
        y = y * x
        z = y * y
        output("value", z + x, scale)
    return program


def _profile_spec(name: str):
    """(program builder, compile options, input maker) for one profile target."""
    from .core.compiler import CompilerOptions

    scale = 25.0
    if name == "sobel_lanes":
        from .apps.sobel import build_sobel_program

        # Scale 20 keeps the deep Sobel chain inside the dense encoder's
        # N <= 8192 envelope while still exercising lane batching.
        image_size = 16
        vec_size = 1024
        program = build_sobel_program(image_size=image_size, scale=20.0, vec_size=vec_size)
        options = CompilerOptions(max_rescale_bits=20, lane_width=image_size * image_size)
        rng = np.random.default_rng(11)
        inputs = {"image": rng.uniform(0.0, 1.0, vec_size)}
    elif name == "harris_lanes":
        from .apps.harris import build_harris_program

        image_size = 8
        vec_size = 256
        program = build_harris_program(image_size=image_size, scale=20.0, vec_size=vec_size)
        options = CompilerOptions(max_rescale_bits=20, lane_width=image_size * image_size)
        rng = np.random.default_rng(13)
        inputs = {"image": rng.uniform(0.0, 1.0, vec_size)}
    elif name == "sum":
        vec_size = 1024
        program = _build_sum_program(vec_size, scale)
        options = CompilerOptions(max_rescale_bits=25)
        inputs = {"x": np.linspace(-1.0, 1.0, vec_size)}
    elif name == "poly_relin":
        vec_size = 1024
        program = _build_poly_relin_program(vec_size, scale)
        options = CompilerOptions(max_rescale_bits=25)
        inputs = {"x": np.linspace(-0.9, 0.9, vec_size)}
    else:
        raise ValueError(f"unknown profile program {name!r}")
    return program, options, inputs


#: Default profile targets, in the order they are reported.
PROFILE_PROGRAMS: Tuple[str, ...] = ("sobel_lanes", "harris_lanes", "sum", "poly_relin")


# -- profiling ------------------------------------------------------------------------


def _collect_stats(profiler: cProfile.Profile, top: int) -> Tuple[Dict[str, float], List[dict]]:
    stats = pstats.Stats(profiler, stream=io.StringIO())
    categories: Dict[str, float] = {}
    rows: List[dict] = []
    for (filename, lineno, function), (
        _cc,
        ncalls,
        tottime,
        _cumtime,
        _callers,
    ) in stats.stats.items():  # type: ignore[attr-defined]
        category = classify_function(filename, function)
        categories[category] = categories.get(category, 0.0) + tottime
        rows.append(
            {
                "function": f"{filename.rsplit('/', 1)[-1]}:{lineno}:{function}",
                "category": category,
                "tottime_seconds": round(tottime, 6),
                "calls": int(ncalls),
            }
        )
    rows.sort(key=lambda row: row["tottime_seconds"], reverse=True)
    return categories, rows[:top]


def profile_program(name: str, repeats: int = 3, top: int = 15) -> dict:
    """Profile one representative program on the real backend.

    The profiled section covers the server-side blind evaluation (the hot
    path this repo serves at scale) plus one client-side decrypt, so the
    encode/decode bucket is measured rather than estimated.
    """
    from .api import ClientKit, CompiledProgram, ServerRuntime
    from .backend import CkksBackend

    program, options, inputs = _profile_spec(name)
    compiled = CompiledProgram.compile(program, options=options)
    backend = CkksBackend(seed=21)
    client = ClientKit(compiled, backend=backend, client_id="profiler")
    server = ServerRuntime(compiled, backend=backend)
    server.attach_client("profiler", client.evaluation_context())
    bundle = client.encrypt_inputs(inputs)

    # Warm every cache the serving path would have warm (twiddles, key NTT
    # forms, encoder tables) so the profile reflects steady state.
    warm = server.evaluate(bundle)
    client.decrypt_outputs(warm)

    tracemalloc.start()
    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    encrypted = None
    for _ in range(repeats):
        encrypted = server.evaluate(bundle)
    client.decrypt_outputs(encrypted)
    profiler.disable()
    wall = time.perf_counter() - started
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    categories, top_rows = _collect_stats(profiler, top)
    profiled_total = sum(categories.values()) or 1.0
    return {
        "wall_seconds": round(wall, 6),
        "evaluations": repeats,
        "poly_modulus_degree": compiled.parameters.poly_modulus_degree,
        "categories": {
            category: {
                "seconds": round(seconds, 6),
                "fraction": round(seconds / profiled_total, 4),
            }
            for category, seconds in sorted(
                categories.items(), key=lambda item: item[1], reverse=True
            )
        },
        "top_functions": top_rows,
        "tracemalloc_peak_kb": round(peak / 1024.0, 1),
    }


def run_profile(
    programs: Optional[Sequence[str]] = None,
    repeats: int = 3,
    top: int = 15,
    log: Callable[[str], None] = lambda line: None,
) -> dict:
    """Profile every requested program and return the combined report."""
    names = list(programs) if programs else list(PROFILE_PROGRAMS)
    report = {
        "benchmark": "ckks_profile",
        "backend": "ckks",
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "repeats": repeats,
        "programs": {},
    }
    for name in names:
        log(f"profiling {name} ...")
        result = profile_program(name, repeats=repeats, top=top)
        report["programs"][name] = result
        hottest = next(iter(result["categories"]), "n/a")
        log(
            f"  {name}: {result['wall_seconds']:.2f}s wall, hottest bucket {hottest}, "
            f"peak {result['tracemalloc_peak_kb']:.0f} KiB"
        )
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point shared by ``tools/profile_ckks.py`` and ``repro.cli profile``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="profile_ckks", description="Profile the real CKKS backend hot paths."
    )
    parser.add_argument(
        "--programs",
        nargs="+",
        choices=list(PROFILE_PROGRAMS),
        help="subset of profile programs (default: all)",
    )
    parser.add_argument("--repeats", type=int, default=3, help="evaluations per program")
    parser.add_argument("--top", type=int, default=15, help="top functions to report")
    parser.add_argument("--out", help="write the JSON report to this path (default: stdout)")
    args = parser.parse_args(argv)

    report = run_profile(
        programs=args.programs,
        repeats=args.repeats,
        top=args.top,
        log=lambda line: print(line, file=sys.stderr),
    )
    payload = json.dumps(report, indent=2, sort_keys=False)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(payload)
    return 0


if __name__ == "__main__":  # pragma: no cover - module CLI
    raise SystemExit(main())
