"""The EVA serving front door: registered programs, cached sessions, batching.

:class:`EvaServer` is the in-process serving subsystem.  Programs are
registered once under a name; clients then submit named requests and receive
futures.  Per request the server

1. resolves the program's cached compilation (:class:`ProgramRegistry` — the
   signature is precomputed at registration, so the warm path never hashes),
2. resolves the client's cached backend context and keys
   (:class:`SessionManager`),
3. packs concurrently queued requests of the same (program, client) group
   into the unused CKKS slots (:class:`SlotBatcher`) when the program is
   slotwise, and
4. executes once per batch through the ordinary :class:`~repro.core.Executor`
   with the injected context.

The result is the amortized serving path the paper's deployment story
implies: compile once, keygen once per client, and pay one homomorphic
evaluation for up to ``vec_size / lane`` requests.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..backend.hisa import HomomorphicBackend
from ..core.compiler import CompilationResult, CompilerOptions, program_signature
from ..core.executor import Executor
from ..core.ir import Program
from ..errors import ServingError, UnknownProgramError
from .batching import BatchInfo, SlotBatcher, request_width
from .jobs import Job, JobEngine
from .registry import ProgramRegistry
from .sessions import SessionManager


@dataclass
class ProgramSpec:
    """A named program as registered with the server."""

    name: str
    program: Program
    options: Optional[CompilerOptions]
    input_scales: Optional[Dict[str, float]]
    output_scales: Optional[Dict[str, float]]
    signature: str


@dataclass
class ServeRequest:
    """Payload of one queued job."""

    inputs: Dict[str, Any]
    output_size: Optional[int] = None


@dataclass
class ServeResponse:
    """Decrypted outputs plus the serving metadata of one request."""

    outputs: Dict[str, np.ndarray]
    program: str
    client_id: str
    batch_size: int = 1
    cached_program: bool = False
    cached_session: bool = False
    queue_seconds: float = 0.0
    execute_seconds: float = 0.0

    def __getitem__(self, name: str) -> np.ndarray:
        return self.outputs[name]

    def stats_dict(self) -> Dict[str, object]:
        return {
            "program": self.program,
            "client_id": self.client_id,
            "batch_size": self.batch_size,
            "cached_program": self.cached_program,
            "cached_session": self.cached_session,
            "queue_seconds": round(self.queue_seconds, 6),
            "execute_seconds": round(self.execute_seconds, 6),
        }


class EvaServer:
    """In-process encrypted-computation server over a homomorphic backend."""

    def __init__(
        self,
        backend: Optional[HomomorphicBackend] = None,
        registry_capacity: int = 64,
        session_capacity: int = 32,
        workers: int = 2,
        queue_size: int = 256,
        max_batch: int = 8,
        batch_window: float = 0.0,
        executor_threads: int = 1,
    ) -> None:
        if backend is None:
            from ..backend.mock_backend import MockBackend

            backend = MockBackend()
        self.backend = backend
        self.registry = ProgramRegistry(capacity=registry_capacity)
        self.sessions = SessionManager(backend, capacity=session_capacity)
        self.batcher = SlotBatcher()
        self.executor_threads = max(int(executor_threads), 1)
        self._programs: Dict[str, ProgramSpec] = {}
        self._executors: Dict[str, Executor] = {}
        self._batch_infos: Dict[str, BatchInfo] = {}
        self._lock = threading.Lock()
        self.engine = JobEngine(
            self._handle_batch,
            workers=workers,
            queue_size=queue_size,
            max_batch=max_batch,
            batch_window=batch_window,
        )

    # -- registration ------------------------------------------------------------
    def register(
        self,
        name: str,
        program: Any,
        options: Optional[CompilerOptions] = None,
        input_scales: Optional[Dict[str, float]] = None,
        output_scales: Optional[Dict[str, float]] = None,
    ) -> ProgramSpec:
        """Register a frontend program (or its graph) under ``name``.

        Accepts either a :class:`~repro.core.ir.Program` or a PyEVA
        :class:`~repro.frontend.EvaProgram` (its ``graph`` is used).
        Registration is cheap — compilation happens lazily on first request
        and is shared through the registry afterwards.
        """
        graph = getattr(program, "graph", program)
        if not isinstance(graph, Program):
            raise ServingError(f"cannot register {type(program).__name__} as a program")
        spec = ProgramSpec(
            name=name,
            program=graph,
            options=options,
            input_scales=input_scales,
            output_scales=output_scales,
            signature=program_signature(graph, options, input_scales, output_scales),
        )
        with self._lock:
            self._programs[name] = spec
        return spec

    def programs(self) -> List[str]:
        with self._lock:
            return sorted(self._programs)

    # -- request path ------------------------------------------------------------
    def submit(
        self,
        name: str,
        inputs: Dict[str, Any],
        client_id: str = "default",
        output_size: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> "Future[ServeResponse]":
        """Queue one request; the future resolves to a :class:`ServeResponse`."""
        with self._lock:
            if name not in self._programs:
                raise UnknownProgramError(
                    f"no program registered under {name!r}; "
                    f"known programs: {sorted(self._programs)}"
                )
        if output_size is not None:
            # Reject here, at admission: a bad value surfacing inside the
            # worker would fail co-batched requests along with this one.
            try:
                output_size = int(output_size)
            except (TypeError, ValueError):
                raise ServingError(
                    f"output_size must be a positive integer, got {output_size!r}"
                ) from None
            if output_size < 1:
                raise ServingError(f"output_size must be positive, got {output_size}")
        payload = ServeRequest(inputs=dict(inputs), output_size=output_size)
        return self.engine.submit((name, str(client_id)), payload, timeout=timeout)

    def request(
        self,
        name: str,
        inputs: Dict[str, Any],
        client_id: str = "default",
        output_size: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> ServeResponse:
        """Synchronous convenience wrapper around :meth:`submit`."""
        return self.submit(
            name, inputs, client_id=client_id, output_size=output_size
        ).result(timeout)

    # -- execution (worker side) -------------------------------------------------
    def _resolve(self, name: str) -> Tuple[ProgramSpec, CompilationResult, bool]:
        with self._lock:
            spec = self._programs.get(name)
        if spec is None:
            raise UnknownProgramError(f"program {name!r} was unregistered mid-flight")
        cached = spec.signature in self.registry
        compilation = self.registry.get_or_compile(
            spec.program,
            spec.options,
            spec.input_scales,
            spec.output_scales,
            signature=spec.signature,
        )
        return spec, compilation, cached

    def _executor_for(
        self, signature: str, compilation: CompilationResult
    ) -> Tuple[Executor, BatchInfo]:
        with self._lock:
            executor = self._executors.get(signature)
            info = self._batch_infos.get(signature)
            if executor is None:
                executor = Executor(
                    compilation, self.backend, threads=self.executor_threads
                )
                self._executors[signature] = executor
                # Keep the side caches bounded alongside the registry.
                while len(self._executors) > 2 * self.registry.capacity:
                    self._executors.pop(next(iter(self._executors)))
            if info is None:
                info = self.batcher.inspect(compilation)
                self._batch_infos[signature] = info
                while len(self._batch_infos) > 2 * self.registry.capacity:
                    self._batch_infos.pop(next(iter(self._batch_infos)))
            return executor, info

    def _handle_batch(self, jobs: List[Job]) -> List[Any]:
        name, client_id = jobs[0].group
        spec, compilation, cached_program = self._resolve(name)
        session = self.sessions.get_session(compilation, client_id)
        cached_session = session.hits > 0
        executor, batch_info = self._executor_for(spec.signature, compilation)
        requests = [job.payload for job in jobs]

        plan = self.batcher.plan(
            compilation,
            [request.inputs for request in requests],
            [request.output_size for request in requests],
            info=batch_info,
        )
        responses: List[Any] = []
        with session.lock:
            if plan is not None:
                packed = self.batcher.pack(plan, [r.inputs for r in requests])
                result = executor.execute(packed, context=session.context)
                per_request = self.batcher.unpack(plan, result.outputs)
                for outputs in per_request:
                    responses.append(
                        ServeResponse(
                            outputs=outputs,
                            program=name,
                            client_id=client_id,
                            batch_size=len(jobs),
                            cached_program=cached_program,
                            cached_session=cached_session,
                            execute_seconds=result.stats.evaluate_seconds,
                        )
                    )
            else:
                # Slotwise programs answer with the request's own width (the
                # same view a batched execution yields); cross-slot programs
                # return the full vector.
                slotwise = batch_info.batchable
                for request in requests:
                    try:
                        result = executor.execute(
                            request.inputs, context=session.context
                        )
                        width = request.output_size or (
                            request_width(request.inputs)
                            if slotwise
                            else compilation.program.vec_size
                        )
                        responses.append(
                            ServeResponse(
                                outputs={
                                    key: np.asarray(value)[:width].copy()
                                    for key, value in result.outputs.items()
                                },
                                program=name,
                                client_id=client_id,
                                batch_size=1,
                                cached_program=cached_program,
                                cached_session=cached_session,
                                execute_seconds=result.stats.evaluate_seconds,
                            )
                        )
                    except Exception as exc:  # fail this job, not the batch
                        responses.append(exc)
        for job, response in zip(jobs, responses):
            if isinstance(response, ServeResponse):
                response.queue_seconds = job.queue_seconds
        return responses

    # -- introspection / lifecycle ----------------------------------------------
    def stats(self) -> Dict[str, object]:
        return {
            "backend": getattr(self.backend, "name", "unknown"),
            "programs": self.programs(),
            "registry": self.registry.summary(),
            "sessions": self.sessions.summary(),
            "engine": self.engine.metrics.summary(),
        }

    def close(self, wait: bool = True) -> None:
        self.engine.close(wait=wait)

    def __enter__(self) -> "EvaServer":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()


__all__ = ["EvaServer", "ServeRequest", "ServeResponse", "ProgramSpec"]
