"""The EVA serving front door: registered programs, cached sessions, batching.

:class:`EvaServer` is the in-process serving subsystem.  Programs are
registered once under a name; clients then submit named requests and receive
futures.  Per request the server

1. resolves the program's cached compilation (:class:`ProgramRegistry` — the
   signature is precomputed at registration, so the warm path never hashes),
2. resolves the client's cached backend context and keys
   (:class:`SessionManager`),
3. packs concurrently queued requests of the same (compilation signature,
   client) group into the unused CKKS slots (:class:`SlotBatcher`) — jobs
   group by *signature*, not program name, so identical programs registered
   under different names share batches — and
4. executes once per batch through the ordinary :class:`~repro.core.Executor`
   with the injected context.

Rotation-bearing programs batch too: when a batch of narrow requests arrives
for a program that is not slotwise, the server resolves (compiling at most
once, via the registry's variant index) a *lane-lowered* compilation of the
same source at the batch's lane width and executes that instead.  A lane
variant computes, per lane, exactly what the base program computes on a
replicated narrow input, so batched and solo answers agree.  Operators can
also pin a lane width at registration (``register(..., lane_width=w)``),
which bakes it into the program's signature — the form clients compiling for
the encrypted path must match.

The result is the amortized serving path the paper's deployment story
implies: compile once, keygen once per client, and pay one homomorphic
evaluation for up to ``vec_size / lane`` requests.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from ..backend.hisa import BackendContext, HomomorphicBackend
from ..core.compiler import CompilationResult, CompilerOptions, program_signature
from ..core.executor import EvaluationEngine, Executor
from ..core.ir import Program
from ..errors import EvaError, ServingError, UnknownProgramError
from .artifacts import ArtifactCache, LaneWidthPolicy, WidthHistogram
from .batching import BatchInfo, SlotBatcher, pow2_ceil, request_width
from .jobs import Job, JobEngine
from .quotas import FairnessPolicy
from .registry import ProgramRegistry
from .sessions import SessionManager
from .store import SessionStore
from .telemetry import Telemetry, absorb_summary


@dataclass
class ProgramSpec:
    """A named program as registered with the server."""

    name: str
    program: Program
    options: Optional[CompilerOptions]
    input_scales: Optional[Dict[str, float]]
    output_scales: Optional[Dict[str, float]]
    signature: str


@dataclass
class ServeRequest:
    """Payload of one queued job.

    ``name`` is the program name the request was submitted under; jobs group
    by compilation *signature*, so one batch may mix names that resolve to
    the same compiled program.
    """

    inputs: Dict[str, Any]
    output_size: Optional[int] = None
    name: str = ""


@dataclass
class EncryptedServeRequest:
    """Payload of one queued pre-encrypted job.

    ``bundle`` is either a live :class:`~repro.api.bundles.CipherBundle` or
    its wire dictionary (decoded lazily with the session's context on the
    worker side).
    """

    bundle: Any
    wire: bool = False
    name: str = ""


@dataclass
class EncryptedServeResponse:
    """Ciphertext outputs plus the serving metadata of one encrypted request.

    ``outputs`` is an :class:`~repro.api.bundles.EncryptedOutputs`; the server
    cannot decrypt it — only the submitting client can.
    """

    outputs: Any
    program: str
    client_id: str
    cached_program: bool = False
    queue_seconds: float = 0.0
    execute_seconds: float = 0.0
    #: The session's evaluation context the outputs were produced under, so a
    #: transport can encode the reply without re-resolving the session (which
    #: may have been evicted between evaluation and encoding).
    context: Optional[BackendContext] = None

    def to_wire(self, context: Optional[BackendContext] = None) -> Dict[str, Any]:
        """Encode the response for the wire (ciphertext outputs as blobs)."""
        from ..api.bundles import outputs_to_wire

        return outputs_to_wire(self.outputs, context or self.context)

    def release(self) -> None:
        """Release the output handles (after a transport has encoded them)."""
        if self.context is not None:
            for handle in self.outputs.ciphertexts.values():
                self.context.release(handle)

    def stats_dict(self) -> Dict[str, object]:
        """Wire/stats-friendly response metadata (no payloads)."""
        return {
            "program": self.program,
            "client_id": self.client_id,
            "encrypted": True,
            "cached_program": self.cached_program,
            "queue_seconds": round(self.queue_seconds, 6),
            "execute_seconds": round(self.execute_seconds, 6),
        }


@dataclass
class ServeResponse:
    """Decrypted outputs plus the serving metadata of one request."""

    outputs: Dict[str, np.ndarray]
    program: str
    client_id: str
    batch_size: int = 1
    cached_program: bool = False
    cached_session: bool = False
    queue_seconds: float = 0.0
    execute_seconds: float = 0.0
    #: Lane width of the compilation that answered (None when the request ran
    #: against the base, non-lane-lowered compilation).
    lane_width: Optional[int] = None

    def __getitem__(self, name: str) -> np.ndarray:
        return self.outputs[name]

    def stats_dict(self) -> Dict[str, object]:
        """Wire/stats-friendly response metadata (no payloads)."""
        return {
            "program": self.program,
            "client_id": self.client_id,
            "batch_size": self.batch_size,
            "cached_program": self.cached_program,
            "cached_session": self.cached_session,
            "lane_width": self.lane_width,
            "queue_seconds": round(self.queue_seconds, 6),
            "execute_seconds": round(self.execute_seconds, 6),
        }


class EvaServer:
    """In-process encrypted-computation server over a homomorphic backend."""

    def __init__(
        self,
        backend: Optional[HomomorphicBackend] = None,
        registry_capacity: int = 64,
        session_capacity: int = 32,
        workers: int = 2,
        queue_size: int = 256,
        max_batch: int = 8,
        batch_window: float = 0.0,
        executor_threads: int = 1,
        session_store: Optional[SessionStore] = None,
        artifact_cache: Optional[ArtifactCache] = None,
        fairness: Optional[FairnessPolicy] = None,
        precompile: Optional[LaneWidthPolicy] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if backend is None:
            from ..backend.mock_backend import MockBackend

            backend = MockBackend()
        self.backend = backend
        #: The unified telemetry plane (metrics registry + trace/slow rings).
        #: Every server owns one so metrics exposition is always available;
        #: transports share it to record their own spans.
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        #: Optional cross-process compiled-artifact cache: a registry miss
        #: loads what a sibling shard already compiled instead of recompiling,
        #: and fresh compilations are published back for the fleet.
        self.artifact_cache = artifact_cache
        self.registry = ProgramRegistry(
            capacity=registry_capacity, artifacts=artifact_cache
        )
        self.sessions = SessionManager(backend, capacity=session_capacity)
        #: Optional disk persistence of client key blobs: sessions created
        #: through :meth:`create_session` are saved, and an unknown client's
        #: encrypted request triggers a lazy restore — which is how sessions
        #: survive server restarts and (in a cluster) shard failures.
        self.session_store = session_store
        self.batcher = SlotBatcher()
        self.executor_threads = max(int(executor_threads), 1)
        self._programs: Dict[str, ProgramSpec] = {}
        self._executors: Dict[str, Executor] = {}
        self._engines: Dict[str, EvaluationEngine] = {}
        self._batch_infos: Dict[str, BatchInfo] = {}
        #: Per-signature modeled solo-execution seconds (cost model over the
        #: compiled graph), populated on the worker side and fed to the
        #: engine's deadline admission as the cold-start execute estimate.
        self._cost_estimates: Dict[str, float] = {}
        #: (base signature, lane width) pairs whose variant compilation
        #: failed; remembered so a failing width is not recompiled per batch.
        self._lane_failures: Set[Tuple[str, int]] = set()
        self._lock = threading.Lock()
        #: Request-width histogram feeding the lane-width precompile policy.
        self.widths = WidthHistogram()
        self.precompile = precompile
        self._precompiled: Set[Tuple[str, int]] = set()
        self._precompile_pending = 0
        self._precompile_cond = threading.Condition()
        self._precompile_queue: "Optional[Any]" = None
        self._precompile_thread: Optional[threading.Thread] = None
        self._precompile_closed = False
        self.engine = JobEngine(
            self._handle_batch,
            workers=workers,
            queue_size=queue_size,
            max_batch=max_batch,
            batch_window=batch_window,
            fairness=fairness,
            telemetry=self.telemetry,
        )

    # -- registration ------------------------------------------------------------
    def register(
        self,
        name: str,
        program: Any,
        options: Optional[CompilerOptions] = None,
        input_scales: Optional[Dict[str, float]] = None,
        output_scales: Optional[Dict[str, float]] = None,
        lane_width: Optional[int] = None,
    ) -> ProgramSpec:
        """Register a frontend program (or its graph) under ``name``.

        Accepts either a :class:`~repro.core.ir.Program` or a PyEVA
        :class:`~repro.frontend.EvaProgram` (its ``graph`` is used).
        Registration is cheap — compilation happens lazily on first request
        and is shared through the registry afterwards.

        ``lane_width`` pins the compilation to that lane width (folded into
        the compiler options, and hence the signature): every request —
        including pre-encrypted bundles, which a client must compile with the
        same ``lane_width`` — is then served by the lane-lowered program.
        Without it, the server still lane-batches plaintext requests by
        resolving variants on demand per batch.
        """
        graph = getattr(program, "graph", program)
        if not isinstance(graph, Program):
            raise ServingError(f"cannot register {type(program).__name__} as a program")
        if lane_width is not None:
            options = replace(options or CompilerOptions(), lane_width=int(lane_width))
        spec = ProgramSpec(
            name=name,
            program=graph,
            options=options,
            input_scales=input_scales,
            output_scales=output_scales,
            signature=program_signature(graph, options, input_scales, output_scales),
        )
        with self._lock:
            self._programs[name] = spec
        return spec

    def programs(self) -> List[str]:
        """Registered program names, sorted."""
        with self._lock:
            return sorted(self._programs)

    # -- request path ------------------------------------------------------------
    def submit(
        self,
        name: str,
        inputs: Dict[str, Any],
        client_id: str = "default",
        output_size: Optional[int] = None,
        timeout: Optional[float] = None,
        trace_id: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        slo_class: Optional[str] = None,
    ) -> "Future[ServeResponse]":
        """Queue one request; the future resolves to a :class:`ServeResponse`.

        ``deadline_ms`` and ``slo_class`` (``tight`` / ``standard`` /
        ``relaxed``) attach SLO semantics: an infeasible deadline is rejected
        at admission with :class:`~repro.errors.DeadlineInfeasibleError`, and
        the class shapes the batch-vs-solo decision downstream.  Unset values
        fall back to the fairness policy's per-client defaults.
        """
        with self._lock:
            spec = self._programs.get(name)
            if spec is None:
                raise UnknownProgramError(
                    f"no program registered under {name!r}; "
                    f"known programs: {sorted(self._programs)}"
                )
        if output_size is not None:
            # Reject here, at admission: a bad value surfacing inside the
            # worker would fail co-batched requests along with this one.
            try:
                output_size = int(output_size)
            except (TypeError, ValueError):
                raise ServingError(
                    f"output_size must be a positive integer, got {output_size!r}"
                ) from None
            if output_size < 1:
                raise ServingError(f"output_size must be positive, got {output_size}")
        payload = ServeRequest(inputs=dict(inputs), output_size=output_size, name=name)
        if self.precompile is not None:
            self._observe_width(spec, payload)
        # Group by compilation signature, not name: packed execution depends
        # only on the compiled graph, so identical programs registered under
        # different names share batches (clients still never mix).
        return self.engine.submit(
            ("plain", spec.signature, str(client_id)),
            payload,
            timeout=timeout,
            client=str(client_id),
            trace_id=trace_id,
            program=name,
            deadline_ms=deadline_ms,
            slo_class=slo_class,
            execute_estimate=self._cost_estimates.get(spec.signature),
        )

    def request(
        self,
        name: str,
        inputs: Dict[str, Any],
        client_id: str = "default",
        output_size: Optional[int] = None,
        timeout: Optional[float] = None,
        trace_id: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        slo_class: Optional[str] = None,
    ) -> ServeResponse:
        """Synchronous convenience wrapper around :meth:`submit`.

        ``timeout`` bounds each stage: queue admission (a full queue raises
        :class:`~repro.errors.QueueFullError` when it expires) and then the
        wait for the result.
        """
        return self.submit(
            name, inputs, client_id=client_id, output_size=output_size,
            timeout=timeout, trace_id=trace_id,
            deadline_ms=deadline_ms, slo_class=slo_class,
        ).result(timeout)

    # -- encrypted request path ----------------------------------------------------
    def create_session(
        self, name: str, client_id: str, evaluation_keys: Any
    ) -> Dict[str, object]:
        """Register a client's evaluation keys for ``name`` (client-held keys).

        ``evaluation_keys`` is either an evaluation-only
        :class:`~repro.backend.hisa.BackendContext` (in-process callers) or the
        JSON-able blob from ``ClientKit.export_evaluation_keys()`` (wire
        callers).  Once the session exists, pre-encrypted bundles from this
        client are evaluated under its keys; the server can never decrypt them.

        Sessions count against the client's fairness quota: they are the
        heaviest request type (key import + context build + persistence), so
        a server with a policy must not let them bypass admission — this is
        the shot at 429 for transports that call straight into the server.
        """
        ledger = self.engine.ledger
        ledger.admit(str(client_id))  # raises QuotaExceededError when violated
        try:
            return self._create_session(name, client_id, evaluation_keys)
        finally:
            ledger.release(str(client_id))

    def _create_session(
        self, name: str, client_id: str, evaluation_keys: Any
    ) -> Dict[str, object]:
        spec, compilation, _cached = self._resolve(name)
        if isinstance(evaluation_keys, BackendContext):
            context = evaluation_keys
        else:
            context = self.backend.create_evaluation_context(
                compilation.parameters, evaluation_keys
            )
        if getattr(context, "has_secret_key", True):
            raise ServingError(
                "sessions for encrypted bundles must use evaluation-only "
                "contexts; export keys with ClientKit.export_evaluation_keys() "
                "or derive a context with ClientKit.evaluation_context()"
            )
        try:
            self.sessions.attach(compilation, client_id, context)
        except ValueError as exc:
            raise ServingError(str(exc)) from exc
        if self.session_store is not None:
            blob = evaluation_keys if isinstance(evaluation_keys, dict) else None
            if blob is None:
                # In-process callers hand over a live context; ask it for the
                # exportable form so the session still survives a restart.
                try:
                    blob = context.export_evaluation_keys()
                except NotImplementedError:
                    blob = None
            if blob is not None:
                self.session_store.save(client_id, compilation, blob, program=name)
        self._count_session_keys(compilation, name, str(client_id))
        return {
            "program": name,
            "client_id": str(client_id),
            "signature": spec.signature,
            # The lane width the server compiled with; a client that wants
            # packed encrypted requests aligns encrypt_packed to this.
            "lane_width": compilation.lane_width,
        }

    def session_context(self, name: str, client_id: str) -> BackendContext:
        """The evaluation context registered for ``(name, client)``.

        Transports use it to decode incoming bundles and encode ciphertext
        replies with the right codec.
        """
        _spec, compilation, _cached = self._resolve(name)
        try:
            return self.sessions.get_attached(compilation, str(client_id)).context
        except LookupError as exc:
            session = self._restore_session(compilation, str(client_id))
            if session is None:
                raise ServingError(str(exc)) from exc
            return session.context

    def _restore_session(self, compilation: CompilationResult, client_id: str):
        """Rebuild a client-keyed session from the persisted key blob, if any.

        Returns the attached session, or ``None`` when there is no store, no
        record, or the blob cannot be rebuilt (a corrupt or stale record must
        degrade to the ordinary "create a session first" error, not crash the
        batch).
        """
        if self.session_store is None:
            return None
        blob = self.session_store.load(client_id, compilation)
        if blob is None:
            return None
        try:
            context = self.backend.create_evaluation_context(
                compilation.parameters, blob
            )
            session = self.sessions.attach(compilation, client_id, context)
            self._count_session_keys(
                compilation, compilation.program.name, client_id
            )
            return session
        except Exception as exc:
            import warnings

            warnings.warn(
                f"persisted session of client {client_id!r} could not be "
                f"restored: {type(exc).__name__}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            return None

    def submit_encrypted(
        self,
        name: str,
        bundle: Any,
        client_id: Optional[str] = None,
        timeout: Optional[float] = None,
        trace_id: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        slo_class: Optional[str] = None,
    ) -> "Future[EncryptedServeResponse]":
        """Queue one pre-encrypted bundle; future resolves to ciphertext outputs.

        ``bundle`` is a :class:`~repro.api.bundles.CipherBundle` or its wire
        dictionary.  The client must have registered evaluation keys with
        :meth:`create_session` first.  Encrypted jobs are grouped per
        (program, client) like plaintext ones but never co-batched with them:
        the server cannot slot-pack data it cannot read — clients pack before
        encrypting (``ClientKit.encrypt_packed``) to get the same amortization.
        """
        with self._lock:
            spec = self._programs.get(name)
            if spec is None:
                raise UnknownProgramError(
                    f"no program registered under {name!r}; "
                    f"known programs: {sorted(self._programs)}"
                )
        wire = isinstance(bundle, dict)
        if client_id is None:
            client_id = (
                bundle.get("client_id", "default")
                if wire
                else getattr(bundle, "client_id", "default")
            )
        payload = EncryptedServeRequest(bundle=bundle, wire=wire, name=name)
        return self.engine.submit(
            ("encrypted", spec.signature, str(client_id)),
            payload,
            timeout=timeout,
            client=str(client_id),
            trace_id=trace_id,
            program=name,
            deadline_ms=deadline_ms,
            slo_class=slo_class,
            execute_estimate=self._cost_estimates.get(spec.signature),
        )

    def request_encrypted(
        self,
        name: str,
        bundle: Any,
        client_id: Optional[str] = None,
        timeout: Optional[float] = None,
        trace_id: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        slo_class: Optional[str] = None,
    ) -> EncryptedServeResponse:
        """Synchronous convenience wrapper around :meth:`submit_encrypted`.

        ``timeout`` bounds each stage: queue admission and the result wait.
        """
        return self.submit_encrypted(
            name, bundle, client_id=client_id, timeout=timeout, trace_id=trace_id,
            deadline_ms=deadline_ms, slo_class=slo_class,
        ).result(timeout)

    # -- execution (worker side) -------------------------------------------------
    def _resolve(self, name: str) -> Tuple[ProgramSpec, CompilationResult, bool]:
        with self._lock:
            spec = self._programs.get(name)
        if spec is None:
            raise UnknownProgramError(f"program {name!r} was unregistered mid-flight")
        cached = spec.signature in self.registry
        compilation = self.registry.get_or_compile(
            spec.program,
            spec.options,
            spec.input_scales,
            spec.output_scales,
            signature=spec.signature,
        )
        return spec, compilation, cached

    def _resolve_any(
        self, names: List[str], signature: str
    ) -> Tuple[ProgramSpec, CompilationResult, bool]:
        """Resolve a batch that may mix names of one shared signature.

        All jobs in a batch share the compilation ``signature`` (it is the
        group key), but any individual name may have been unregistered — or
        re-registered as a *different* program — mid-flight; the batch
        survives as long as one of its names still resolves to the grouped
        signature.  A name pointing at a different signature must not answer
        the batch: co-batched jobs submitted under other names would silently
        execute the wrong program.
        """
        for name in dict.fromkeys(names):
            with self._lock:
                spec = self._programs.get(name)
            if spec is not None and spec.signature == signature:
                return self._resolve(name)
        raise UnknownProgramError(
            "every program of this batch was unregistered (or re-registered "
            f"as a different program) mid-flight: {sorted(set(names))}"
        )

    def _lane_variant_for(
        self,
        spec: ProgramSpec,
        batch_info: BatchInfo,
        requests: List[ServeRequest],
    ) -> Optional[CompilationResult]:
        """A lane-lowered variant able to pack this batch, or None.

        Only rotation-bearing programs compiled *without* a pinned lane width
        qualify; the chosen width covers every request's inputs, requested
        output sizes, and the program's constants.  A width whose compilation
        fails (e.g. the longer modulus chain exceeds the security budget) is
        remembered and never retried.
        """
        if batch_info.lane_width is not None or batch_info.slotwise:
            return None
        width = batch_info.min_lane
        for request in requests:
            width = max(width, request_width(request.inputs))
            if request.output_size:
                width = max(width, pow2_ceil(int(request.output_size)))
        if width >= batch_info.vec_size:
            return None
        key = (spec.signature, width)
        with self._lock:
            if key in self._lane_failures:
                return None
        try:
            return self.registry.get_or_compile_variant(
                spec.program,
                spec.options,
                spec.input_scales,
                spec.output_scales,
                lane_width=width,
                base_signature=spec.signature,
            )
        except Exception as exc:
            # Lane lowering is an optimization: a width that cannot compile
            # (or validate) must degrade to solo execution, not fail jobs.
            # Deterministic compiler failures (EvaError) are remembered so
            # the width is not recompiled per batch; anything else may be
            # transient, so it is warned about but retried next time.
            import warnings

            warnings.warn(
                f"lane variant (width {width}) of {spec.name!r} failed to "
                f"compile, serving solo: {type(exc).__name__}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            if isinstance(exc, EvaError):
                with self._lock:
                    self._lane_failures.add(key)
            return None

    # -- lane-width precompilation -------------------------------------------------
    def _observe_width(self, spec: ProgramSpec, request: ServeRequest) -> None:
        """Feed the width histogram; kick the precompile policy when due."""
        width = pow2_ceil(
            max(request_width(request.inputs), int(request.output_size or 1))
        )
        samples = self.widths.record(spec.signature, width)
        if samples % self.precompile.min_samples == 0:
            self._schedule_precompile(spec)

    def _schedule_precompile(self, spec: ProgramSpec) -> None:
        """Queue a background pre-warm of ``spec``'s top lane widths."""
        import queue as queue_module

        with self._precompile_cond:
            if self._precompile_closed:
                # A request racing close() must not enqueue behind the stop
                # sentinel (its pending count would never drain) or start a
                # worker thread nobody will stop.
                return
            if self._precompile_queue is None:
                self._precompile_queue = queue_module.Queue()
                self._precompile_thread = threading.Thread(
                    target=self._precompile_loop,
                    name="eva-precompile",
                    daemon=True,
                )
                self._precompile_thread.start()
            self._precompile_pending += 1
            self._precompile_queue.put(spec)

    def _precompile_loop(self) -> None:
        while True:
            spec = self._precompile_queue.get()
            if spec is None:
                return
            try:
                self._precompile_for(spec)
            except Exception as exc:  # pre-warming must never hurt serving
                import warnings

                warnings.warn(
                    f"lane-width precompile of {spec.name!r} failed: "
                    f"{type(exc).__name__}: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
            finally:
                with self._precompile_cond:
                    self._precompile_pending -= 1
                    self._precompile_cond.notify_all()

    def _precompile_for(self, spec: ProgramSpec) -> None:
        """Compile (and publish) the policy's best widths for one program.

        The candidate widths come from the observed request histogram, ranked
        by the policy — with the cost model on, by modeled per-request batch
        cost (lane rotation overhead + amortized Galois key bytes + slot
        waste), otherwise by raw popularity.  The widths a policy pre-warms
        are exactly the ones :meth:`_lane_variant_for` would resolve inline
        for a batch of the observed shape — so the first real batch at a
        popular width finds the variant already in the registry (or,
        fleet-wide, in the artifact cache) instead of paying the compile on
        the request path.  Each candidate's score lands on the
        ``serving.lane.width_score`` gauge and each successful pre-warm on
        the ``serving.lane.width_chosen`` counter, making the picker's
        decisions observable.
        """
        compilation = self.registry.get_or_compile(
            spec.program,
            spec.options,
            spec.input_scales,
            spec.output_scales,
            signature=spec.signature,
        )
        info = self._info_for(spec.signature, compilation)
        if info.slotwise or info.lane_width is not None:
            # Slotwise programs batch without lane variants; a pinned lane
            # width is already compiled in.
            return
        ranked = self.precompile.choose_widths(
            compilation, self.widths.counts(spec.signature)
        )
        for width, score in ranked:
            self.telemetry.set_gauge(
                "serving.lane.width_score",
                score,
                program=spec.name,
                width=str(width),
            )
        for width, _score in ranked:
            width = max(int(width), info.min_lane)
            if width >= info.vec_size:
                continue
            key = (spec.signature, width)
            with self._lock:
                if key in self._lane_failures or key in self._precompiled:
                    continue
            try:
                self.registry.get_or_compile_variant(
                    spec.program,
                    spec.options,
                    spec.input_scales,
                    spec.output_scales,
                    lane_width=width,
                    base_signature=spec.signature,
                )
                with self._lock:
                    self._precompiled.add(key)
                self.telemetry.inc(
                    "serving.lane.width_chosen",
                    1,
                    program=spec.name,
                    width=str(width),
                )
            except EvaError:
                with self._lock:
                    self._lane_failures.add(key)

    def drain_precompiles(self, timeout: Optional[float] = 30.0) -> bool:
        """Wait for queued pre-warms to finish (tests/benchmarks); True if idle."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._precompile_cond:
            while self._precompile_pending > 0:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._precompile_cond.wait(remaining)
            return True

    def _executor_for(
        self, signature: str, compilation: CompilationResult
    ) -> Tuple[Executor, BatchInfo]:
        with self._lock:
            executor = self._executors.get(signature)
            if executor is None:
                executor = Executor(
                    compilation, self.backend, threads=self.executor_threads
                )
                self._executors[signature] = executor
                # Keep the side caches bounded alongside the registry.
                while len(self._executors) > 2 * self.registry.capacity:
                    self._executors.pop(next(iter(self._executors)))
        return executor, self._info_for(signature, compilation)

    def _info_for(self, signature: str, compilation: CompilationResult) -> BatchInfo:
        """Cached :meth:`SlotBatcher.inspect` result (also carries the static
        rotation/key-switch counts the telemetry counters are fed from)."""
        with self._lock:
            info = self._batch_infos.get(signature)
            if info is None:
                info = self.batcher.inspect(compilation)
                self._batch_infos[signature] = info
                while len(self._batch_infos) > 2 * self.registry.capacity:
                    self._batch_infos.pop(next(iter(self._batch_infos)))
            return info

    def _count_rotation_tax(
        self, info: BatchInfo, program: str, client_id: str
    ) -> None:
        """One evaluation's rotation/key-switch tax, attributed per program/client."""
        if info.rotations:
            self.telemetry.inc(
                "serving.rotations",
                info.rotations,
                program=program,
                client=client_id,
            )
        if info.keyswitches:
            self.telemetry.inc(
                "serving.keyswitch",
                info.keyswitches,
                program=program,
                client=client_id,
            )

    def _harvest_op_times(self, context: Any, program: str) -> None:
        """Fold the backend's per-op kernel timings into ``ckks.op.*``.

        Real-backend contexts accumulate wall time per homomorphic op; the
        mock backend reports nothing, so this is free on the simulated path.
        """
        for op, (count, seconds) in context.drain_op_times().items():
            self.telemetry.inc("ckks.op.count", count, op=op, program=program)
            self.telemetry.inc("ckks.op.seconds", seconds, op=op, program=program)

    def _count_session_keys(
        self, compilation: CompilationResult, program: str, client_id: str
    ) -> None:
        """Account one session's Galois key footprint (modeled bytes).

        The byte estimate comes from the cost model, so it is deterministic
        across backends and matches what the BSGS planner optimizes; the
        per-key wire blobs of a real CKKS context track it proportionally.
        """
        from ..backend.cost_model import DEFAULT_COST_MODEL

        parameters = compilation.parameters
        steps = len(parameters.rotation_steps)
        if not steps:
            return
        key_bytes = steps * DEFAULT_COST_MODEL.galois_key_bytes(
            parameters.poly_modulus_degree,
            max(len(parameters.coeff_modulus_bits), 1),
        )
        self.telemetry.inc(
            "serving.galois.keys_bytes",
            key_bytes,
            program=program,
            client=client_id,
        )
        self.telemetry.set_gauge(
            "serving.galois.key_steps", steps, program=program
        )

    def _engine_for(
        self, signature: str, compilation: CompilationResult
    ) -> EvaluationEngine:
        """Cached ciphertext-only evaluation engine (bundle path).

        Separate from the :class:`Executor` cache because bundle evaluation
        must not retire input ciphertexts — they belong to the client.
        """
        with self._lock:
            engine = self._engines.get(signature)
            if engine is None:
                engine = EvaluationEngine(
                    compilation,
                    self.backend,
                    threads=self.executor_threads,
                    retire_inputs=False,
                )
                self._engines[signature] = engine
                while len(self._engines) > 2 * self.registry.capacity:
                    self._engines.pop(next(iter(self._engines)))
            return engine

    def _handle_encrypted_batch(self, jobs: List[Job]) -> List[Any]:
        from ..api.bundles import EncryptedOutputs, bundle_from_wire

        _, signature, client_id = jobs[0].group
        resolve_started = time.perf_counter()
        spec, compilation, cached_program = self._resolve_any(
            [job.payload.name for job in jobs], signature
        )
        self._note_cost_estimate(signature, compilation)
        restored = False
        try:
            session = self.sessions.get_attached(compilation, client_id)
        except LookupError as exc:
            # The client may have registered its keys with a previous process
            # (server restart) or a different shard (reroute after a shard
            # failure): restore from the persistent store before giving up.
            restore_started = time.perf_counter()
            session = self._restore_session(compilation, client_id)
            if session is None:
                raise ServingError(str(exc)) from exc
            restored = True
            restore_seconds = time.perf_counter() - restore_started
        engine = self._engine_for(spec.signature, compilation)
        info = self._info_for(spec.signature, compilation)
        resolve_seconds = time.perf_counter() - resolve_started
        for job in jobs:
            self.telemetry.span(
                job.trace_id,
                "compile_or_cache",
                resolve_seconds - (restore_seconds if restored else 0.0),
                cached=cached_program,
                program=spec.name,
            )
            if restored:
                self.telemetry.span(
                    job.trace_id, "session_restore", restore_seconds,
                    client=client_id,
                )
        responses: List[Any] = []
        with session.lock:
            for job in jobs:
                request = job.payload
                try:
                    bundle = request.bundle
                    if request.wire:
                        bundle = bundle_from_wire(bundle, session.context)
                    if bundle.program_signature != spec.signature:
                        raise ServingError(
                            f"bundle was encrypted for a different compilation "
                            f"of {request.name!r} ({bundle.program_signature[:12]}... "
                            f"vs {spec.signature[:12]}...); recompile the client "
                            "against the server's program and options (including "
                            "its lane_width)"
                        )
                    start = time.perf_counter()
                    handles = engine.evaluate(
                        session.context, bundle.ciphertexts, bundle.plain
                    )
                    elapsed = time.perf_counter() - start
                    self._count_rotation_tax(info, spec.name, client_id)
                    self._harvest_op_times(session.context, spec.name)
                    if request.wire:
                        # Wire-decoded input handles are server-owned copies;
                        # release them so the context's live-ciphertext
                        # accounting stays bounded.  A pass-through output can
                        # alias an input handle — those stay live.
                        output_ids = {id(h) for h in handles.values()}
                        for handle in bundle.ciphertexts.values():
                            if id(handle) not in output_ids:
                                session.context.release(handle)
                    responses.append(
                        EncryptedServeResponse(
                            outputs=EncryptedOutputs(
                                program_signature=spec.signature,
                                ciphertexts=handles,
                                evaluate_seconds=elapsed,
                            ),
                            program=request.name,
                            client_id=client_id,
                            cached_program=cached_program,
                            execute_seconds=elapsed,
                            context=session.context,
                        )
                    )
                except Exception as exc:  # fail this job, not the batch
                    responses.append(exc)
        for job, response in zip(jobs, responses):
            if isinstance(response, EncryptedServeResponse):
                response.queue_seconds = job.queue_seconds
        return responses

    def _note_cost_estimate(self, signature: str, compilation: Any) -> None:
        """Record the modeled solo-execution seconds of one compilation.

        Runs on the worker side (where the compilation is in hand anyway) so
        deadline admission never forces a compile; until a program's first
        execution, admission falls back to the engine's observed history.
        """
        if signature in self._cost_estimates:
            return
        from ..backend.cost_model import DEFAULT_COST_MODEL

        params = compilation.parameters
        self._cost_estimates[signature] = DEFAULT_COST_MODEL.program_seconds(
            compilation.program,
            params.poly_modulus_degree,
            max(params.modulus_count - 1, 1),
        )

    def _handle_batch(self, jobs: List[Job]) -> List[Any]:
        group = jobs[0].group
        if group[0] == "encrypted":
            return self._handle_encrypted_batch(jobs)
        _, signature, client_id = group
        requests: List[ServeRequest] = [job.payload for job in jobs]
        resolve_started = time.perf_counter()
        spec, compilation, cached_program = self._resolve_any(
            [request.name for request in requests], signature
        )
        self._note_cost_estimate(signature, compilation)
        executor, batch_info = self._executor_for(spec.signature, compilation)
        resolve_seconds = time.perf_counter() - resolve_started
        for job in jobs:
            self.telemetry.span(
                job.trace_id,
                "compile_or_cache",
                resolve_seconds,
                cached=cached_program,
                program=spec.name,
            )

        plan = self.batcher.plan(
            compilation,
            [request.inputs for request in requests],
            [request.output_size for request in requests],
            info=batch_info,
        )
        if plan is None and len(requests) >= 2:
            # Rotation-bearing program: try the lane-lowered variant sized to
            # this batch.  The variant computes, per lane, what the base
            # program computes on a replicated narrow input, so answers agree
            # with the solo path.
            variant = self._lane_variant_for(spec, batch_info, requests)
            if variant is not None:
                variant_executor, variant_info = self._executor_for(
                    variant.signature, variant
                )
                variant_plan = self.batcher.plan(
                    variant,
                    [request.inputs for request in requests],
                    [request.output_size for request in requests],
                    info=variant_info,
                )
                if variant_plan is not None:
                    compilation, executor = variant, variant_executor
                    batch_info, plan = variant_info, variant_plan

        # The session is keyed by the compilation that will actually run:
        # a lane variant has its own rotation steps and hence its own keys.
        session = self.sessions.get_session(compilation, client_id)
        cached_session = session.hits > 0
        responses: List[Any] = []
        with session.lock:
            if plan is not None:
                packed = self.batcher.pack(plan, [r.inputs for r in requests])
                result = executor.execute(packed, context=session.context)
                # One homomorphic evaluation served the whole batch: the
                # rotation tax is paid once, not per request — exactly the
                # amortization the counters exist to make visible.
                self._count_rotation_tax(batch_info, spec.name, client_id)
                self._harvest_op_times(session.context, spec.name)
                per_request = self.batcher.unpack(plan, result.outputs)
                for request, outputs in zip(requests, per_request):
                    responses.append(
                        ServeResponse(
                            outputs=outputs,
                            program=request.name,
                            client_id=client_id,
                            batch_size=len(jobs),
                            cached_program=cached_program,
                            cached_session=cached_session,
                            execute_seconds=result.stats.evaluate_seconds,
                            lane_width=batch_info.lane_width,
                        )
                    )
            else:
                # Solo answers default to the output's full period — the
                # request width, widened to the program constants' period —
                # which is the same view a batched (slotwise or lane-lowered)
                # execution yields for a replicated narrow input.
                for request in requests:
                    try:
                        if batch_info.lane_width is not None:
                            # A pinned lane width is a hard contract: the
                            # lowered rotations are lane-local, so data wider
                            # than the lane would be computed *wrongly*, not
                            # just unbatched.
                            wide = max(
                                request_width(request.inputs),
                                request.output_size or 0,
                            )
                            if wide > batch_info.lane_width:
                                raise ServingError(
                                    f"request of width {wide} exceeds the "
                                    f"lane width {batch_info.lane_width} "
                                    f"{request.name!r} was registered with"
                                )
                        result = executor.execute(
                            request.inputs, context=session.context
                        )
                        self._count_rotation_tax(
                            batch_info, spec.name, client_id
                        )
                        self._harvest_op_times(session.context, spec.name)
                        width = request.output_size or min(
                            compilation.program.vec_size,
                            max(request_width(request.inputs), batch_info.min_lane),
                        )
                        responses.append(
                            ServeResponse(
                                outputs={
                                    key: np.asarray(value)[:width].copy()
                                    for key, value in result.outputs.items()
                                },
                                program=request.name,
                                client_id=client_id,
                                batch_size=1,
                                cached_program=cached_program,
                                cached_session=cached_session,
                                execute_seconds=result.stats.evaluate_seconds,
                                lane_width=batch_info.lane_width,
                            )
                        )
                    except Exception as exc:  # fail this job, not the batch
                        responses.append(exc)
        for job, response in zip(jobs, responses):
            if isinstance(response, ServeResponse):
                response.queue_seconds = job.queue_seconds
        return responses

    # -- introspection / lifecycle ----------------------------------------------
    def stats(self) -> Dict[str, object]:
        """One dict of registry/session/engine/quota/batching metrics."""
        with self._lock:
            lane_failures = len(self._lane_failures)
            precompiled = sorted(self._precompiled)
        return {
            "backend": getattr(self.backend, "name", "unknown"),
            "programs": self.programs(),
            "registry": self.registry.summary(),
            "sessions": self.sessions.summary(),
            "session_store": (
                self.session_store.summary() if self.session_store else None
            ),
            # Read under the engine lock: workers mutate these counters
            # mid-batch, and an unlocked read can observe torn state.
            "engine": self.engine.metrics_snapshot(),
            "quota": self.engine.ledger.summary(),
            "precompile": {
                "enabled": self.precompile is not None,
                "compiled_widths": [
                    [signature[:12], width] for signature, width in precompiled
                ],
                "width_histogram": self.widths.summary(),
            },
            # (signature, width) pairs whose lane variant failed to compile
            # and were pinned to solo execution; non-zero deserves a look.
            "lane_variant_failures": lane_failures,
        }

    def metrics_snapshot(self) -> Dict[str, object]:
        """The unified telemetry snapshot: registry series + absorbed summaries.

        The request-path histograms and counters come straight from the
        telemetry registry; the legacy per-component ``summary()`` dicts
        (engine totals, program registry, sessions, stores, quotas) are
        absorbed as gauges under stable dotted prefixes, so one snapshot is
        the whole observable state of this server process.
        """
        snapshot = self.telemetry.registry.snapshot()
        absorb_summary(snapshot, "serving.engine", self.engine.metrics_snapshot())
        absorb_summary(snapshot, "serving.quota", self.engine.ledger.summary())
        absorb_summary(snapshot, "serving.registry", self.registry.summary())
        absorb_summary(snapshot, "serving.sessions", self.sessions.summary())
        if self.session_store is not None:
            absorb_summary(snapshot, "serving.store", self.session_store.summary())
        if self.artifact_cache is not None:
            absorb_summary(
                snapshot, "serving.artifacts", self.artifact_cache.summary()
            )
        return snapshot

    def close(self, wait: bool = True) -> None:
        """Stop workers and release sessions; with ``wait`` joins them first."""
        with self._precompile_cond:
            self._precompile_closed = True
            if self._precompile_queue is not None:
                self._precompile_queue.put(None)
        self.engine.close(wait=wait)
        if self._precompile_thread is not None and wait:
            self._precompile_thread.join(timeout=10)

    def __enter__(self) -> "EvaServer":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()


__all__ = [
    "EvaServer",
    "ServeRequest",
    "ServeResponse",
    "EncryptedServeRequest",
    "EncryptedServeResponse",
    "ProgramSpec",
]
