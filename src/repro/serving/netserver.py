"""TCP front-ends for single-process and sharded (cluster) serving.

Transport is deliberately simple — newline-delimited JSON messages (see
:mod:`repro.core.serialization.messages`) over a threading TCP server — so a
client can be a five-line script or ``repro.cli submit``.  Each connection may
pipeline any number of requests; responses come back in order.  Connection
threads block on the server's futures, so concurrency across connections is
bounded by the job engine, not by the socket layer.

Two servers share the wire format:

* :class:`EvaTcpServer` wraps one in-process
  :class:`~repro.serving.server.EvaServer` (the single-process mode).
* :class:`ClusterTcpServer` is the *router* of an
  :class:`~repro.serving.cluster.EvaCluster`: it owns the public listener and
  forwards each framed request line to the shard its ``client_id``
  consistent-hashes to, relaying the shard's reply verbatim.  Clients cannot
  tell the difference — :class:`ServingClient` works against both.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..core.serialization import messages
from ..errors import (
    EvaError,
    QuotaExceededError,
    SerializationError,
    ServingError,
    TransportError,
)
from .quotas import FairnessPolicy, QuotaLedger
from .server import EvaServer


class _RequestHandler(socketserver.StreamRequestHandler):
    """One connection: read request lines, write response lines."""

    server: "EvaTcpServer"

    def handle(self) -> None:
        while True:
            line = self.rfile.readline()
            if not line:
                return
            text = line.decode("utf-8").strip()
            if not text:
                continue
            try:
                reply = self._dispatch(messages.decode_request(text))
            except EvaError as error:
                reply = messages.encode_error(error)
            except Exception as error:  # never let a request kill the connection
                reply = messages.encode_error(ServingError(str(error)))
            self.wfile.write(reply.encode("utf-8"))
            self.wfile.flush()

    def _dispatch(self, request: Dict[str, Any]) -> str:
        eva = self.server.eva_server
        op = request["op"]
        if op == "ping":
            return messages.encode_response(payload={"pong": True})
        if op == "list":
            return messages.encode_response(payload={"programs": eva.programs()})
        if op == "stats":
            return messages.encode_response(payload={"stats": eva.stats()})
        if op == "health":
            return messages.encode_response(
                payload={
                    "health": [
                        {
                            "index": 0,
                            "status": "live",
                            "alive": True,
                            "mode": "single-process",
                        }
                    ]
                }
            )
        if op in ("route", "drain", "rejoin"):
            raise ServingError(
                f"{op} is a cluster operation; this is a single-process server"
            )
        if op == "session":
            session = eva.create_session(
                request["program"],
                request.get("client_id", "default"),
                request["evaluation_keys"],
            )
            return messages.encode_response(payload={"session": session})
        if "bundle" in request:
            name = request["program"]
            client_id = request.get("client_id", "default")
            response = eva.request_encrypted(
                name, request["bundle"], client_id=client_id
            )
            # Encode the ciphertext reply with the session context the worker
            # evaluated under (carried on the response, so an eviction between
            # evaluation and encoding cannot fail a completed request); the
            # server never decrypts — only the submitting client can.
            reply = messages.encode_response(
                stats=response.stats_dict(),
                payload={"encrypted_outputs": response.to_wire()},
            )
            # The transport owns the output handles once encoded.
            response.release()
            return reply
        response = eva.request(
            request["program"],
            request["inputs"],
            client_id=request.get("client_id", "default"),
            output_size=request.get("output_size"),
        )
        return messages.encode_response(
            outputs=response.outputs, stats=response.stats_dict()
        )


class EvaTcpServer(socketserver.ThreadingTCPServer):
    """Threaded TCP server wrapping an :class:`EvaServer`."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self, eva_server: EvaServer, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.eva_server = eva_server
        super().__init__((host, port), _RequestHandler)

    @property
    def address(self) -> Tuple[str, int]:
        return self.server_address[0], self.server_address[1]

    def start_background(self) -> threading.Thread:
        """Serve on a daemon thread; returns the (started) thread."""
        thread = threading.Thread(
            target=self.serve_forever, name="eva-tcp-server", daemon=True
        )
        thread.start()
        return thread


class _RouterHandler(socketserver.StreamRequestHandler):
    """One router connection: route each request line to its client's shard.

    Forwarding goes through the cluster's own request plumbing
    (:meth:`EvaCluster._call`), which keeps one upstream connection per
    (handler thread, shard) — so pipelined requests keep their ordering per
    shard and the router adds no per-request connect cost — and already
    implements failover: a dead shard leaves the ring and the request retries
    on the client's new home shard, safe because serving requests are pure
    evaluations.
    """

    server: "ClusterTcpServer"

    def handle(self) -> None:
        while True:
            line = self.rfile.readline()
            if not line:
                return
            text = line.decode("utf-8").strip()
            if not text:
                continue
            try:
                reply = self._dispatch(text)
            except EvaError as error:
                reply = messages.encode_error(error)
            except Exception as error:  # never let a request kill the connection
                reply = messages.encode_error(ServingError(str(error)))
            self.wfile.write(reply.encode("utf-8"))
            self.wfile.flush()

    def _dispatch(self, text: str) -> str:
        cluster = self.server.cluster
        try:
            request = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SerializationError(f"malformed request JSON: {exc}") from exc
        if not isinstance(request, dict):
            raise SerializationError("request must be a JSON object")
        op = request.get("op")
        client_id = str(request.get("client_id", "default"))
        # Ops the router answers itself: liveness, routing introspection,
        # shard lifecycle administration, and the cluster-wide views that
        # span shards.
        if op == "ping":
            return messages.encode_response(payload={"pong": True})
        if op == "route":
            return messages.encode_response(
                payload={"route": cluster.describe_route(client_id)}
            )
        if op == "health":
            return messages.encode_response(
                payload={"health": cluster.check_health()}
            )
        if op == "drain":
            shard = messages.validate_shard(op, request.get("shard"))
            return messages.encode_response(
                payload={"drain": cluster.drain_shard(shard)}
            )
        if op == "rejoin":
            shard = messages.validate_shard(op, request.get("shard"))
            return messages.encode_response(
                payload={"rejoin": cluster.rejoin_shard(shard)}
            )
        if op == "list":
            return messages.encode_response(payload={"programs": cluster.programs()})
        if op == "stats":
            return messages.encode_response(payload={"stats": cluster.stats()})
        # Everything else ("submit", "session") is forwarded verbatim to the
        # client's shard; the shard validates the message itself.  Both pass
        # per-client admission first — sessions are the *heaviest* op (key
        # import + persistence), so exempting them would leave the biggest
        # hole — and the router is the cheap place to say 429, before the
        # request ever crosses to a shard.
        ledger = self.server.ledger
        if op in ("submit", "session") and ledger.enabled:
            ledger.admit(client_id)  # raises QuotaExceededError (encoded above)
            try:
                return cluster._call(
                    client_id, lambda upstream: upstream.roundtrip_raw(text)
                )
            finally:
                ledger.release(client_id)
        return cluster._call(client_id, lambda upstream: upstream.roundtrip_raw(text))


class ClusterTcpServer(socketserver.ThreadingTCPServer):
    """Router front door of an :class:`~repro.serving.cluster.EvaCluster`.

    Owns the public listener; every framed request is forwarded to the shard
    its client consistent-hashes to.  The wire protocol is identical to
    :class:`EvaTcpServer`'s, plus the cluster admin ops: ``route`` (which
    shard/pid a client maps to), ``health`` (per-shard liveness), ``drain``
    and ``rejoin`` (shard lifecycle) — useful for chaos drills, rolling
    restarts, and smoke tests.

    When the cluster carries a :class:`~repro.serving.quotas.FairnessPolicy`
    (or one is passed explicitly), the router enforces per-client rate and
    in-flight quotas *before* forwarding: a throttled client gets a
    ``QuotaExceededError`` reply with ``retry_after`` and its request never
    costs a shard anything.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        cluster: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        fairness: Optional[FairnessPolicy] = None,
    ) -> None:
        self.cluster = cluster
        if fairness is None:
            fairness = getattr(cluster, "fairness", None)
        self.ledger = QuotaLedger(fairness)
        super().__init__((host, port), _RouterHandler)

    @property
    def address(self) -> Tuple[str, int]:
        return self.server_address[0], self.server_address[1]

    def start_background(self) -> threading.Thread:
        """Serve on a daemon thread; returns the (started) thread."""
        thread = threading.Thread(
            target=self.serve_forever, name="eva-cluster-router", daemon=True
        )
        thread.start()
        return thread


class ServingClient:
    """Minimal line-protocol client for :class:`EvaTcpServer` (and the router)."""

    def __init__(self, host: str, port: int, timeout: Optional[float] = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def roundtrip_raw(self, text: str) -> str:
        """Send one raw request line, return the raw reply line.

        Transport failures raise :class:`~repro.errors.TransportError` so
        routing layers can distinguish "the connection died" (fail over) from
        an application-level error reply (do not).
        """
        if not text.endswith("\n"):
            text += "\n"
        try:
            self._file.write(text.encode("utf-8"))
            self._file.flush()
            reply = self._file.readline()
        except OSError as exc:
            raise TransportError(f"connection to server lost: {exc}") from exc
        if not reply:
            raise TransportError("connection closed by server")
        return reply.decode("utf-8")

    def _roundtrip(self, line: str) -> Dict[str, Any]:
        response = messages.decode_response(self.roundtrip_raw(line))
        if not response.get("ok"):
            kind = response.get("kind", "ServingError")
            if kind == "QuotaExceededError":
                # The serving layer's 429: re-raise typed, with the server's
                # retry-after hint, so callers can back off instead of just
                # failing.
                raise QuotaExceededError(
                    str(response.get("error")),
                    retry_after=float(response.get("retry_after", 0.0) or 0.0),
                )
            raise ServingError(f"{kind}: {response.get('error')}")
        return response

    def submit(
        self,
        program: str,
        inputs: Dict[str, Any],
        client_id: str = "default",
        output_size: Optional[int] = None,
    ) -> Dict[str, np.ndarray]:
        """Execute ``program`` on the server; returns decrypted outputs."""
        response = self._roundtrip(
            messages.encode_request(
                "submit",
                program=program,
                inputs=inputs,
                client_id=client_id,
                output_size=output_size,
            )
        )
        self.last_stats: Dict[str, Any] = response.get("stats", {})
        return response.get("outputs", {})

    def create_session(self, program: str, client_kit: Any, client_id: Optional[str] = None) -> Dict[str, Any]:
        """Register ``client_kit``'s evaluation keys for ``program`` on the server.

        ``client_kit`` is a :class:`repro.api.ClientKit` (anything exposing
        ``export_evaluation_keys()``); the secret key never leaves the client.
        """
        response = self._roundtrip(
            messages.encode_request(
                "session",
                program=program,
                client_id=client_id or getattr(client_kit, "client_id", "default"),
                evaluation_keys=client_kit.export_evaluation_keys(),
            )
        )
        return response.get("session", {})

    def submit_bundle(
        self,
        program: str,
        bundle_wire: Dict[str, Any],
        client_id: str = "default",
    ) -> Dict[str, Any]:
        """Submit a wire-encoded cipher bundle; returns wire-encoded ciphertext outputs."""
        response = self._roundtrip(
            messages.encode_request(
                "submit", program=program, bundle=bundle_wire, client_id=client_id
            )
        )
        self.last_stats = response.get("stats", {})
        return response.get("encrypted_outputs", {})

    def submit_encrypted(
        self,
        program: str,
        client_kit: Any,
        inputs: Dict[str, Any],
        client_id: Optional[str] = None,
    ) -> Dict[str, np.ndarray]:
        """End-to-end encrypted request: encrypt, submit, decrypt — keys stay local.

        The kit encrypts ``inputs`` into a bundle, the server evaluates it
        blindly under the session created with :meth:`create_session`, and the
        ciphertext reply is decrypted here with the kit's secret key.
        ``client_id`` must match the one the session was created under
        (defaults to the kit's own id, as :meth:`create_session` does).
        """
        bundle = client_kit.encrypt_inputs(inputs)
        reply = self.submit_bundle(
            program,
            client_kit.bundle_to_wire(bundle),
            client_id=client_id or getattr(client_kit, "client_id", "default"),
        )
        return client_kit.decrypt_outputs(client_kit.outputs_from_wire(reply))

    def programs(self) -> list:
        return self._roundtrip(messages.encode_request("list")).get("programs", [])

    def route(self, client_id: str = "default") -> Dict[str, Any]:
        """Which shard serves ``client_id`` (cluster servers only)."""
        return self._roundtrip(
            messages.encode_request("route", client_id=client_id)
        ).get("route", {})

    def health(self) -> list:
        """Per-shard health report (single servers report one live shard)."""
        return self._roundtrip(messages.encode_request("health")).get("health", [])

    def drain(self, shard: int) -> Dict[str, Any]:
        """Take ``shard`` out of the ring without stopping it (cluster only)."""
        return self._roundtrip(
            messages.encode_request("drain", shard=shard)
        ).get("drain", {})

    def rejoin(self, shard: int) -> Dict[str, Any]:
        """Return ``shard`` to the ring, respawning it if dead (cluster only)."""
        return self._roundtrip(
            messages.encode_request("rejoin", shard=shard)
        ).get("rejoin", {})

    def stats(self) -> Dict[str, Any]:
        return self._roundtrip(messages.encode_request("stats")).get("stats", {})

    def ping(self) -> bool:
        return bool(self._roundtrip(messages.encode_request("ping")).get("pong"))

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __del__(self) -> None:  # release the socket when a cached client dies
        try:
            self.close()
        except Exception:
            pass

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()
