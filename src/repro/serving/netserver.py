"""TCP front-ends for single-process and sharded (cluster) serving.

Transport is deliberately simple — newline-delimited JSON messages (see
:mod:`repro.core.serialization.messages`) over a threading TCP server — so a
client can be a five-line script or ``repro.cli submit``.  Each connection may
pipeline any number of requests; responses come back in order.  Connection
threads block on the server's futures, so concurrency across connections is
bounded by the job engine, not by the socket layer.

Two servers share the wire format:

* :class:`EvaTcpServer` wraps one in-process
  :class:`~repro.serving.server.EvaServer` (the single-process mode).
* :class:`ClusterTcpServer` is the *router* of an
  :class:`~repro.serving.cluster.EvaCluster`: it owns the public listener and
  forwards each framed request line to the shard its ``client_id``
  consistent-hashes to, relaying the shard's reply verbatim.  Clients cannot
  tell the difference — :class:`ServingClient` works against both.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
import time
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..core.serialization import messages
from ..errors import (
    EvaError,
    QuotaExceededError,
    SerializationError,
    ServingError,
    TransportError,
)
from .quotas import FairnessPolicy, QuotaLedger
from .server import EvaServer
from .telemetry import (
    Telemetry,
    aggregate_snapshots,
    merge_traces,
    new_trace_id,
    render_prometheus,
)


class _RequestHandler(socketserver.StreamRequestHandler):
    """One connection: read request lines, write response lines."""

    server: "EvaTcpServer"

    def handle(self) -> None:
        while True:
            line = self.rfile.readline()
            if not line:
                return
            text = line.decode("utf-8").strip()
            if not text:
                continue
            # Captured as soon as the request parses, so even an error reply
            # echoes the trace id the request carried (quota rejections
            # included — the client can still look the trace up).
            trace_id: Optional[str] = None
            try:
                request = messages.decode_request(text)
                trace_id = request.get("trace_id")
                reply = self._dispatch(request)
            except EvaError as error:
                reply = messages.encode_error(error, trace_id=trace_id)
            except Exception as error:  # never let a request kill the connection
                reply = messages.encode_error(
                    ServingError(str(error)), trace_id=trace_id
                )
            self.wfile.write(reply.encode("utf-8"))
            self.wfile.flush()

    def _dispatch(self, request: Dict[str, Any]) -> str:
        eva = self.server.eva_server
        op = request["op"]
        if op == "ping":
            return messages.encode_response(payload={"pong": True})
        if op == "list":
            return messages.encode_response(payload={"programs": eva.programs()})
        if op == "stats":
            return messages.encode_response(payload={"stats": eva.stats()})
        if op == "metrics":
            snapshot = eva.metrics_snapshot()
            payload: Dict[str, Any] = {"metrics": snapshot}
            if request.get("format") == "prometheus":
                payload["prometheus"] = render_prometheus(snapshot)
            return messages.encode_response(payload=payload)
        if op == "trace":
            return messages.encode_response(
                payload={"trace": eva.telemetry.trace_of(request["trace_id"])}
            )
        if op == "slow":
            return messages.encode_response(
                payload={"slow": eva.telemetry.slow(request.get("limit"))}
            )
        if op == "health":
            return messages.encode_response(
                payload={
                    "health": [
                        {
                            "index": 0,
                            "status": "live",
                            "alive": True,
                            "mode": "single-process",
                        }
                    ]
                }
            )
        if op in ("route", "drain", "rejoin"):
            raise ServingError(
                f"{op} is a cluster operation; this is a single-process server"
            )
        started = time.perf_counter()
        trace_id = request.get("trace_id")
        client_id = request.get("client_id", "default")
        program = request.get("program")
        if op == "session":
            session = eva.create_session(
                request["program"],
                client_id,
                request["evaluation_keys"],
            )
            reply = messages.encode_response(payload={"session": session})
            eva.telemetry.finish(
                trace_id,
                time.perf_counter() - started,
                op="session",
                client=client_id,
                program=program,
            )
            return reply
        if "bundle" in request:
            name = request["program"]
            response = eva.request_encrypted(
                name, request["bundle"], client_id=client_id, trace_id=trace_id
            )
            # Encode the ciphertext reply with the session context the worker
            # evaluated under (carried on the response, so an eviction between
            # evaluation and encoding cannot fail a completed request); the
            # server never decrypts — only the submitting client can.
            encode_started = time.perf_counter()
            reply = messages.encode_response(
                stats=response.stats_dict(),
                payload={"encrypted_outputs": response.to_wire()},
            )
            # The transport owns the output handles once encoded.
            response.release()
            eva.telemetry.span(
                trace_id,
                "serialize_reply",
                time.perf_counter() - encode_started,
            )
            reply = self._finish_submit(
                request, reply, started, client_id, program
            )
            return reply
        response = eva.request(
            request["program"],
            request["inputs"],
            client_id=client_id,
            output_size=request.get("output_size"),
            trace_id=trace_id,
        )
        encode_started = time.perf_counter()
        reply = messages.encode_response(
            outputs=response.outputs, stats=response.stats_dict()
        )
        eva.telemetry.span(
            trace_id, "serialize_reply", time.perf_counter() - encode_started
        )
        return self._finish_submit(request, reply, started, client_id, program)

    def _finish_submit(
        self,
        request: Dict[str, Any],
        reply: str,
        started: float,
        client_id: str,
        program: Optional[str],
    ) -> str:
        """Close out one submit: total-latency metrics, slow log, trace echo."""
        eva = self.server.eva_server
        trace_id = request.get("trace_id")
        eva.telemetry.finish(
            trace_id,
            time.perf_counter() - started,
            op="submit",
            client=client_id,
            program=program,
        )
        if trace_id and request.get("trace"):
            trace = eva.telemetry.trace_of(trace_id)
            if trace is not None:
                reply = messages.splice_field(reply, "trace", trace)
        return reply


class EvaTcpServer(socketserver.ThreadingTCPServer):
    """Threaded TCP server wrapping an :class:`EvaServer`."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self, eva_server: EvaServer, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.eva_server = eva_server
        super().__init__((host, port), _RequestHandler)

    @property
    def address(self) -> Tuple[str, int]:
        return self.server_address[0], self.server_address[1]

    def start_background(self) -> threading.Thread:
        """Serve on a daemon thread; returns the (started) thread."""
        thread = threading.Thread(
            target=self.serve_forever, name="eva-tcp-server", daemon=True
        )
        thread.start()
        return thread


class _RouterHandler(socketserver.StreamRequestHandler):
    """One router connection: route each request line to its client's shard.

    Forwarding goes through the cluster's own request plumbing
    (:meth:`EvaCluster._call`), which keeps one upstream connection per
    (handler thread, shard) — so pipelined requests keep their ordering per
    shard and the router adds no per-request connect cost — and already
    implements failover: a dead shard leaves the ring and the request retries
    on the client's new home shard, safe because serving requests are pure
    evaluations.
    """

    server: "ClusterTcpServer"

    def handle(self) -> None:
        while True:
            line = self.rfile.readline()
            if not line:
                return
            text = line.decode("utf-8").strip()
            if not text:
                continue
            trace_id: Optional[str] = None
            try:
                reply, trace_id = self._dispatch(text)
            except EvaError as error:
                reply = messages.encode_error(
                    error, trace_id=getattr(error, "trace_id", None) or trace_id
                )
            except Exception as error:  # never let a request kill the connection
                reply = messages.encode_error(
                    ServingError(str(error)), trace_id=trace_id
                )
            self.wfile.write(reply.encode("utf-8"))
            self.wfile.flush()

    def _dispatch(self, text: str) -> Tuple[str, Optional[str]]:
        cluster = self.server.cluster
        telemetry = self.server.telemetry
        try:
            request = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SerializationError(f"malformed request JSON: {exc}") from exc
        if not isinstance(request, dict):
            raise SerializationError("request must be a JSON object")
        op = request.get("op")
        client_id = str(request.get("client_id", "default"))
        trace_id = request.get("trace_id")
        if trace_id is not None and not isinstance(trace_id, str):
            raise SerializationError("'trace_id' must be a string")
        # Ops the router answers itself: liveness, routing introspection,
        # shard lifecycle administration, and the cluster-wide views that
        # span shards.
        if op == "ping":
            return messages.encode_response(payload={"pong": True}), trace_id
        if op == "route":
            return (
                messages.encode_response(
                    payload={"route": cluster.describe_route(client_id)}
                ),
                trace_id,
            )
        if op == "health":
            return (
                messages.encode_response(payload={"health": cluster.check_health()}),
                trace_id,
            )
        if op == "drain":
            shard = messages.validate_shard(op, request.get("shard"))
            return (
                messages.encode_response(payload={"drain": cluster.drain_shard(shard)}),
                trace_id,
            )
        if op == "rejoin":
            shard = messages.validate_shard(op, request.get("shard"))
            return (
                messages.encode_response(
                    payload={"rejoin": cluster.rejoin_shard(shard)}
                ),
                trace_id,
            )
        if op == "list":
            return (
                messages.encode_response(payload={"programs": cluster.programs()}),
                trace_id,
            )
        if op == "stats":
            return (
                messages.encode_response(payload={"stats": cluster.stats()}),
                trace_id,
            )
        if op == "metrics":
            # The cluster-wide snapshot: every live shard's registry plus the
            # router's own, aggregated (per-shard labeled series + summed
            # totals with percentiles recomputed from merged buckets).
            snapshots = cluster.shard_metrics()
            snapshots["router"] = telemetry.registry.snapshot()
            snapshot = aggregate_snapshots(snapshots)
            payload: Dict[str, Any] = {"metrics": snapshot}
            if request.get("format") == "prometheus":
                payload["prometheus"] = render_prometheus(snapshot)
            return messages.encode_response(payload=payload), trace_id
        if op == "trace":
            queried = request.get("trace_id")
            if not isinstance(queried, str):
                raise SerializationError("trace requests need a string 'trace_id'")
            parts = cluster.shard_traces(queried)
            parts.append(telemetry.trace_of(queried))
            return (
                messages.encode_response(payload={"trace": merge_traces(parts)}),
                trace_id,
            )
        if op == "slow":
            limit = request.get("limit")
            records = cluster.shard_slow(limit)
            records.extend(telemetry.slow(limit))
            records.sort(key=lambda r: r.get("ts", 0.0), reverse=True)
            if limit is not None:
                records = records[: max(int(limit), 0)]
            return messages.encode_response(payload={"slow": records}), trace_id
        # Everything else ("submit", "session") is forwarded verbatim to the
        # client's shard; the shard validates the message itself.  Both pass
        # per-client admission first — sessions are the *heaviest* op (key
        # import + persistence), so exempting them would leave the biggest
        # hole — and the router is the cheap place to say 429, before the
        # request ever crosses to a shard.
        if op in ("submit", "session") and trace_id is None:
            # Mint at the router for untraced clients: every request crossing
            # the cluster is correlatable even when the client is a five-line
            # script.  A string splice, not a re-encode — the payload may be
            # megabytes of ciphertext.
            trace_id = new_trace_id()
            text = messages.splice_field(text, "trace_id", trace_id)
        started = time.perf_counter()
        ledger = self.server.ledger
        if op in ("submit", "session") and ledger.enabled:
            admit_started = time.perf_counter()
            try:
                ledger.admit(client_id)  # raises QuotaExceededError (encoded above)
            except EvaError as exc:
                telemetry.inc("serving.router.throttled", client=client_id)
                # The handler's except path never saw the parsed request, so
                # carry the trace id on the exception — a throttled client
                # still gets a correlatable reply.
                exc.trace_id = trace_id
                raise
            telemetry.span(
                trace_id,
                "quota_admission",
                time.perf_counter() - admit_started,
                client=client_id,
            )
            try:
                reply = self._forward(text, request, client_id, trace_id)
            finally:
                ledger.release(client_id)
        else:
            reply = self._forward(text, request, client_id, trace_id)
        if op in ("submit", "session"):
            telemetry.finish(
                trace_id,
                time.perf_counter() - started,
                op=str(op),
                client=client_id,
                program=request.get("program"),
            )
            if request.get("trace"):
                reply = self._merge_reply_trace(reply, trace_id)
        return reply, trace_id

    def _forward(
        self,
        text: str,
        request: Dict[str, Any],
        client_id: str,
        trace_id: Optional[str],
    ) -> str:
        """Forward one line to the client's shard, timing the hop as a span."""
        cluster = self.server.cluster
        forward_started = time.perf_counter()
        reply = cluster._call(
            client_id, lambda upstream: upstream.roundtrip_raw(text)
        )
        self.server.telemetry.span(
            trace_id,
            "router_forward",
            time.perf_counter() - forward_started,
            client=client_id,
            op=request.get("op"),
        )
        self.server.telemetry.inc(
            "serving.router.forwarded", client=client_id, op=request.get("op")
        )
        return reply

    def _merge_reply_trace(self, reply: str, trace_id: Optional[str]) -> str:
        """Fold the router's spans into the trace object a shard echoed.

        Only runs for requests that asked for an echo (``"trace": true``), so
        the decode/re-encode cost is opt-in; untraced ciphertext replies are
        still relayed verbatim.
        """
        if not trace_id:
            return reply
        router_view = self.server.telemetry.trace_of(trace_id)
        if router_view is None:
            return reply
        try:
            message = json.loads(reply)
        except json.JSONDecodeError:
            return reply
        if not isinstance(message, dict):
            return reply
        merged = merge_traces([message.get("trace"), router_view])
        if merged is not None:
            message["trace"] = merged
        return json.dumps(message, separators=(",", ":")) + "\n"


class ClusterTcpServer(socketserver.ThreadingTCPServer):
    """Router front door of an :class:`~repro.serving.cluster.EvaCluster`.

    Owns the public listener; every framed request is forwarded to the shard
    its client consistent-hashes to.  The wire protocol is identical to
    :class:`EvaTcpServer`'s, plus the cluster admin ops: ``route`` (which
    shard/pid a client maps to), ``health`` (per-shard liveness), ``drain``
    and ``rejoin`` (shard lifecycle) — useful for chaos drills, rolling
    restarts, and smoke tests.

    When the cluster carries a :class:`~repro.serving.quotas.FairnessPolicy`
    (or one is passed explicitly), the router enforces per-client rate and
    in-flight quotas *before* forwarding: a throttled client gets a
    ``QuotaExceededError`` reply with ``retry_after`` and its request never
    costs a shard anything.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        cluster: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        fairness: Optional[FairnessPolicy] = None,
        slow_threshold: float = 1.0,
    ) -> None:
        self.cluster = cluster
        if fairness is None:
            fairness = getattr(cluster, "fairness", None)
        self.ledger = QuotaLedger(fairness)
        #: The router's own telemetry plane: forward/admission spans, router
        #: counters, and router-side slow-request detection (end-to-end
        #: latency as the client experienced it, including the shard hop).
        self.telemetry = Telemetry(slow_threshold=slow_threshold, shard="router")
        super().__init__((host, port), _RouterHandler)

    @property
    def address(self) -> Tuple[str, int]:
        return self.server_address[0], self.server_address[1]

    def start_background(self) -> threading.Thread:
        """Serve on a daemon thread; returns the (started) thread."""
        thread = threading.Thread(
            target=self.serve_forever, name="eva-cluster-router", daemon=True
        )
        thread.start()
        return thread


class ServingClient:
    """Minimal line-protocol client for :class:`EvaTcpServer` (and the router)."""

    def __init__(self, host: str, port: int, timeout: Optional[float] = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def roundtrip_raw(self, text: str) -> str:
        """Send one raw request line, return the raw reply line.

        Transport failures raise :class:`~repro.errors.TransportError` so
        routing layers can distinguish "the connection died" (fail over) from
        an application-level error reply (do not).
        """
        if not text.endswith("\n"):
            text += "\n"
        try:
            self._file.write(text.encode("utf-8"))
            self._file.flush()
            reply = self._file.readline()
        except OSError as exc:
            raise TransportError(f"connection to server lost: {exc}") from exc
        if not reply:
            raise TransportError("connection closed by server")
        return reply.decode("utf-8")

    def _roundtrip(self, line: str) -> Dict[str, Any]:
        response = messages.decode_response(self.roundtrip_raw(line))
        if not response.get("ok"):
            kind = response.get("kind", "ServingError")
            if kind == "QuotaExceededError":
                # The serving layer's 429: re-raise typed, with the server's
                # retry-after hint, so callers can back off instead of just
                # failing.  The echoed trace id rides along so a throttled
                # request stays correlatable.
                error = QuotaExceededError(
                    str(response.get("error")),
                    retry_after=float(response.get("retry_after", 0.0) or 0.0),
                )
                error.trace_id = response.get("trace_id")
                raise error
            raise ServingError(f"{kind}: {response.get('error')}")
        return response

    def submit(
        self,
        program: str,
        inputs: Dict[str, Any],
        client_id: str = "default",
        output_size: Optional[int] = None,
        trace: bool = False,
        trace_id: Optional[str] = None,
    ) -> Dict[str, np.ndarray]:
        """Execute ``program`` on the server; returns decrypted outputs.

        With ``trace=True`` the client mints a trace id (unless the caller
        supplies one — e.g. a retry loop keeping one id across attempts), the
        server records a span per stage, and the reply echoes them —
        available afterwards as ``self.last_trace`` (``submit --trace``
        prints this breakdown).
        """
        if trace and trace_id is None:
            trace_id = new_trace_id()
        response = self._roundtrip(
            messages.encode_request(
                "submit",
                program=program,
                inputs=inputs,
                client_id=client_id,
                output_size=output_size,
                trace_id=trace_id,
                trace=trace,
            )
        )
        self.last_stats: Dict[str, Any] = response.get("stats", {})
        self.last_trace: Optional[Dict[str, Any]] = response.get("trace")
        return response.get("outputs", {})

    def create_session(self, program: str, client_kit: Any, client_id: Optional[str] = None) -> Dict[str, Any]:
        """Register ``client_kit``'s evaluation keys for ``program`` on the server.

        ``client_kit`` is a :class:`repro.api.ClientKit` (anything exposing
        ``export_evaluation_keys()``); the secret key never leaves the client.
        """
        response = self._roundtrip(
            messages.encode_request(
                "session",
                program=program,
                client_id=client_id or getattr(client_kit, "client_id", "default"),
                evaluation_keys=client_kit.export_evaluation_keys(),
            )
        )
        return response.get("session", {})

    def submit_bundle(
        self,
        program: str,
        bundle_wire: Dict[str, Any],
        client_id: str = "default",
        trace: bool = False,
        trace_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Submit a wire-encoded cipher bundle; returns wire-encoded ciphertext outputs."""
        if trace and trace_id is None:
            trace_id = new_trace_id()
        response = self._roundtrip(
            messages.encode_request(
                "submit",
                program=program,
                bundle=bundle_wire,
                client_id=client_id,
                trace_id=trace_id,
                trace=trace,
            )
        )
        self.last_stats = response.get("stats", {})
        self.last_trace = response.get("trace")
        return response.get("encrypted_outputs", {})

    def submit_encrypted(
        self,
        program: str,
        client_kit: Any,
        inputs: Dict[str, Any],
        client_id: Optional[str] = None,
        trace: bool = False,
    ) -> Dict[str, np.ndarray]:
        """End-to-end encrypted request: encrypt, submit, decrypt — keys stay local.

        The kit encrypts ``inputs`` into a bundle, the server evaluates it
        blindly under the session created with :meth:`create_session`, and the
        ciphertext reply is decrypted here with the kit's secret key.
        ``client_id`` must match the one the session was created under
        (defaults to the kit's own id, as :meth:`create_session` does).
        """
        bundle = client_kit.encrypt_inputs(inputs)
        reply = self.submit_bundle(
            program,
            client_kit.bundle_to_wire(bundle),
            client_id=client_id or getattr(client_kit, "client_id", "default"),
            trace=trace,
        )
        return client_kit.decrypt_outputs(client_kit.outputs_from_wire(reply))

    def programs(self) -> list:
        return self._roundtrip(messages.encode_request("list")).get("programs", [])

    def route(self, client_id: str = "default") -> Dict[str, Any]:
        """Which shard serves ``client_id`` (cluster servers only)."""
        return self._roundtrip(
            messages.encode_request("route", client_id=client_id)
        ).get("route", {})

    def health(self) -> list:
        """Per-shard health report (single servers report one live shard)."""
        return self._roundtrip(messages.encode_request("health")).get("health", [])

    def drain(self, shard: int) -> Dict[str, Any]:
        """Take ``shard`` out of the ring without stopping it (cluster only)."""
        return self._roundtrip(
            messages.encode_request("drain", shard=shard)
        ).get("drain", {})

    def rejoin(self, shard: int) -> Dict[str, Any]:
        """Return ``shard`` to the ring, respawning it if dead (cluster only)."""
        return self._roundtrip(
            messages.encode_request("rejoin", shard=shard)
        ).get("rejoin", {})

    def stats(self) -> Dict[str, Any]:
        return self._roundtrip(messages.encode_request("stats")).get("stats", {})

    def metrics(self, prometheus: bool = False) -> Dict[str, Any]:
        """The server's unified metrics snapshot (cluster-aggregated on routers).

        With ``prometheus=True`` the reply additionally carries the rendered
        text exposition under ``"prometheus"``.
        """
        response = self._roundtrip(
            messages.encode_request(
                "metrics", fmt="prometheus" if prometheus else None
            )
        )
        result = {"metrics": response.get("metrics", {})}
        if "prometheus" in response:
            result["prometheus"] = response["prometheus"]
        return result

    def trace_of(self, trace_id: str) -> Optional[Dict[str, Any]]:
        """The recorded per-stage spans of one trace id (None when unknown)."""
        return self._roundtrip(
            messages.encode_request("trace", trace_id=trace_id)
        ).get("trace")

    def slow(self, limit: Optional[int] = None) -> list:
        """Recent slow requests, newest first (cluster-merged on routers)."""
        return self._roundtrip(
            messages.encode_request("slow", limit=limit)
        ).get("slow", [])

    def ping(self) -> bool:
        return bool(self._roundtrip(messages.encode_request("ping")).get("pong"))

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __del__(self) -> None:  # release the socket when a cached client dies
        try:
            self.close()
        except Exception:
            pass

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()
