"""TCP front-ends for single-process and sharded (cluster) serving.

Every listener speaks **two framings on the same socket**:

* newline-delimited JSON messages (see
  :mod:`repro.core.serialization.messages`) — the original, human-readable
  wire that a five-line script can speak;
* the binary frame protocol of :mod:`repro.wire` — a magic byte, a frame
  type, a varint length, and a payload that carries a small JSON envelope
  plus raw (not base64) cipher/key blobs.

The framing of each message is sniffed from its first byte (``0xEB`` can
never begin a JSON line), and replies always use the framing of the request
they answer — so legacy JSON clients keep working unchanged against a
binary-capable listener, and one router can serve both kinds concurrently.
Binary framing is negotiated by a JSON ``hello`` exchange (see
:mod:`repro.wire.protocol`); multi-megabyte evaluation-key sets stream as
bounded CHUNK frames instead of one monolithic message.

Each connection may pipeline any number of requests; responses come back in
order.  Connection threads block on the server's futures, so concurrency
across connections is bounded by the job engine, not by the socket layer.

Two servers share the wire formats:

* :class:`EvaTcpServer` wraps one in-process
  :class:`~repro.serving.server.EvaServer` (the single-process mode).
* :class:`ClusterTcpServer` is the *router* of an
  :class:`~repro.serving.cluster.EvaCluster`: it owns the public listener and
  forwards each request to the shard its ``client_id`` consistent-hashes to,
  relaying the reply verbatim — binary frames are forwarded without
  re-encoding their blob bytes (the router reads only the envelope).
  Clients cannot tell the difference — :class:`ServingClient` works against
  both.
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import threading
import time
from contextlib import nullcontext
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.serialization import messages
from ..core.serialization.packing import raw_blobs
from ..errors import (
    DeadlineInfeasibleError,
    EvaError,
    QuotaExceededError,
    SerializationError,
    ServingError,
    TransportError,
)
from ..wire import (
    FRAME_CHUNK,
    FRAME_REQUEST,
    FRAME_RESPONSE,
    MAGIC,
    STREAM_THRESHOLD_BYTES,
    UPLOAD_KEY,
    WIRE_MODES,
    UploadState,
    build_hello,
    decode_message,
    encode_blob_record,
    encode_envelope,
    encode_message,
    hello_ack,
    iter_chunks,
    parse_hello_reply,
    peek_envelope,
    read_frame,
    rehydrate,
    replace_envelope,
    split_message,
    write_frame,
)
from .quotas import FairnessPolicy, QuotaLedger
from .server import EvaServer
from .telemetry import (
    Telemetry,
    aggregate_snapshots,
    merge_traces,
    new_trace_id,
    render_prometheus,
)

_Bytes = Union[bytes, bytearray, memoryview]


class _ConnectionState:
    """Per-connection bookkeeping: framing, byte counters, upload assembly."""

    __slots__ = (
        "peer",
        "opened_at",
        "protocol",
        "negotiated",
        "bytes_sent",
        "bytes_received",
        "requests",
        "uploads",
    )

    def __init__(self, peer: str) -> None:
        self.peer = peer
        self.opened_at = time.time()
        #: The connection's current framing: ``json`` until a binary frame
        #: arrives or a hello negotiates binary.
        self.protocol = "json"
        self.negotiated = False
        self.bytes_sent = 0
        self.bytes_received = 0
        self.requests = 0
        self.uploads = UploadState()

    def info(self) -> Dict[str, Any]:
        """Wire-friendly connection descriptor for ``cluster stats``."""
        return {
            "peer": self.peer,
            "protocol": self.protocol,
            "negotiated": self.negotiated,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "requests": self.requests,
            "opened_at": round(self.opened_at, 3),
        }


class _WireListenerMixin:
    """Connection registry + wire policy shared by both TCP servers."""

    def _init_wire(self, wire_policy: str) -> None:
        if wire_policy not in WIRE_MODES:
            raise ServingError(
                f"unknown wire policy {wire_policy!r}; expected one of {WIRE_MODES}"
            )
        self.wire_policy = wire_policy
        self._conn_lock = threading.Lock()
        self._conn_seq = 0
        self._connections: Dict[int, _ConnectionState] = {}

    def _register_connection(self, state: _ConnectionState) -> int:
        with self._conn_lock:
            self._conn_seq += 1
            key = self._conn_seq
            self._connections[key] = state
        return key

    def _unregister_connection(self, key: int) -> None:
        with self._conn_lock:
            self._connections.pop(key, None)

    def connection_infos(self) -> List[Dict[str, Any]]:
        """Live connections with their negotiated protocol and byte counters
        (the ``stats`` op's ``connections`` field)."""
        with self._conn_lock:
            states = list(self._connections.values())
        return [state.info() for state in states]


class _WireHandler(socketserver.StreamRequestHandler):
    """Dual-protocol connection machinery shared by shard and router handlers.

    The handle loop sniffs each message's framing from its first byte and
    hands it to ``_handle_json`` / ``_handle_frame`` (subclass dispatch).
    Frame-*payload* errors are answered with an error reply (the stream is
    still synchronized at the next frame boundary); frame-*header* errors
    and undecodable lines drop the connection, because nothing downstream of
    a desynchronized stream can be trusted.
    """

    #: Frames are written piecewise (header, envelope, blob slices); buffer
    #: the write side so one reply leaves as coalesced segments instead of a
    #: syscall (and packet) per part, and disable Nagle so the final partial
    #: segment of a reply is never held back waiting for a delayed ACK.
    wbufsize = 64 * 1024
    disable_nagle_algorithm = True

    def _telemetry(self) -> Telemetry:
        raise NotImplementedError

    def setup(self) -> None:
        """Register the connection and its negotiation state with the server."""
        super().setup()
        host, port = self.client_address[:2]
        self.conn = _ConnectionState(f"{host}:{port}")
        self._conn_key = self.server._register_connection(self.conn)

    def finish(self) -> None:
        """Unregister the connection on teardown."""
        self.server._unregister_connection(self._conn_key)
        super().finish()

    def handle(self) -> None:
        """Serve one connection: sniff JSON vs binary per message, reply in kind."""
        while True:
            first = self.rfile.read(1)
            if not first:
                return
            if first[0] == MAGIC:
                try:
                    frame_type, payload, nbytes = read_frame(
                        self.rfile, first_byte=MAGIC
                    )
                except TransportError:
                    return  # broken framing: the stream cannot resync
                self.conn.protocol = "binary"
                self._count_received(nbytes, "binary")
                if not self._handle_frame(frame_type, payload):
                    return
            else:
                line = first + self.rfile.readline()
                self._count_received(len(line), "json")
                try:
                    text = line.decode("utf-8").strip()
                except UnicodeDecodeError:
                    return  # not JSON, not a frame: drop the connection
                if not text:
                    continue
                self._handle_json(text)

    # -- byte accounting -----------------------------------------------------------
    def _count_received(self, nbytes: int, protocol: str) -> None:
        self.conn.bytes_received += nbytes
        self._telemetry().inc("net.bytes_received", nbytes, protocol=protocol)

    def _count_sent(self, nbytes: int, protocol: str) -> None:
        self.conn.bytes_sent += nbytes
        self._telemetry().inc("net.bytes_sent", nbytes, protocol=protocol)

    # -- reply writers -------------------------------------------------------------
    def _send_json_dict(self, reply: Dict[str, Any]) -> None:
        data = (json.dumps(reply, separators=(",", ":")) + "\n").encode("utf-8")
        self.wfile.write(data)
        self.wfile.flush()
        self._count_sent(len(data), "json")

    def _send_json_text(self, text: str) -> None:
        if not text.endswith("\n"):
            text += "\n"
        data = text.encode("utf-8")
        self.wfile.write(data)
        self.wfile.flush()
        self._count_sent(len(data), "json")

    def _send_frame_parts(self, *parts: _Bytes) -> None:
        nbytes = write_frame(self.wfile, FRAME_RESPONSE, *parts)
        self.wfile.flush()
        self._count_sent(nbytes, "binary")

    def _send_frame_dict(self, reply: Dict[str, Any]) -> None:
        self._send_frame_parts(*encode_message(reply))

    # -- negotiation ---------------------------------------------------------------
    def _maybe_hello(self, request: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """Answer a wire-negotiation hello; None when this isn't one."""
        if request.get("op") != "hello":
            return None
        reply, negotiated = hello_ack(request, self.server.wire_policy)
        self.conn.protocol = negotiated
        self.conn.negotiated = negotiated == "binary"
        return reply


class _RequestHandler(_WireHandler):
    """One shard/single-server connection: requests in, responses out."""

    server: "EvaTcpServer"

    def _telemetry(self) -> Telemetry:
        return self.server.eva_server.telemetry

    def _handle_json(self, text: str) -> None:
        # Captured as soon as the request parses, so even an error reply
        # echoes the trace id the request carried (quota rejections
        # included — the client can still look the trace up).
        trace_id: Optional[str] = None
        try:
            try:
                parsed = json.loads(text)
            except json.JSONDecodeError as exc:
                raise SerializationError(f"malformed request JSON: {exc}") from exc
            if isinstance(parsed, dict):
                hello = self._maybe_hello(parsed)
                if hello is not None:
                    self._send_json_dict(hello)
                    return
            request = messages.validate_request(parsed)
            trace_id = request.get("trace_id")
            self.conn.requests += 1
            reply = self._dispatch(request, binary=False)
        except EvaError as error:
            reply = messages.build_error(error, trace_id=trace_id)
        except Exception as error:  # never let a request kill the connection
            reply = messages.build_error(ServingError(str(error)), trace_id=trace_id)
        self._send_json_dict(reply)

    def _handle_frame(self, frame_type: int, payload: bytes) -> bool:
        if frame_type == FRAME_CHUNK:
            # One slice of a streaming upload; never answered individually.
            # Malformed chunks poison the upload and are reported on the
            # request that references it.
            try:
                envelope, blobs = decode_message(payload)
                self.conn.uploads.add_chunk(envelope, blobs[0] if blobs else b"")
            except TransportError:
                return False
            return True
        trace_id: Optional[str] = None
        try:
            if frame_type != FRAME_REQUEST:
                raise TransportError(
                    f"clients send request frames, got frame type {frame_type:#x}"
                )
            envelope, blobs = decode_message(payload)
            upload_id = envelope.pop(UPLOAD_KEY, None)
            if upload_id is not None:
                blobs = self.conn.uploads.finish(upload_id)
            hello = self._maybe_hello(envelope)
            if hello is not None:
                self._send_frame_dict(hello)
                return True
            request = messages.validate_request(rehydrate(envelope, blobs))
            trace_id = request.get("trace_id")
            self.conn.requests += 1
            # Raw-blob mode for the whole dispatch: everything packed on the
            # way out (ciphertext outputs, packed vectors) skips base64 and is
            # lifted into binary blob records by the frame encoder.
            with raw_blobs():
                reply = self._dispatch(request, binary=True)
                self._send_frame_dict(reply)
            return True
        except EvaError as error:
            reply = messages.build_error(error, trace_id=trace_id)
        except Exception as error:  # never let a request kill the connection
            reply = messages.build_error(ServingError(str(error)), trace_id=trace_id)
        self._send_frame_dict(reply)
        return True

    def _dispatch(self, request: Dict[str, Any], binary: bool) -> Dict[str, Any]:
        eva = self.server.eva_server
        op = request["op"]
        if op == "ping":
            return messages.build_response(payload={"pong": True})
        if op == "list":
            return messages.build_response(payload={"programs": eva.programs()})
        if op == "stats":
            stats = dict(eva.stats())
            stats["connections"] = self.server.connection_infos()
            return messages.build_response(payload={"stats": stats})
        if op == "metrics":
            snapshot = eva.metrics_snapshot()
            payload: Dict[str, Any] = {"metrics": snapshot}
            if request.get("format") == "prometheus":
                payload["prometheus"] = render_prometheus(snapshot)
            return messages.build_response(payload=payload)
        if op == "trace":
            return messages.build_response(
                payload={"trace": eva.telemetry.trace_of(request["trace_id"])}
            )
        if op == "slow":
            return messages.build_response(
                payload={"slow": eva.telemetry.slow(request.get("limit"))}
            )
        if op == "health":
            return messages.build_response(
                payload={
                    "health": [
                        {
                            "index": 0,
                            "status": "live",
                            "alive": True,
                            "mode": "single-process",
                        }
                    ]
                }
            )
        if op in ("route", "drain", "rejoin", "join"):
            raise ServingError(
                f"{op} is a cluster operation; this is a single-process server"
            )
        started = time.perf_counter()
        trace_id = request.get("trace_id")
        client_id = request.get("client_id", "default")
        program = request.get("program")
        if op == "session":
            session = eva.create_session(
                request["program"],
                client_id,
                request["evaluation_keys"],
            )
            reply = messages.build_response(payload={"session": session})
            eva.telemetry.finish(
                trace_id,
                time.perf_counter() - started,
                op="session",
                client=client_id,
                program=program,
            )
            return reply
        if "bundle" in request:
            name = request["program"]
            response = eva.request_encrypted(
                name, request["bundle"], client_id=client_id, trace_id=trace_id,
                deadline_ms=request.get("deadline_ms"),
                slo_class=request.get("slo_class"),
            )
            # Encode the ciphertext reply with the session context the worker
            # evaluated under (carried on the response, so an eviction between
            # evaluation and encoding cannot fail a completed request); the
            # server never decrypts — only the submitting client can.
            encode_started = time.perf_counter()
            reply = messages.build_response(
                stats=response.stats_dict(),
                payload={"encrypted_outputs": response.to_wire()},
            )
            # The transport owns the output handles once encoded.
            response.release()
            eva.telemetry.span(
                trace_id,
                "serialize_reply",
                time.perf_counter() - encode_started,
            )
            return self._finish_submit(request, reply, started, client_id, program)
        response = eva.request(
            request["program"],
            request["inputs"],
            client_id=client_id,
            output_size=request.get("output_size"),
            trace_id=trace_id,
            deadline_ms=request.get("deadline_ms"),
            slo_class=request.get("slo_class"),
        )
        encode_started = time.perf_counter()
        reply = messages.build_response(
            outputs=response.outputs,
            stats=response.stats_dict(),
            pack_outputs=binary,
        )
        eva.telemetry.span(
            trace_id, "serialize_reply", time.perf_counter() - encode_started
        )
        return self._finish_submit(request, reply, started, client_id, program)

    def _finish_submit(
        self,
        request: Dict[str, Any],
        reply: Dict[str, Any],
        started: float,
        client_id: str,
        program: Optional[str],
    ) -> Dict[str, Any]:
        """Close out one submit: total-latency metrics, slow log, trace echo."""
        eva = self.server.eva_server
        trace_id = request.get("trace_id")
        eva.telemetry.finish(
            trace_id,
            time.perf_counter() - started,
            op="submit",
            client=client_id,
            program=program,
        )
        if trace_id and request.get("trace"):
            trace = eva.telemetry.trace_of(trace_id)
            if trace is not None:
                reply["trace"] = trace
        return reply


class ThreadedEvaTcpServer(_WireListenerMixin, socketserver.ThreadingTCPServer):
    """Threaded TCP server wrapping an :class:`EvaServer`.

    One OS thread per connection — the original front door, kept as the
    fallback behind the :func:`EvaTcpServer` factory (the asyncio listener in
    :mod:`.aionet` is the default).

    ``wire_policy`` governs hello negotiation: ``auto``/``binary`` grant
    binary framing to clients that ask for it, ``json`` pins the listener to
    JSON (binary hellos negotiate down; legacy clients are unaffected either
    way).
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        eva_server: EvaServer,
        host: str = "127.0.0.1",
        port: int = 0,
        wire_policy: str = "auto",
    ) -> None:
        self.eva_server = eva_server
        self._init_wire(wire_policy)
        super().__init__((host, port), _RequestHandler)

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — useful after binding port 0."""
        return self.server_address[0], self.server_address[1]

    def start_background(self) -> threading.Thread:
        """Serve on a daemon thread; returns the (started) thread."""
        thread = threading.Thread(
            target=self.serve_forever, name="eva-tcp-server", daemon=True
        )
        thread.start()
        return thread


class _RouterHandler(_WireHandler):
    """One router connection: route each request to its client's shard.

    Forwarding goes through the cluster's own request plumbing
    (:meth:`EvaCluster._call`), which keeps one upstream connection per
    (handler thread, shard) — so pipelined requests keep their ordering per
    shard and the router adds no per-request connect cost — and already
    implements failover: a dead shard leaves the ring and the request retries
    on the client's new home shard, safe because serving requests are pure
    evaluations.

    Binary requests are forwarded as *passthrough*: the router decodes only
    the envelope (op, client, trace id) and relays the blob bytes untouched —
    splicing a minted ``trace_id`` re-encodes the tiny envelope field, never
    the megabytes of ciphertext behind it.  CHUNK frames of a streaming
    upload are relayed to the client's shard without any reply.
    """

    server: "ClusterTcpServer"

    def _telemetry(self) -> Telemetry:
        return self.server.telemetry

    def _handle_json(self, text: str) -> None:
        trace_id: Optional[str] = None
        try:
            try:
                request = json.loads(text)
            except json.JSONDecodeError as exc:
                raise SerializationError(f"malformed request JSON: {exc}") from exc
            if not isinstance(request, dict):
                raise SerializationError("request must be a JSON object")
            hello = self._maybe_hello(request)
            if hello is not None:
                self._send_json_dict(hello)
                return
            trace_id = self._request_trace_id(request)
            self.conn.requests += 1
            local = self._local_reply(request)
            if local is not None:
                self._send_json_dict(local)
                return
            # Forwarded (submit/session/unknown): mint a trace id for
            # untraced clients — a string splice, not a re-encode; the
            # payload may be megabytes of ciphertext.
            op = str(request.get("op"))
            client_id = str(request.get("client_id", "default"))
            if op in ("submit", "session") and trace_id is None:
                trace_id = new_trace_id()
                text = messages.splice_field(text, "trace_id", trace_id)
            reply = self._admitted_forward(
                op,
                client_id,
                trace_id,
                request.get("program"),
                lambda line=text: self.server.cluster._call(
                    client_id, lambda upstream: upstream.roundtrip_raw(line)
                ),
            )
            if op in ("submit", "session") and request.get("trace"):
                reply = self._merge_reply_trace(reply, trace_id)
            self._send_json_text(reply)
            return
        except EvaError as error:
            reply_dict = messages.build_error(
                error, trace_id=getattr(error, "trace_id", None) or trace_id
            )
        except Exception as error:  # never let a request kill the connection
            reply_dict = messages.build_error(
                ServingError(str(error)), trace_id=trace_id
            )
        self._send_json_dict(reply_dict)

    def _handle_frame(self, frame_type: int, payload: bytes) -> bool:
        cluster = self.server.cluster
        if frame_type == FRAME_CHUNK:
            # Relay the chunk to the client's shard verbatim; chunks are
            # never answered, so routing failures surface on the final
            # request that references the upload.
            try:
                envelope, _end = peek_envelope(payload)
            except TransportError:
                return False
            client_id = str(envelope.get("client_id", "default"))
            try:
                cluster._call(
                    client_id,
                    lambda upstream: upstream.send_frame(FRAME_CHUNK, payload),
                )
            except Exception:
                pass  # the referencing request reports the failed upload
            return True
        trace_id: Optional[str] = None
        try:
            if frame_type != FRAME_REQUEST:
                raise TransportError(
                    f"clients send request frames, got frame type {frame_type:#x}"
                )
            envelope, _end = peek_envelope(payload)
            hello = self._maybe_hello(envelope)
            if hello is not None:
                self._send_frame_dict(hello)
                return True
            trace_id = self._request_trace_id(envelope)
            self.conn.requests += 1
            local = self._local_reply(envelope)
            if local is not None:
                with raw_blobs():
                    self._send_frame_dict(local)
                return True
            op = str(envelope.get("op"))
            client_id = str(envelope.get("client_id", "default"))
            if op in ("submit", "session") and trace_id is None:
                # Mint at the router for untraced clients; re-encodes only
                # the envelope field, the blob records are relayed as one
                # slice of the original payload.
                trace_id = new_trace_id()
                envelope["trace_id"] = trace_id
                parts: Sequence[_Bytes] = replace_envelope(payload, envelope)
            else:
                parts = (payload,)
            reply_payload = self._admitted_forward(
                op,
                client_id,
                trace_id,
                envelope.get("program"),
                lambda: cluster._call(
                    client_id, lambda upstream: upstream.roundtrip_frame(parts)
                ),
            )
            reply_parts: Sequence[_Bytes] = (reply_payload,)
            if op in ("submit", "session") and envelope.get("trace"):
                reply_parts = self._merge_frame_trace(reply_payload, trace_id)
            self._send_frame_parts(*reply_parts)
            return True
        except EvaError as error:
            reply_dict = messages.build_error(
                error, trace_id=getattr(error, "trace_id", None) or trace_id
            )
        except Exception as error:  # never let a request kill the connection
            reply_dict = messages.build_error(
                ServingError(str(error)), trace_id=trace_id
            )
        self._send_frame_dict(reply_dict)
        return True

    @staticmethod
    def _request_trace_id(request: Dict[str, Any]) -> Optional[str]:
        trace_id = request.get("trace_id")
        if trace_id is not None and not isinstance(trace_id, str):
            raise SerializationError("'trace_id' must be a string")
        return trace_id

    def _local_reply(self, request: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """Ops the router answers itself, in either framing: liveness,
        routing introspection, shard lifecycle administration, and the
        cluster-wide views that span shards.  None → forward to a shard."""
        cluster = self.server.cluster
        telemetry = self.server.telemetry
        op = request.get("op")
        client_id = str(request.get("client_id", "default"))
        if op == "ping":
            return messages.build_response(payload={"pong": True})
        if op == "route":
            return messages.build_response(
                payload={"route": cluster.describe_route(client_id)}
            )
        if op == "health":
            return messages.build_response(payload={"health": cluster.check_health()})
        if op == "drain":
            shard = messages.validate_shard(op, request.get("shard"))
            return messages.build_response(
                payload={"drain": cluster.drain_shard(shard)}
            )
        if op == "rejoin":
            shard = messages.validate_shard(op, request.get("shard"))
            return messages.build_response(
                payload={"rejoin": cluster.rejoin_shard(shard)}
            )
        if op == "join":
            return messages.build_response(
                payload={
                    "join": cluster.attach_shard(
                        str(request["host"]), int(request["port"])
                    )
                }
            )
        if op == "list":
            return messages.build_response(payload={"programs": cluster.programs()})
        if op == "stats":
            stats = dict(cluster.stats())
            stats["connections"] = self.server.connection_infos()
            return messages.build_response(payload={"stats": stats})
        if op == "metrics":
            # The cluster-wide snapshot: every live shard's registry plus the
            # router's own, aggregated (per-shard labeled series + summed
            # totals with percentiles recomputed from merged buckets).
            snapshots = cluster.shard_metrics()
            snapshots["cluster"] = cluster.telemetry.registry.snapshot()
            snapshots["router"] = telemetry.registry.snapshot()
            snapshot = aggregate_snapshots(snapshots)
            payload: Dict[str, Any] = {"metrics": snapshot}
            if request.get("format") == "prometheus":
                payload["prometheus"] = render_prometheus(snapshot)
            return messages.build_response(payload=payload)
        if op == "trace":
            queried = request.get("trace_id")
            if not isinstance(queried, str):
                raise SerializationError("trace requests need a string 'trace_id'")
            parts = cluster.shard_traces(queried)
            parts.append(telemetry.trace_of(queried))
            return messages.build_response(payload={"trace": merge_traces(parts)})
        if op == "slow":
            limit = request.get("limit")
            records = cluster.shard_slow(limit)
            records.extend(telemetry.slow(limit))
            records.sort(key=lambda r: r.get("ts", 0.0), reverse=True)
            if limit is not None:
                records = records[: max(int(limit), 0)]
            return messages.build_response(payload={"slow": records})
        return None

    def _admitted_forward(
        self,
        op: str,
        client_id: str,
        trace_id: Optional[str],
        program: Any,
        forward: Callable[[], Any],
    ) -> Any:
        """Quota admission + telemetry around one forwarded request.

        submit/session pass per-client admission first — sessions are the
        *heaviest* op (key import + persistence), so exempting them would
        leave the biggest hole — and the router is the cheap place to say
        429, before the request ever costs a shard anything.
        """
        telemetry = self.server.telemetry
        ledger = self.server.ledger
        started = time.perf_counter()
        if op in ("submit", "session") and ledger.enabled:
            admit_started = time.perf_counter()
            try:
                ledger.admit(client_id)  # raises QuotaExceededError
            except EvaError as exc:
                telemetry.inc("serving.router.throttled", client=client_id)
                # The handler's except path never saw the parsed request, so
                # carry the trace id on the exception — a throttled client
                # still gets a correlatable reply.
                exc.trace_id = trace_id
                raise
            telemetry.span(
                trace_id,
                "quota_admission",
                time.perf_counter() - admit_started,
                client=client_id,
            )
            try:
                reply = self._timed_forward(op, client_id, trace_id, forward)
            finally:
                ledger.release(client_id)
        else:
            reply = self._timed_forward(op, client_id, trace_id, forward)
        if op in ("submit", "session"):
            telemetry.finish(
                trace_id,
                time.perf_counter() - started,
                op=op,
                client=client_id,
                program=program,
            )
        return reply

    def _timed_forward(
        self,
        op: str,
        client_id: str,
        trace_id: Optional[str],
        forward: Callable[[], Any],
    ) -> Any:
        """Run one shard hop, timing it as a span."""
        forward_started = time.perf_counter()
        reply = forward()
        self.server.telemetry.span(
            trace_id,
            "router_forward",
            time.perf_counter() - forward_started,
            client=client_id,
            op=op,
        )
        self.server.telemetry.inc(
            "serving.router.forwarded", client=client_id, op=op
        )
        return reply

    def _merge_reply_trace(self, reply: str, trace_id: Optional[str]) -> str:
        """Fold the router's spans into the trace object a shard echoed.

        Only runs for requests that asked for an echo (``"trace": true``), so
        the decode/re-encode cost is opt-in; untraced ciphertext replies are
        still relayed verbatim.
        """
        if not trace_id:
            return reply
        router_view = self.server.telemetry.trace_of(trace_id)
        if router_view is None:
            return reply
        try:
            message = json.loads(reply)
        except json.JSONDecodeError:
            return reply
        if not isinstance(message, dict):
            return reply
        merged = merge_traces([message.get("trace"), router_view])
        if merged is not None:
            message["trace"] = merged
        return json.dumps(message, separators=(",", ":")) + "\n"

    def _merge_frame_trace(
        self, reply_payload: _Bytes, trace_id: Optional[str]
    ) -> Sequence[_Bytes]:
        """Binary variant of :meth:`_merge_reply_trace`: rewrites only the
        reply's envelope field; ciphertext blob records are relayed as one
        slice of the original payload."""
        if not trace_id:
            return (reply_payload,)
        router_view = self.server.telemetry.trace_of(trace_id)
        if router_view is None:
            return (reply_payload,)
        try:
            envelope, _end = peek_envelope(reply_payload)
        except TransportError:
            return (reply_payload,)
        merged = merge_traces([envelope.get("trace"), router_view])
        if merged is None:
            return (reply_payload,)
        envelope["trace"] = merged
        return replace_envelope(reply_payload, envelope)


class ThreadedClusterTcpServer(_WireListenerMixin, socketserver.ThreadingTCPServer):
    """Threaded router front door of an :class:`~repro.serving.cluster.EvaCluster`.

    Owns the public listener; every request is forwarded to the shard its
    client consistent-hashes to.  The wire protocols are identical to
    :class:`EvaTcpServer`'s — JSON lines and binary frames on one socket,
    governed by the same ``wire_policy`` — plus the cluster admin ops:
    ``route`` (which shard/pid a client maps to), ``health`` (per-shard
    liveness), ``drain`` and ``rejoin`` (shard lifecycle) — useful for chaos
    drills, rolling restarts, and smoke tests.

    When the cluster carries a :class:`~repro.serving.quotas.FairnessPolicy`
    (or one is passed explicitly), the router enforces per-client rate and
    in-flight quotas *before* forwarding: a throttled client gets a
    ``QuotaExceededError`` reply with ``retry_after`` and its request never
    costs a shard anything.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        cluster: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        fairness: Optional[FairnessPolicy] = None,
        slow_threshold: float = 1.0,
        wire_policy: str = "auto",
    ) -> None:
        self.cluster = cluster
        if fairness is None:
            fairness = getattr(cluster, "fairness", None)
        self.ledger = QuotaLedger(fairness)
        #: The router's own telemetry plane: forward/admission spans, router
        #: counters, and router-side slow-request detection (end-to-end
        #: latency as the client experienced it, including the shard hop).
        self.telemetry = Telemetry(slow_threshold=slow_threshold, shard="router")
        self._init_wire(wire_policy)
        super().__init__((host, port), _RouterHandler)

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — useful after binding port 0."""
        return self.server_address[0], self.server_address[1]

    def start_background(self) -> threading.Thread:
        """Serve on a daemon thread; returns the (started) thread."""
        thread = threading.Thread(
            target=self.serve_forever, name="eva-cluster-router", daemon=True
        )
        thread.start()
        return thread


#: Listener transport used when neither the ``frontdoor`` argument nor the
#: ``REPRO_FRONTDOOR`` environment variable says otherwise.  The asyncio
#: front door holds thousands of idle connections on one event loop; the
#: threaded transport (one OS thread per connection) remains as a fallback.
DEFAULT_FRONTDOOR = "async"

FRONTDOOR_MODES = ("async", "threaded")


def _frontdoor_mode(frontdoor: Optional[str]) -> str:
    mode = frontdoor or os.environ.get("REPRO_FRONTDOOR") or DEFAULT_FRONTDOOR
    if mode not in FRONTDOOR_MODES:
        raise ServingError(
            f"unknown front door {mode!r}; expected one of {FRONTDOOR_MODES}"
        )
    return mode


def EvaTcpServer(
    eva_server: EvaServer,
    host: str = "127.0.0.1",
    port: int = 0,
    wire_policy: str = "auto",
    frontdoor: Optional[str] = None,
):
    """Build the TCP front door for one :class:`EvaServer`.

    Returns the asyncio listener by default, or the threaded one when
    ``frontdoor="threaded"`` (or ``REPRO_FRONTDOOR=threaded``).  Both speak
    identical wire protocols and expose the same surface (``address``,
    ``start_background``, ``serve_forever``, ``shutdown``, ``server_close``,
    ``connection_infos``), so callers never need to know which transport
    they got.
    """
    if _frontdoor_mode(frontdoor) == "threaded":
        return ThreadedEvaTcpServer(
            eva_server, host=host, port=port, wire_policy=wire_policy
        )
    from .aionet import AsyncEvaTcpServer

    return AsyncEvaTcpServer(eva_server, host=host, port=port, wire_policy=wire_policy)


def ClusterTcpServer(
    cluster: Any,
    host: str = "127.0.0.1",
    port: int = 0,
    fairness: Optional[FairnessPolicy] = None,
    slow_threshold: float = 1.0,
    wire_policy: str = "auto",
    frontdoor: Optional[str] = None,
):
    """Build the router front door of an :class:`~repro.serving.cluster.EvaCluster`.

    Same transport selection as :func:`EvaTcpServer`: asyncio by default,
    ``frontdoor="threaded"`` (or ``REPRO_FRONTDOOR=threaded``) for the
    thread-per-connection fallback.
    """
    if _frontdoor_mode(frontdoor) == "threaded":
        return ThreadedClusterTcpServer(
            cluster,
            host=host,
            port=port,
            fairness=fairness,
            slow_threshold=slow_threshold,
            wire_policy=wire_policy,
        )
    from .aionet import AsyncClusterTcpServer

    return AsyncClusterTcpServer(
        cluster,
        host=host,
        port=port,
        fairness=fairness,
        slow_threshold=slow_threshold,
        wire_policy=wire_policy,
    )


class ServingClient:
    """Dual-protocol client for :class:`EvaTcpServer` (and the router).

    ``wire`` selects the framing: ``auto`` (default) negotiates the binary
    frame protocol with a hello exchange and falls back to JSON lines when
    the server is legacy or pinned; ``binary`` demands frames (raising
    :class:`~repro.errors.ServingError` when refused); ``json`` skips
    negotiation entirely and speaks the original line protocol.  The
    negotiated result is ``self.protocol``; ``bytes_sent``/``bytes_received``
    count the traffic on this connection.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = 30.0,
        wire: str = "auto",
    ) -> None:
        if wire not in WIRE_MODES:
            raise ServingError(
                f"unknown wire mode {wire!r}; expected one of {WIRE_MODES}"
            )
        self.wire_mode = wire
        self.protocol = "json"
        self.protocol_version: Optional[int] = None
        self.bytes_sent = 0
        self.bytes_received = 0
        self._upload_seq = 0
        self._sock = socket.create_connection((host, port), timeout=timeout)
        # A request's final partial segment must never wait on a delayed ACK.
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._file = self._sock.makefile("rwb")
        if wire != "json":
            self._negotiate(wire)

    # -- transport ----------------------------------------------------------------
    def _negotiate(self, mode: str) -> None:
        """The hello exchange: a JSON line even legacy servers can answer."""
        line = json.dumps(build_hello(mode), separators=(",", ":")) + "\n"
        raw = self.roundtrip_raw(line)
        try:
            reply = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise TransportError(f"malformed hello reply: {exc}") from exc
        if not isinstance(reply, dict):
            raise TransportError("hello reply must be a JSON object")
        self.protocol, self.protocol_version = parse_hello_reply(reply, mode)

    def roundtrip_raw(self, text: str) -> str:
        """Send one raw JSON request line, return the raw reply line.

        Transport failures raise :class:`~repro.errors.TransportError` so
        routing layers can distinguish "the connection died" (fail over) from
        an application-level error reply (do not).
        """
        if not text.endswith("\n"):
            text += "\n"
        data = text.encode("utf-8")
        try:
            self._file.write(data)
            self._file.flush()
            reply = self._file.readline()
        except OSError as exc:
            raise TransportError(f"connection to server lost: {exc}") from exc
        if not reply:
            raise TransportError("connection closed by server")
        self.bytes_sent += len(data)
        self.bytes_received += len(reply)
        return reply.decode("utf-8")

    def send_frame(self, frame_type: int, *parts: _Bytes) -> int:
        """Write one binary frame (no reply expected); returns bytes written."""
        try:
            written = write_frame(self._file, frame_type, *parts)
            self._file.flush()
        except OSError as exc:
            raise TransportError(f"connection to server lost: {exc}") from exc
        self.bytes_sent += written
        return written

    def _read_reply_unit(self) -> Tuple[str, Any]:
        """Read one reply in whichever framing it arrives: ("binary",
        payload bytes) or ("json", text)."""
        try:
            first = self._file.read(1)
        except OSError as exc:
            raise TransportError(f"connection to server lost: {exc}") from exc
        if not first:
            raise TransportError("connection closed by server")
        if first[0] == MAGIC:
            try:
                frame_type, payload, nbytes = read_frame(self._file, first_byte=MAGIC)
            except OSError as exc:
                raise TransportError(f"connection to server lost: {exc}") from exc
            self.bytes_received += nbytes
            if frame_type != FRAME_RESPONSE:
                raise TransportError(
                    f"expected a response frame, got frame type {frame_type:#x}"
                )
            return "binary", payload
        try:
            line = first + self._file.readline()
        except OSError as exc:
            raise TransportError(f"connection to server lost: {exc}") from exc
        self.bytes_received += len(line)
        return "json", line.decode("utf-8")

    def roundtrip_frame(self, parts: Sequence[_Bytes]) -> bytes:
        """Send one pre-encoded request frame, return the raw reply payload.

        The router's binary passthrough path: the caller relays the returned
        payload verbatim without decoding its blob records.
        """
        self.send_frame(FRAME_REQUEST, *parts)
        kind, payload = self._read_reply_unit()
        if kind != "binary":
            raise TransportError("shard answered a binary request with a JSON line")
        return payload

    # -- request plumbing ---------------------------------------------------------
    def _blob_context(self):
        """Raw (base64-free) packing while building binary-bound payloads."""
        return raw_blobs() if self.protocol == "binary" else nullcontext()

    def _binary_roundtrip(self, message: Dict[str, Any]) -> Dict[str, Any]:
        envelope, blobs = split_message(message)
        total = sum(len(blob) for blob in blobs)
        if blobs and total > STREAM_THRESHOLD_BYTES:
            # Stream the blobs as bounded CHUNK frames so a multi-MB key set
            # never head-of-line-blocks the connection behind one giant
            # frame; the final request frame references the upload.
            self._upload_seq += 1
            upload_id = f"up-{self._upload_seq}"
            client_id = str(message.get("client_id", "default"))
            for index, blob in enumerate(blobs):
                views = list(iter_chunks(blob))
                for position, view in enumerate(views):
                    chunk_envelope = {
                        "upload": upload_id,
                        "blob": index,
                        "eof": position == len(views) - 1,
                        "client_id": client_id,
                    }
                    self.send_frame(
                        FRAME_CHUNK,
                        encode_envelope(chunk_envelope),
                        *encode_blob_record(view),
                    )
            envelope[UPLOAD_KEY] = upload_id
            self.send_frame(FRAME_REQUEST, encode_envelope(envelope))
        else:
            parts: List[_Bytes] = [encode_envelope(envelope)]
            for blob in blobs:
                parts.extend(encode_blob_record(blob))
            self.send_frame(FRAME_REQUEST, *parts)
        kind, payload = self._read_reply_unit()
        if kind == "binary":
            reply_envelope, reply_blobs = decode_message(payload)
            return messages.finish_response(rehydrate(reply_envelope, reply_blobs))
        return messages.decode_response(payload)

    def _roundtrip_op(self, op: str, **fields: Any) -> Dict[str, Any]:
        if self.protocol == "binary":
            with raw_blobs():
                message = messages.build_request(op, pack_inputs=True, **fields)
            response = self._binary_roundtrip(message)
        else:
            response = messages.decode_response(
                self.roundtrip_raw(messages.encode_request(op, **fields))
            )
        if not response.get("ok"):
            kind = response.get("kind", "ServingError")
            if kind == "QuotaExceededError":
                # The serving layer's 429: re-raise typed, with the server's
                # retry-after hint, so callers can back off instead of just
                # failing.  The echoed trace id rides along so a throttled
                # request stays correlatable.
                error = QuotaExceededError(
                    str(response.get("error")),
                    retry_after=float(response.get("retry_after", 0.0) or 0.0),
                )
                error.trace_id = response.get("trace_id")
                raise error
            if kind == "DeadlineInfeasibleError":
                # The SLO-admission rejection: typed like the quota 429, with
                # the server's retry-after hint, so a deadline-carrying client
                # can re-plan instead of treating it as a generic failure.
                error = DeadlineInfeasibleError(
                    str(response.get("error")),
                    retry_after=float(response.get("retry_after", 0.0) or 0.0),
                )
                error.trace_id = response.get("trace_id")
                raise error
            raise ServingError(f"{kind}: {response.get('error')}")
        return response

    # -- client API ---------------------------------------------------------------
    def submit(
        self,
        program: str,
        inputs: Dict[str, Any],
        client_id: str = "default",
        output_size: Optional[int] = None,
        trace: bool = False,
        trace_id: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        slo_class: Optional[str] = None,
    ) -> Dict[str, np.ndarray]:
        """Execute ``program`` on the server; returns decrypted outputs.

        With ``trace=True`` the client mints a trace id (unless the caller
        supplies one — e.g. a retry loop keeping one id across attempts), the
        server records a span per stage, and the reply echoes them —
        available afterwards as ``self.last_trace`` (``submit --trace``
        prints this breakdown).

        ``deadline_ms``/``slo_class`` attach SLO semantics; an infeasible
        deadline is rejected with a typed
        :class:`~repro.errors.DeadlineInfeasibleError` carrying
        ``retry_after``.
        """
        if trace and trace_id is None:
            trace_id = new_trace_id()
        response = self._roundtrip_op(
            "submit",
            program=program,
            inputs=inputs,
            client_id=client_id,
            output_size=output_size,
            trace_id=trace_id,
            trace=trace,
            deadline_ms=deadline_ms,
            slo_class=slo_class,
        )
        self.last_stats: Dict[str, Any] = response.get("stats", {})
        self.last_trace: Optional[Dict[str, Any]] = response.get("trace")
        return response.get("outputs", {})

    def create_session(self, program: str, client_kit: Any, client_id: Optional[str] = None) -> Dict[str, Any]:
        """Register ``client_kit``'s evaluation keys for ``program`` on the server.

        ``client_kit`` is a :class:`repro.api.ClientKit` (anything exposing
        ``export_evaluation_keys()``); the secret key never leaves the client.
        On a binary connection the keys are exported raw (no base64) and
        streamed as chunked frames when they exceed the streaming threshold.
        """
        with self._blob_context():
            evaluation_keys = client_kit.export_evaluation_keys()
        response = self._roundtrip_op(
            "session",
            program=program,
            client_id=client_id or getattr(client_kit, "client_id", "default"),
            evaluation_keys=evaluation_keys,
        )
        return response.get("session", {})

    def submit_bundle(
        self,
        program: str,
        bundle_wire: Dict[str, Any],
        client_id: str = "default",
        trace: bool = False,
        trace_id: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        slo_class: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Submit a wire-encoded cipher bundle; returns wire-encoded ciphertext outputs."""
        if trace and trace_id is None:
            trace_id = new_trace_id()
        response = self._roundtrip_op(
            "submit",
            program=program,
            bundle=bundle_wire,
            client_id=client_id,
            trace_id=trace_id,
            trace=trace,
            deadline_ms=deadline_ms,
            slo_class=slo_class,
        )
        self.last_stats = response.get("stats", {})
        self.last_trace = response.get("trace")
        return response.get("encrypted_outputs", {})

    def submit_encrypted(
        self,
        program: str,
        client_kit: Any,
        inputs: Dict[str, Any],
        client_id: Optional[str] = None,
        trace: bool = False,
        deadline_ms: Optional[float] = None,
        slo_class: Optional[str] = None,
    ) -> Dict[str, np.ndarray]:
        """End-to-end encrypted request: encrypt, submit, decrypt — keys stay local.

        The kit encrypts ``inputs`` into a bundle, the server evaluates it
        blindly under the session created with :meth:`create_session`, and the
        ciphertext reply is decrypted here with the kit's secret key.
        ``client_id`` must match the one the session was created under
        (defaults to the kit's own id, as :meth:`create_session` does).
        ``deadline_ms``/``slo_class`` ride the envelope exactly as on
        :meth:`submit` — SLO admission sees encrypted and plaintext requests
        identically.
        """
        bundle = client_kit.encrypt_inputs(inputs)
        with self._blob_context():
            bundle_wire = client_kit.bundle_to_wire(bundle)
        reply = self.submit_bundle(
            program,
            bundle_wire,
            client_id=client_id or getattr(client_kit, "client_id", "default"),
            trace=trace,
            deadline_ms=deadline_ms,
            slo_class=slo_class,
        )
        return client_kit.decrypt_outputs(client_kit.outputs_from_wire(reply))

    def programs(self) -> list:
        """Registered program names on the server."""
        return self._roundtrip_op("list").get("programs", [])

    def route(self, client_id: str = "default") -> Dict[str, Any]:
        """Which shard serves ``client_id`` (cluster servers only)."""
        return self._roundtrip_op("route", client_id=client_id).get("route", {})

    def health(self) -> list:
        """Per-shard health report (single servers report one live shard)."""
        return self._roundtrip_op("health").get("health", [])

    def drain(self, shard: int) -> Dict[str, Any]:
        """Take ``shard`` out of the ring without stopping it (cluster only)."""
        return self._roundtrip_op("drain", shard=shard).get("drain", {})

    def rejoin(self, shard: int) -> Dict[str, Any]:
        """Return ``shard`` to the ring, respawning it if dead (cluster only)."""
        return self._roundtrip_op("rejoin", shard=shard).get("rejoin", {})

    def join(self, host: str, port: int) -> Dict[str, Any]:
        """Attach a running remote shard at ``host:port`` to the ring (cluster only)."""
        return self._roundtrip_op("join", host=host, port=port).get("join", {})

    def stats(self) -> Dict[str, Any]:
        """The server's stats() snapshot."""
        return self._roundtrip_op("stats").get("stats", {})

    def metrics(self, prometheus: bool = False) -> Dict[str, Any]:
        """The server's unified metrics snapshot (cluster-aggregated on routers).

        With ``prometheus=True`` the reply additionally carries the rendered
        text exposition under ``"prometheus"``.
        """
        response = self._roundtrip_op(
            "metrics", fmt="prometheus" if prometheus else None
        )
        result = {"metrics": response.get("metrics", {})}
        if "prometheus" in response:
            result["prometheus"] = response["prometheus"]
        return result

    def trace_of(self, trace_id: str) -> Optional[Dict[str, Any]]:
        """The recorded per-stage spans of one trace id (None when unknown)."""
        return self._roundtrip_op("trace", trace_id=trace_id).get("trace")

    def slow(self, limit: Optional[int] = None) -> list:
        """Recent slow requests, newest first (cluster-merged on routers)."""
        return self._roundtrip_op("slow", limit=limit).get("slow", [])

    def ping(self) -> bool:
        """Liveness probe; True when the server answers."""
        return bool(self._roundtrip_op("ping").get("pong"))

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __del__(self) -> None:  # release the socket when a cached client dies
        try:
            self.close()
        except Exception:
            pass

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()
