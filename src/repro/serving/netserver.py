"""TCP front-end for :class:`~repro.serving.server.EvaServer`.

Transport is deliberately simple — newline-delimited JSON messages (see
:mod:`repro.core.serialization.messages`) over a threading TCP server — so a
client can be a five-line script or ``repro.cli submit``.  Each connection may
pipeline any number of requests; responses come back in order.  Connection
threads block on the server's futures, so concurrency across connections is
bounded by the job engine, not by the socket layer.
"""

from __future__ import annotations

import socket
import socketserver
import threading
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..core.serialization import messages
from ..errors import EvaError, ServingError
from .server import EvaServer


class _RequestHandler(socketserver.StreamRequestHandler):
    """One connection: read request lines, write response lines."""

    server: "EvaTcpServer"

    def handle(self) -> None:
        while True:
            line = self.rfile.readline()
            if not line:
                return
            text = line.decode("utf-8").strip()
            if not text:
                continue
            try:
                reply = self._dispatch(messages.decode_request(text))
            except EvaError as error:
                reply = messages.encode_error(error)
            except Exception as error:  # never let a request kill the connection
                reply = messages.encode_error(ServingError(str(error)))
            self.wfile.write(reply.encode("utf-8"))
            self.wfile.flush()

    def _dispatch(self, request: Dict[str, Any]) -> str:
        eva = self.server.eva_server
        op = request["op"]
        if op == "ping":
            return messages.encode_response(payload={"pong": True})
        if op == "list":
            return messages.encode_response(payload={"programs": eva.programs()})
        if op == "stats":
            return messages.encode_response(payload={"stats": eva.stats()})
        if op == "session":
            session = eva.create_session(
                request["program"],
                request.get("client_id", "default"),
                request["evaluation_keys"],
            )
            return messages.encode_response(payload={"session": session})
        if "bundle" in request:
            name = request["program"]
            client_id = request.get("client_id", "default")
            response = eva.request_encrypted(
                name, request["bundle"], client_id=client_id
            )
            # Encode the ciphertext reply with the session context the worker
            # evaluated under (carried on the response, so an eviction between
            # evaluation and encoding cannot fail a completed request); the
            # server never decrypts — only the submitting client can.
            reply = messages.encode_response(
                stats=response.stats_dict(),
                payload={"encrypted_outputs": response.to_wire()},
            )
            # The transport owns the output handles once encoded.
            response.release()
            return reply
        response = eva.request(
            request["program"],
            request["inputs"],
            client_id=request.get("client_id", "default"),
            output_size=request.get("output_size"),
        )
        return messages.encode_response(
            outputs=response.outputs, stats=response.stats_dict()
        )


class EvaTcpServer(socketserver.ThreadingTCPServer):
    """Threaded TCP server wrapping an :class:`EvaServer`."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self, eva_server: EvaServer, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.eva_server = eva_server
        super().__init__((host, port), _RequestHandler)

    @property
    def address(self) -> Tuple[str, int]:
        return self.server_address[0], self.server_address[1]

    def start_background(self) -> threading.Thread:
        """Serve on a daemon thread; returns the (started) thread."""
        thread = threading.Thread(
            target=self.serve_forever, name="eva-tcp-server", daemon=True
        )
        thread.start()
        return thread


class ServingClient:
    """Minimal line-protocol client for :class:`EvaTcpServer`."""

    def __init__(self, host: str, port: int, timeout: Optional[float] = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def _roundtrip(self, line: str) -> Dict[str, Any]:
        self._file.write(line.encode("utf-8"))
        self._file.flush()
        reply = self._file.readline()
        if not reply:
            raise ServingError("connection closed by server")
        response = messages.decode_response(reply.decode("utf-8"))
        if not response.get("ok"):
            raise ServingError(
                f"{response.get('kind', 'ServingError')}: {response.get('error')}"
            )
        return response

    def submit(
        self,
        program: str,
        inputs: Dict[str, Any],
        client_id: str = "default",
        output_size: Optional[int] = None,
    ) -> Dict[str, np.ndarray]:
        """Execute ``program`` on the server; returns decrypted outputs."""
        response = self._roundtrip(
            messages.encode_request(
                "submit",
                program=program,
                inputs=inputs,
                client_id=client_id,
                output_size=output_size,
            )
        )
        self.last_stats: Dict[str, Any] = response.get("stats", {})
        return response.get("outputs", {})

    def create_session(self, program: str, client_kit: Any, client_id: Optional[str] = None) -> Dict[str, Any]:
        """Register ``client_kit``'s evaluation keys for ``program`` on the server.

        ``client_kit`` is a :class:`repro.api.ClientKit` (anything exposing
        ``export_evaluation_keys()``); the secret key never leaves the client.
        """
        response = self._roundtrip(
            messages.encode_request(
                "session",
                program=program,
                client_id=client_id or getattr(client_kit, "client_id", "default"),
                evaluation_keys=client_kit.export_evaluation_keys(),
            )
        )
        return response.get("session", {})

    def submit_bundle(
        self,
        program: str,
        bundle_wire: Dict[str, Any],
        client_id: str = "default",
    ) -> Dict[str, Any]:
        """Submit a wire-encoded cipher bundle; returns wire-encoded ciphertext outputs."""
        response = self._roundtrip(
            messages.encode_request(
                "submit", program=program, bundle=bundle_wire, client_id=client_id
            )
        )
        self.last_stats = response.get("stats", {})
        return response.get("encrypted_outputs", {})

    def submit_encrypted(
        self,
        program: str,
        client_kit: Any,
        inputs: Dict[str, Any],
        client_id: Optional[str] = None,
    ) -> Dict[str, np.ndarray]:
        """End-to-end encrypted request: encrypt, submit, decrypt — keys stay local.

        The kit encrypts ``inputs`` into a bundle, the server evaluates it
        blindly under the session created with :meth:`create_session`, and the
        ciphertext reply is decrypted here with the kit's secret key.
        ``client_id`` must match the one the session was created under
        (defaults to the kit's own id, as :meth:`create_session` does).
        """
        bundle = client_kit.encrypt_inputs(inputs)
        reply = self.submit_bundle(
            program,
            client_kit.bundle_to_wire(bundle),
            client_id=client_id or getattr(client_kit, "client_id", "default"),
        )
        return client_kit.decrypt_outputs(client_kit.outputs_from_wire(reply))

    def programs(self) -> list:
        return self._roundtrip(messages.encode_request("list")).get("programs", [])

    def stats(self) -> Dict[str, Any]:
        return self._roundtrip(messages.encode_request("stats")).get("stats", {})

    def ping(self) -> bool:
        return bool(self._roundtrip(messages.encode_request("ping")).get("pong"))

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()
