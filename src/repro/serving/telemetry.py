r"""Unified telemetry plane: metrics registry, latency histograms, request tracing.

Before this module every serving component kept its own ad-hoc totals
(``EngineMetrics.summary()``, registry/artifact/quota/store ``summary()``,
cluster ``stats()``) — scattered counters with no percentiles and no way to
tell *where* a slow encrypted request spent its time as it crossed
router → shard → fair queue → batch → backend.  This module is the
measurement substrate that unifies them:

* :class:`MetricsRegistry` — thread-safe counters, gauges, and log-bucketed
  latency :class:`Histogram`\ s (p50/p95/p99 derived from buckets) under
  stable dotted metric names with per-``client`` / per-``program`` labels.
  Snapshots are plain JSON; :func:`render_prometheus` turns one into the
  Prometheus text exposition format, and :func:`aggregate_snapshots` merges
  the snapshots of N shards into one cluster view (per-shard labeled series
  *plus* summed aggregate series, with histogram percentiles recomputed from
  the merged buckets).

* request tracing — a ``trace_id`` minted by the client (or by the cluster
  router for untraced clients) travels through the wire protocol, router
  forwarding, shard dispatch, job queueing, batch formation, and backend
  execution; each stage records a *span* (``router_forward``,
  ``quota_admission``, ``queue_wait``, ``batch_form``, ``compile_or_cache``,
  ``session_restore``, ``execute``, ``serialize_reply``) into a bounded
  per-shard ring buffer (:class:`Telemetry`).  Requests slower than a
  configurable threshold emit one structured WARNING log line and are kept
  in a separate slow-request ring for ``cluster slow``.

The registry's hot-path cost is one lock acquisition plus a dict update per
observation; series cardinality is bounded (``max_series``) so client-chosen
label values cannot exhaust memory.

Stable metric name catalogue (mirrored in ``docs/metrics.md``; the
``tools/check_docs.py`` gate keeps the two in sync):

====================================  =========  =======================
name                                  kind       labels
====================================  =========  =======================
serving.requests.submitted            counter    client, program
serving.requests.completed            counter    client, program
serving.requests.failed               counter    client, program
serving.requests.throttled            counter    client
serving.requests.rejected             counter    client
serving.requests.cancelled            counter    client
serving.router.forwarded              counter    client, op
serving.router.throttled              counter    client
net.bytes_sent / net.bytes_received   counter    protocol
serving.batches                       counter    program
serving.batch.size                    histogram  program
serving.queue.depth                   gauge      —
serving.queue.seconds                 histogram  client, program
serving.execute.seconds               histogram  client, program
serving.request.seconds               histogram  op, program
serving.slow_requests                 counter    program
serving.rotations                     counter    client, program
serving.keyswitch                     counter    client, program
serving.galois.keys_bytes             counter    client, program
serving.galois.key_steps              gauge      program
serving.lane.width_score              gauge      program, width
serving.lane.width_chosen             counter    program, width
serving.slo.attained                  counter    slo_class, program
serving.slo.missed                    counter    slo_class, program
serving.slo.rejected                  counter    slo_class, client
ckks.op.count                         counter    op, program
ckks.op.seconds                       counter    op, program
cluster.shards.joined                 counter    —
cluster.scale.up                      counter    reason
cluster.scale.down                    counter    reason
cluster.scale.queue_depth             gauge      —
cluster.scale.live_shards             gauge      —
serving.engine.* / serving.quota.*    gauge      (absorbed summaries)
serving.registry.* / serving.store.*  gauge      (absorbed summaries)
serving.sessions.* / serving.artifacts.*  gauge  (absorbed summaries)
====================================  =========  =======================
"""

from __future__ import annotations

import json
import logging
import sys
import threading
import time
import uuid
from bisect import bisect_left
from collections import OrderedDict, deque
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

#: Default log-spaced latency bucket boundaries (seconds): factor-2 ladder
#: from 100 microseconds to ~400 seconds, plus the implicit +Inf bucket.
#: 23 buckets bound every histogram's memory while keeping the relative
#: quantile error under 2x anywhere on the ladder.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(1e-4 * (2.0**k) for k in range(23))

#: The per-stage span names the serving stack records, in pipeline order.
TRACE_STAGES = (
    "router_forward",
    "quota_admission",
    "queue_wait",
    "batch_form",
    "compile_or_cache",
    "session_restore",
    "execute",
    "serialize_reply",
)


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id (uuid4, no dashes)."""
    return uuid.uuid4().hex


class Histogram:
    """Log-bucketed latency histogram with bucket-derived percentiles.

    Observations land in the first bucket whose upper bound is >= the value
    (Prometheus ``le`` semantics); quantiles are reconstructed by linear
    interpolation inside the containing bucket, so their error is bounded by
    the bucket width at that latency.  Not thread-safe on its own —
    :class:`MetricsRegistry` serializes access.
    """

    __slots__ = ("bounds", "counts", "count", "sum")

    def __init__(self, bounds: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        if not self.bounds or any(
            b2 <= b1 for b1, b2 in zip(self.bounds, self.bounds[1:])
        ):
            raise ValueError("histogram bounds must be strictly increasing")
        self.counts: List[int] = [0] * (len(self.bounds) + 1)  # +Inf last
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one sample into its log-spaced bucket."""
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def merge_counts(self, counts: List[int], total: int, total_sum: float) -> None:
        """Fold another histogram's buckets in (same bounds assumed)."""
        for index, extra in enumerate(counts):
            if index < len(self.counts):
                self.counts[index] += int(extra)
        self.count += int(total)
        self.sum += float(total_sum)

    def percentile(self, q: float) -> float:
        """The q-th percentile (0..100) reconstructed from the buckets."""
        return percentile_from_buckets(self.bounds, self.counts, self.count, q)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-friendly bucket counts plus derived percentiles."""
        return {
            "count": self.count,
            "sum": round(self.sum, 9),
            # Non-empty buckets only, as [upper_bound, count] pairs; the
            # +Inf bucket serializes with bound null.
            "buckets": [
                [self.bounds[i] if i < len(self.bounds) else None, c]
                for i, c in enumerate(self.counts)
                if c
            ],
            "p50": round(self.percentile(50), 9),
            "p95": round(self.percentile(95), 9),
            "p99": round(self.percentile(99), 9),
        }


def percentile_from_buckets(
    bounds: Tuple[float, ...], counts: List[int], total: int, q: float
) -> float:
    """Reconstruct a percentile from cumulative-style bucket counts.

    Interpolates linearly inside the containing bucket ([0, bound] for the
    first, [prev, bound] otherwise); the open +Inf bucket reports its lower
    bound (the best bounded answer available).
    """
    if total <= 0:
        return 0.0
    rank = max(q / 100.0, 0.0) * total
    seen = 0
    for index, count in enumerate(counts):
        if count == 0:
            continue
        if seen + count >= rank:
            fraction = (rank - seen) / count
            if index >= len(bounds):  # +Inf bucket
                return bounds[-1]
            hi = bounds[index]
            lo = bounds[index - 1] if index > 0 else 0.0
            return lo + (hi - lo) * min(max(fraction, 0.0), 1.0)
        seen += count
    return bounds[-1]


def _label_key(labels: Mapping[str, Any]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items() if v is not None))


class MetricsRegistry:
    """Thread-safe registry of counters, gauges, and histograms.

    Series are keyed by ``(dotted name, sorted labels)``.  ``max_series``
    bounds total cardinality — client ids are caller-chosen strings, so
    unbounded per-label state would let an id-rotating client exhaust
    memory; overflowing series are dropped and counted in
    ``dropped_series``.
    """

    def __init__(
        self,
        max_series: int = 8192,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        if max_series < 1:
            raise ValueError("max_series must be at least 1")
        self.max_series = int(max_series)
        self.buckets = tuple(buckets)
        self.dropped_series = 0
        self._counters: Dict[Tuple[str, tuple], float] = {}
        self._gauges: Dict[Tuple[str, tuple], float] = {}
        self._histograms: Dict[Tuple[str, tuple], Histogram] = {}
        self._lock = threading.Lock()

    def _series_budget_ok(self) -> bool:
        return (
            len(self._counters) + len(self._gauges) + len(self._histograms)
            < self.max_series
        )

    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        """Add ``value`` to a labeled counter series."""
        key = (str(name), _label_key(labels))
        with self._lock:
            if key not in self._counters and not self._series_budget_ok():
                self.dropped_series += 1
                return
            self._counters[key] = self._counters.get(key, 0.0) + float(value)

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set a labeled gauge series to ``value``."""
        key = (str(name), _label_key(labels))
        with self._lock:
            if key not in self._gauges and not self._series_budget_ok():
                self.dropped_series += 1
                return
            self._gauges[key] = float(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record ``value`` into a labeled histogram series."""
        key = (str(name), _label_key(labels))
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                if not self._series_budget_ok():
                    self.dropped_series += 1
                    return
                histogram = self._histograms[key] = Histogram(self.buckets)
            histogram.observe(value)

    def counter_value(self, name: str, **labels: Any) -> float:
        """Current value of one counter series (0.0 when absent)."""
        with self._lock:
            return self._counters.get((str(name), _label_key(labels)), 0.0)

    def histogram_of(self, name: str, **labels: Any) -> Optional[Histogram]:
        """The histogram object behind one series, or None."""
        with self._lock:
            return self._histograms.get((str(name), _label_key(labels)))

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-able snapshot of every series (single consistent lock hold)."""
        with self._lock:
            return {
                "counters": [
                    {"name": name, "labels": dict(labels), "value": value}
                    for (name, labels), value in sorted(self._counters.items())
                ],
                "gauges": [
                    {"name": name, "labels": dict(labels), "value": value}
                    for (name, labels), value in sorted(self._gauges.items())
                ],
                "histograms": [
                    {"name": name, "labels": dict(labels), **hist.snapshot()}
                    for (name, labels), hist in sorted(self._histograms.items())
                ],
                "dropped_series": self.dropped_series,
            }


def absorb_summary(
    snapshot: Dict[str, Any], prefix: str, summary: Optional[Mapping[str, Any]]
) -> None:
    """Fold a component's ad-hoc ``summary()`` dict into a snapshot as gauges.

    Only numeric leaves are absorbed (one level of nested dicts is flattened
    with a dotted suffix); strings/lists are monitoring noise here and stay
    in ``stats()``.  This is how the legacy ``EngineMetrics`` / registry /
    artifact / quota / store counters surface under stable dotted names
    without rewiring every component.
    """
    if not summary:
        return
    gauges = snapshot.setdefault("gauges", [])
    for key, value in summary.items():
        if isinstance(value, bool):
            value = int(value)
        if isinstance(value, (int, float)):
            gauges.append({"name": f"{prefix}.{key}", "labels": {}, "value": value})
        elif isinstance(value, Mapping):
            for sub_key, sub_value in value.items():
                if isinstance(sub_value, bool):
                    sub_value = int(sub_value)
                if isinstance(sub_value, (int, float)):
                    gauges.append(
                        {
                            "name": f"{prefix}.{key}.{sub_key}",
                            "labels": {},
                            "value": sub_value,
                        }
                    )


def aggregate_snapshots(
    snapshots: Mapping[str, Dict[str, Any]]
) -> Dict[str, Any]:
    """Merge per-shard registry snapshots into one cluster-wide snapshot.

    Every input series appears twice in the result: once labeled with its
    ``shard`` (so per-shard views survive aggregation — CI asserts on them)
    and once folded into an unlabeled aggregate series (counters and
    histogram buckets summed; gauges summed; histogram percentiles
    recomputed from the merged buckets, which is exactly the bucket math a
    single registry would have produced over the union of samples).
    """
    out: Dict[str, Any] = {
        "counters": [],
        "gauges": [],
        "histograms": [],
        "dropped_series": 0,
    }
    agg_counters: "OrderedDict[tuple, float]" = OrderedDict()
    agg_gauges: "OrderedDict[tuple, float]" = OrderedDict()
    agg_hists: "OrderedDict[tuple, Dict[str, Any]]" = OrderedDict()

    for shard, snapshot in snapshots.items():
        out["dropped_series"] += int(snapshot.get("dropped_series", 0))
        for counter in snapshot.get("counters", []):
            labels = dict(counter.get("labels", {}))
            out["counters"].append(
                {
                    "name": counter["name"],
                    "labels": {**labels, "shard": str(shard)},
                    "value": counter["value"],
                }
            )
            key = (counter["name"], _label_key(labels))
            agg_counters[key] = agg_counters.get(key, 0.0) + float(counter["value"])
        for gauge in snapshot.get("gauges", []):
            labels = dict(gauge.get("labels", {}))
            out["gauges"].append(
                {
                    "name": gauge["name"],
                    "labels": {**labels, "shard": str(shard)},
                    "value": gauge["value"],
                }
            )
            key = (gauge["name"], _label_key(labels))
            agg_gauges[key] = agg_gauges.get(key, 0.0) + float(gauge["value"])
        for hist in snapshot.get("histograms", []):
            labels = dict(hist.get("labels", {}))
            out["histograms"].append(
                {**hist, "labels": {**labels, "shard": str(shard)}}
            )
            key = (hist["name"], _label_key(labels))
            merged = agg_hists.get(key)
            if merged is None:
                merged = agg_hists[key] = {
                    "bounds": None,
                    "counts": {},
                    "count": 0,
                    "sum": 0.0,
                }
            for bound, count in hist.get("buckets", []):
                bound_key = float("inf") if bound is None else float(bound)
                merged["counts"][bound_key] = (
                    merged["counts"].get(bound_key, 0) + int(count)
                )
            merged["count"] += int(hist.get("count", 0))
            merged["sum"] += float(hist.get("sum", 0.0))

    for (name, labels), value in agg_counters.items():
        out["counters"].append(
            {"name": name, "labels": dict(labels), "value": value}
        )
    for (name, labels), value in agg_gauges.items():
        out["gauges"].append({"name": name, "labels": dict(labels), "value": value})
    for (name, labels), merged in agg_hists.items():
        bounds = sorted(b for b in merged["counts"] if b != float("inf"))
        counts = [merged["counts"][b] for b in bounds]
        counts.append(merged["counts"].get(float("inf"), 0))
        bounds_t = tuple(bounds) if bounds else (0.0,)
        if not bounds:
            counts = [0, merged["counts"].get(float("inf"), 0)]
        entry = {
            "name": name,
            "labels": dict(labels),
            "count": merged["count"],
            "sum": round(merged["sum"], 9),
            "buckets": [[b, c] for b, c in zip(bounds, counts) if c]
            + ([[None, counts[-1]]] if counts[-1] else []),
            "p50": round(
                percentile_from_buckets(bounds_t, counts, merged["count"], 50), 9
            ),
            "p95": round(
                percentile_from_buckets(bounds_t, counts, merged["count"], 95), 9
            ),
            "p99": round(
                percentile_from_buckets(bounds_t, counts, merged["count"], 99), 9
            ),
        }
        out["histograms"].append(entry)
    return out


def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _prom_labels(labels: Mapping[str, Any], extra: str = "") -> str:
    parts = [
        f'{_prom_name(key)}="{str(value)}"' for key, value in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(snapshot: Dict[str, Any]) -> str:
    """Render a registry snapshot in the Prometheus text exposition format."""
    lines: List[str] = []
    seen_types: set = set()

    def typeline(name: str, kind: str) -> None:
        """Emit the # TYPE header once per metric name."""
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for counter in snapshot.get("counters", []):
        name = _prom_name(counter["name"]) + "_total"
        typeline(name, "counter")
        lines.append(
            f"{name}{_prom_labels(counter.get('labels', {}))} {counter['value']:g}"
        )
    for gauge in snapshot.get("gauges", []):
        name = _prom_name(gauge["name"])
        typeline(name, "gauge")
        lines.append(
            f"{name}{_prom_labels(gauge.get('labels', {}))} {gauge['value']:g}"
        )
    for hist in snapshot.get("histograms", []):
        name = _prom_name(hist["name"])
        typeline(name, "histogram")
        labels = hist.get("labels", {})
        cumulative = 0
        for bound, count in hist.get("buckets", []):
            cumulative += int(count)
            le = "+Inf" if bound is None else f"{bound:g}"
            extra = 'le="%s"' % le
            lines.append(f"{name}_bucket{_prom_labels(labels, extra)} {cumulative}")
        if hist.get("buckets") and hist["buckets"][-1][0] is not None:
            extra = 'le="+Inf"'
            lines.append(f"{name}_bucket{_prom_labels(labels, extra)} {cumulative}")
        lines.append(f"{name}_sum{_prom_labels(labels)} {hist.get('sum', 0):g}")
        lines.append(f"{name}_count{_prom_labels(labels)} {hist.get('count', 0)}")
    return "\n".join(lines) + "\n"


_slow_logger = logging.getLogger("repro.serving.slow")


class Telemetry:
    """One process's telemetry plane: registry + trace ring + slow-request log.

    ``shard`` labels every span with where it was recorded (a shard index,
    or ``"router"``); ``slow_threshold`` (seconds) is the wall-clock total
    beyond which a finished request emits one structured WARNING line and
    joins the slow ring buffer.
    """

    def __init__(
        self,
        slow_threshold: float = 1.0,
        trace_capacity: int = 1024,
        slow_capacity: int = 256,
        shard: Optional[Any] = None,
        max_series: int = 8192,
    ) -> None:
        if trace_capacity < 1 or slow_capacity < 1:
            raise ValueError("trace/slow capacities must be at least 1")
        self.registry = MetricsRegistry(max_series=max_series)
        self.slow_threshold = float(slow_threshold)
        self.shard = shard
        self._traces: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._trace_capacity = int(trace_capacity)
        self._slow: "deque[Dict[str, Any]]" = deque(maxlen=int(slow_capacity))
        self._lock = threading.Lock()

    # -- metrics passthroughs ---------------------------------------------------
    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        """Registry passthrough: add to a counter series."""
        self.registry.inc(name, value, **labels)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Registry passthrough: record a histogram sample."""
        self.registry.observe(name, value, **labels)

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Registry passthrough: set a gauge."""
        self.registry.set_gauge(name, value, **labels)

    # -- tracing ------------------------------------------------------------------
    def span(
        self, trace_id: Optional[str], stage: str, seconds: float, **meta: Any
    ) -> None:
        """Record one per-stage span for ``trace_id`` (no-op when untraced)."""
        if not trace_id:
            return
        span = {
            "stage": str(stage),
            "seconds": round(float(seconds), 9),
            "ts": time.time(),
        }
        if self.shard is not None:
            span["shard"] = self.shard
        for key, value in meta.items():
            if value is not None:
                span[key] = value
        with self._lock:
            entry = self._traces.get(trace_id)
            if entry is None:
                entry = self._traces[trace_id] = {
                    "trace_id": str(trace_id),
                    "spans": [],
                }
                while len(self._traces) > self._trace_capacity:
                    self._traces.popitem(last=False)
            else:
                self._traces.move_to_end(trace_id)
            entry["spans"].append(span)

    def trace_of(self, trace_id: str) -> Optional[Dict[str, Any]]:
        """The recorded spans of one trace (or None when unknown/evicted)."""
        with self._lock:
            entry = self._traces.get(str(trace_id))
            if entry is None:
                return None
            return {
                "trace_id": entry["trace_id"],
                "spans": [dict(span) for span in entry["spans"]],
                **{
                    key: value
                    for key, value in entry.items()
                    if key not in ("trace_id", "spans")
                },
            }

    def finish(
        self,
        trace_id: Optional[str],
        total_seconds: float,
        op: str = "submit",
        client: Optional[str] = None,
        program: Optional[str] = None,
    ) -> None:
        """Finish one request: total-latency histogram + slow-request handling.

        Runs for *every* request, traced or not — slow requests without a
        trace id still deserve their WARNING line (with whatever metadata is
        at hand).
        """
        total_seconds = float(total_seconds)
        self.registry.observe(
            "serving.request.seconds", total_seconds, op=op, program=program
        )
        if trace_id:
            with self._lock:
                entry = self._traces.get(trace_id)
                if entry is not None:
                    entry["total_seconds"] = round(total_seconds, 9)
                    entry["op"] = op
                    if client is not None:
                        entry["client"] = str(client)
                    if program is not None:
                        entry["program"] = str(program)
        if total_seconds < self.slow_threshold:
            return
        self.registry.inc("serving.slow_requests", program=program)
        record = {
            "trace_id": trace_id,
            "total_seconds": round(total_seconds, 9),
            "threshold_seconds": self.slow_threshold,
            "op": op,
            "client": client,
            "program": program,
            "ts": time.time(),
        }
        if self.shard is not None:
            record["shard"] = self.shard
        trace = self.trace_of(trace_id) if trace_id else None
        if trace is not None:
            record["spans"] = trace["spans"]
        with self._lock:
            self._slow.append(record)
        _slow_logger.warning(
            "slow request: %.3fs >= %.3fs threshold (op=%s program=%s client=%s "
            "trace_id=%s)",
            total_seconds,
            self.slow_threshold,
            op,
            program,
            client,
            trace_id,
            extra={
                "trace_id": trace_id,
                "client": client,
                "program": program,
                "op": op,
                "total_seconds": round(total_seconds, 6),
            },
        )

    def slow(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Most recent slow requests, newest first."""
        with self._lock:
            records = list(self._slow)
        records.reverse()
        if limit is not None:
            records = records[: max(int(limit), 0)]
        return records


def merge_traces(parts: Iterable[Optional[Dict[str, Any]]]) -> Optional[Dict[str, Any]]:
    """Merge the per-process views of one trace (router + shards) into one.

    Spans are concatenated in timestamp order; scalar metadata (client,
    program, op, total) prefers the richest part — the one that actually
    finished the request.
    """
    merged: Optional[Dict[str, Any]] = None
    for part in parts:
        if not part:
            continue
        if merged is None:
            merged = {"trace_id": part["trace_id"], "spans": []}
        for key, value in part.items():
            if key != "spans" and value is not None:
                merged.setdefault(key, value)
        merged["spans"].extend(part.get("spans", []))
    if merged is not None:
        merged["spans"].sort(key=lambda span: span.get("ts", 0.0))
    return merged


class _JsonLogFormatter(logging.Formatter):
    """One-line JSON log events (machine-parseable shard logs for CI)."""

    #: Extra record attributes surfaced as top-level JSON keys when present.
    _FIELDS = ("trace_id", "client", "program", "op", "total_seconds", "shard")

    def format(self, record: logging.LogRecord) -> str:
        """Render the record as one JSON line with trace/client/op fields."""
        event: Dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "event": record.getMessage(),
        }
        for field in self._FIELDS:
            value = getattr(record, field, None)
            if value is not None:
                event[field] = value
        if record.exc_info:
            event["exc"] = self.formatException(record.exc_info)
        return json.dumps(event, separators=(",", ":"), default=str)


def configure_logging(json_logs: bool = False, level: str = "INFO") -> None:
    """Configure the ``repro`` logger tree for serving processes.

    ``json_logs`` switches to one-line JSON events (``_JsonLogFormatter``);
    ``level`` is a standard logging level name.  Idempotent: reconfiguring
    replaces the handler instead of stacking duplicates.
    """
    logger = logging.getLogger("repro")
    resolved = getattr(logging, str(level).upper(), None)
    if not isinstance(resolved, int):
        raise ValueError(f"unknown log level {level!r}")
    handler = logging.StreamHandler(sys.stderr)
    if json_logs:
        handler.setFormatter(_JsonLogFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)s %(name)s: %(message)s")
        )
    for existing in list(logger.handlers):
        logger.removeHandler(existing)
    logger.addHandler(handler)
    logger.setLevel(resolved)
    logger.propagate = False


__all__ = [
    "DEFAULT_BUCKETS",
    "TRACE_STAGES",
    "Histogram",
    "MetricsRegistry",
    "Telemetry",
    "absorb_summary",
    "aggregate_snapshots",
    "configure_logging",
    "merge_traces",
    "new_trace_id",
    "percentile_from_buckets",
    "render_prometheus",
]
