"""Futures-based async job engine: bounded queue, fair dequeue, group batching.

The engine decouples request admission from execution.  ``submit`` enqueues a
:class:`Job` onto a bounded queue (applying back-pressure when full) and
returns a :class:`concurrent.futures.Future`; worker threads pull jobs off
the queue and hand them to the server's handler.  Jobs carry a *group key*
(program name + client) and a worker drains every queued job of the group it
picked up — optionally lingering ``batch_window`` seconds for stragglers — so
the slot batcher downstream sees whole batches, not single requests.

Scheduling is **weighted fair queueing** across clients, not global FIFO:
each client has its own arrival queue and a virtual-time counter advanced by
``1 / weight`` per dequeued job, and workers always serve the client with the
smallest virtual time.  Under contention a client flooding the queue is
served in proportion to its weight instead of monopolizing the workers, so a
light client's jobs never sit behind a greedy client's entire backlog.  With
one client (or balanced arrivals) this degenerates to the old FIFO order.

Admission additionally enforces a per-client
:class:`~repro.serving.quotas.FairnessPolicy` when one is configured: a rate
quota (token bucket) and an in-flight cap, rejected with
:class:`~repro.errors.QuotaExceededError` carrying ``retry_after`` — the
serving layer's 429.  The global bounded queue (``QueueFullError``) remains
the server-protecting backstop.

Requests may carry a **deadline** (``deadline_ms``) and an **SLO class**
(``tight`` / ``standard`` / ``relaxed``).  Admission models the request's
queue wait (observed recent waits and current backlog) plus its solo
execution estimate and rejects requests whose deadline is already infeasible
with :class:`~repro.errors.DeadlineInfeasibleError` — executing them would
only burn capacity on a guaranteed miss.  Batch formation then decides
batch-vs-solo *per request* against its deadline (the DiLaServe shape): a
tight request never lingers to fill lanes, a relaxed one always amortizes,
and a standard one lingers only as long as its slack allows.  Outcomes are
counted as ``serving.slo.attained`` / ``missed`` / ``rejected``.

Per-stage latency (queue wait, execution) and throughput are accumulated in
:class:`EngineMetrics`; the serving benchmarks read them to report amortized
request cost.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional

from ..core.serialization.messages import SLO_CLASSES
from ..errors import DeadlineInfeasibleError, QueueFullError, ServingError
from .batching import linger_budget
from .quotas import FairnessPolicy, QuotaLedger
from .telemetry import Telemetry

#: Samples of recent queue waits / batch executions kept for the deadline-
#: admission model (bounded so the estimate tracks the current regime).
_RECENT_SAMPLES = 256


def _percentile(samples: List[float], q: float) -> float:
    """The ``q``-quantile of ``samples`` (nearest-rank; 0.0 when empty)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(int(q * len(ordered)), len(ordered) - 1)
    return ordered[rank]


@dataclass
class Job:
    """One queued unit of serving work."""

    id: int
    group: Hashable
    payload: Any
    future: "Future[Any]"
    submitted_at: float
    client: str = "default"
    started_at: float = 0.0
    finished_at: float = 0.0
    #: Distributed-trace id propagated from the wire request (None when the
    #: request was untraced); spans recorded for this job carry it.
    trace_id: Optional[str] = None
    #: Program name for metric labels (the group key is opaque to the engine).
    program: Optional[str] = None
    #: Time this job's batch spent forming (drain + linger), set by the
    #: dequeue side so the worker can attribute it as a span.
    batch_form_seconds: float = 0.0
    #: Effective SLO class (``tight`` / ``standard`` / ``relaxed``).
    slo_class: str = "standard"
    #: Absolute monotonic deadline, or None when the request carries none.
    deadline_at: Optional[float] = None
    #: Modeled solo execution time, used by batch formation to cap lingering.
    execute_estimate: float = 0.0

    @property
    def queue_seconds(self) -> float:
        """Seconds the job waited in the queue before a worker took it."""
        return max(self.started_at - self.submitted_at, 0.0)


@dataclass
class EngineMetrics:
    """Counters and per-stage latency totals, updated under the engine lock."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    throttled: int = 0
    cancelled: int = 0
    deadline_rejected: int = 0
    slo_attained: int = 0
    slo_missed: int = 0
    batches: int = 0
    largest_batch: int = 0
    queue_seconds_total: float = 0.0
    execute_seconds_total: float = 0.0
    first_submit_at: Optional[float] = None
    last_finish_at: Optional[float] = None
    batch_size_counts: Dict[int, int] = field(default_factory=dict)

    def summary(self) -> Dict[str, object]:
        """Engine totals plus derived rates, for stats() and telemetry absorption."""
        finished = self.completed + self.failed
        elapsed = (
            (self.last_finish_at - self.first_submit_at)
            if self.first_submit_at is not None and self.last_finish_at is not None
            else 0.0
        )
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "throttled": self.throttled,
            "cancelled": self.cancelled,
            "deadline_rejected": self.deadline_rejected,
            "slo_attained": self.slo_attained,
            "slo_missed": self.slo_missed,
            "batches": self.batches,
            "largest_batch": self.largest_batch,
            "mean_batch_size": round(finished / self.batches, 3) if self.batches else 0.0,
            "mean_queue_seconds": (
                round(self.queue_seconds_total / finished, 6) if finished else 0.0
            ),
            "mean_execute_seconds": (
                round(self.execute_seconds_total / self.batches, 6) if self.batches else 0.0
            ),
            "throughput_per_second": (
                round(finished / elapsed, 3) if elapsed > 0 else 0.0
            ),
            "batch_size_counts": dict(sorted(self.batch_size_counts.items())),
        }


class JobEngine:
    """Bounded-queue worker pool executing grouped jobs through a handler.

    ``handler(jobs)`` receives a non-empty list of jobs sharing one group key
    and returns one result per job (an item may be an exception to fail just
    that job); if the handler itself raises, the whole batch fails.

    ``fairness`` (a :class:`~repro.serving.quotas.FairnessPolicy`) enables
    per-client admission control — rate quota and in-flight cap — and
    supplies the per-client weights of the fair dequeue.
    """

    def __init__(
        self,
        handler: Callable[[List[Job]], List[Any]],
        workers: int = 2,
        queue_size: int = 256,
        max_batch: int = 8,
        batch_window: float = 0.0,
        fairness: Optional[FairnessPolicy] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("the engine needs at least one worker")
        if queue_size < 1:
            raise ValueError("queue size must be at least 1")
        self.handler = handler
        self.queue_size = queue_size
        self.max_batch = max(int(max_batch), 1)
        self.batch_window = max(float(batch_window), 0.0)
        self.fairness = fairness
        self.ledger = QuotaLedger(fairness)
        self.metrics = EngineMetrics()
        #: Unified telemetry plane (histograms, spans); None keeps the engine
        #: standalone-usable with only the legacy EngineMetrics totals.
        self.telemetry = telemetry
        #: Per-client arrival queues; jobs of one client stay FIFO relative
        #: to each other, but *clients* are interleaved by virtual time.
        self._queues: "OrderedDict[str, deque[Job]]" = OrderedDict()
        #: Virtual finish time per active client, and the engine-wide virtual
        #: clock a newly active client starts from (so returning clients do
        #: not replay the service they missed while idle).
        self._vtime: Dict[str, float] = {}
        self._clock = 0.0
        self._queued = 0
        self._worker_count = int(workers)
        #: Recent per-job queue waits (segmented by SLO class — a relaxed
        #: job's wait includes deliberate linger a tight job never pays) and
        #: per-batch execute times, feeding the deadline-admission model
        #: (mutated under ``self._cond``).
        self._wait_recent: Dict[str, "deque[float]"] = {}
        self._execute_recent: "deque[float]" = deque(maxlen=_RECENT_SAMPLES)
        self._cond = threading.Condition()
        self._closed = False
        self._ids = itertools.count()
        self._workers = [
            threading.Thread(target=self._worker_loop, name=f"eva-serve-{i}", daemon=True)
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    def _weight_of(self, client: str) -> float:
        if self.fairness is None:
            return 1.0
        return self.fairness.weight_of(client)

    # -- deadline admission model ------------------------------------------------
    def wait_estimate(
        self, slo_class: str = "standard", client: str = "default"
    ) -> float:
        """Modeled queue wait of one request submitted right now (seconds).

        The larger of two signals, both shaped by *who* is asking:

        * the observed recent queue-wait p95 **of the same SLO class** — a
          relaxed job's wait includes the linger it deliberately paid to fill
          lanes, so class-blind percentiles would reject tight traffic on a
          server that serves its tight requests promptly;
        * a backlog estimate reflecting the weighted-fair dequeue: the
          client's *own* queued jobs (plus the request itself) each wait one
          round of service across the currently active clients, spread over
          the workers.  Global queue depth is deliberately not the unit — a
          deep queue from one flooding client does not delay a new client
          under fair queueing.
        """
        with self._cond:
            client_queued = len(self._queues.get(client, ()))
            active = max(len(self._queues), 1)
            waits = list(self._wait_recent.get(slo_class, ()))
            execs = list(self._execute_recent)
        observed = _percentile(waits, 0.95)
        mean_execute = sum(execs) / len(execs) if execs else 0.0
        rounds = client_queued + 1
        backlog = rounds * active * mean_execute / max(self._worker_count, 1)
        return max(observed, backlog)

    def execute_estimate(self) -> float:
        """Observed solo-execution estimate: recent batch-execute p95."""
        with self._cond:
            execs = list(self._execute_recent)
        return _percentile(execs, 0.95)

    # -- submission --------------------------------------------------------------
    def submit(
        self,
        group: Hashable,
        payload: Any,
        timeout: Optional[float] = None,
        client: str = "default",
        trace_id: Optional[str] = None,
        program: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        slo_class: Optional[str] = None,
        execute_estimate: Optional[float] = None,
    ) -> "Future[Any]":
        """Enqueue a job for ``client`` and return its future.

        Per-client quotas are checked first: a violated rate or in-flight cap
        raises :class:`~repro.errors.QuotaExceededError` immediately (no
        queue-space wait — a throttled client must back off, not block).
        Then blocks while the global queue is full; with a ``timeout``,
        raises :class:`~repro.errors.QueueFullError` when space does not free
        up in time (the back-pressure signal a front-end turns into "try
        later").

        ``deadline_ms`` and ``slo_class`` attach SLO semantics: unset values
        fall back to the fairness policy's per-client class and per-class
        deadline defaults.  A request whose modeled queue wait plus solo
        execution (``execute_estimate``, falling back to the engine's
        observed history) already exceeds its deadline is rejected with
        :class:`~repro.errors.DeadlineInfeasibleError` carrying a
        ``retry_after`` hint.  The linger a batch may add is deliberately
        *not* part of the admission model: a request whose slack only covers
        execution goes solo, it is not rejected.

        ``trace_id`` labels every span the engine records for this job;
        ``program`` labels its metric series.
        """
        client = str(client)
        telemetry = self.telemetry
        if self.fairness is not None:
            slo = self.fairness.slo_class_of(client, slo_class)
            if deadline_ms is None:
                deadline_ms = self.fairness.deadline_ms_of(slo)
        else:
            slo = slo_class if slo_class is not None else "standard"
            if slo not in SLO_CLASSES:
                raise ValueError(
                    f"unknown SLO class {slo!r}; expected one of {SLO_CLASSES}"
                )
        estimate = float(execute_estimate) if execute_estimate else 0.0
        if deadline_ms is not None:
            deadline_s = float(deadline_ms) / 1000.0
            if deadline_s <= 0:
                raise ValueError("deadline_ms must be positive")
            if estimate <= 0.0:
                estimate = self.execute_estimate()
            wait = self.wait_estimate(slo, client)
            if wait + estimate > deadline_s:
                with self._cond:
                    self.metrics.deadline_rejected += 1
                if telemetry is not None:
                    telemetry.inc(
                        "serving.slo.rejected", slo_class=slo, client=client
                    )
                raise DeadlineInfeasibleError(
                    f"deadline of {deadline_ms:g}ms is infeasible: modeled "
                    f"queue wait {wait * 1000:.1f}ms + execution "
                    f"{estimate * 1000:.1f}ms already exceeds it",
                    retry_after=max(wait, 0.05),
                )
        else:
            deadline_s = None
        admit_started = time.perf_counter()
        try:
            self.ledger.admit(client)
        except ServingError:
            with self._cond:
                self.metrics.throttled += 1
            if telemetry is not None:
                telemetry.inc("serving.requests.throttled", client=client)
            raise
        if telemetry is not None:
            telemetry.span(
                trace_id,
                "quota_admission",
                time.perf_counter() - admit_started,
                client=client,
            )
        admitted = self.ledger.enabled
        future: "Future[Any]" = Future()
        if admitted:
            # Exactly one release per admitted request, however it settles
            # (result, exception, or cancellation).
            future.add_done_callback(lambda _f, c=client: self.ledger.release(c))
        deadline = None if timeout is None else time.monotonic() + timeout
        try:
            with self._cond:
                while self._queued >= self.queue_size and not self._closed:
                    remaining = None if deadline is None else deadline - time.monotonic()
                    if remaining is not None and remaining <= 0:
                        self.metrics.rejected += 1
                        if telemetry is not None:
                            telemetry.inc("serving.requests.rejected", client=client)
                        raise QueueFullError(
                            f"job queue is full ({self.queue_size} jobs) and the "
                            f"submit deadline of {timeout:g}s expired"
                        )
                    self._cond.wait(remaining)
                if self._closed:
                    raise ServingError("the job engine has been shut down")
                now = time.monotonic()
                job = Job(
                    id=next(self._ids),
                    group=group,
                    payload=payload,
                    future=future,
                    submitted_at=now,
                    client=client,
                    trace_id=trace_id,
                    program=program,
                    slo_class=slo,
                    deadline_at=None if deadline_s is None else now + deadline_s,
                    execute_estimate=estimate,
                )
                queue = self._queues.get(client)
                if queue is None:
                    queue = self._queues[client] = deque()
                    # A newly active client starts at the engine's virtual
                    # clock: it competes fairly from now on, it does not get
                    # to "catch up" on service it never requested.
                    self._vtime[client] = max(self._clock, self._vtime.get(client, 0.0))
                queue.append(job)
                self._queued += 1
                self.metrics.submitted += 1
                if self.metrics.first_submit_at is None:
                    self.metrics.first_submit_at = now
                if telemetry is not None:
                    telemetry.inc(
                        "serving.requests.submitted", client=client, program=program
                    )
                    telemetry.set_gauge("serving.queue.depth", self._queued)
                self._cond.notify_all()
        except BaseException:
            # The job never entered the queue; settle the future so the
            # done-callback returns the in-flight slot taken by admit().
            future.cancel()
            raise
        return future

    # -- worker side -------------------------------------------------------------
    def _next_client(self) -> Optional[str]:
        """The active client with the smallest virtual time (lock held)."""
        best: Optional[str] = None
        best_vtime = float("inf")
        for client, queue in self._queues.items():
            if not queue:
                continue
            vtime = self._vtime.get(client, 0.0)
            if vtime < best_vtime:
                best, best_vtime = client, vtime
        return best

    def _take_batch(self) -> Optional[List[Job]]:
        """Pop the fair-share client's next job plus its queued same-group
        jobs (None on shutdown)."""
        with self._cond:
            while self._queued == 0 and not self._closed:
                self._cond.wait()
            if self._queued == 0:
                return None
            client = self._next_client()
            assert client is not None  # _queued > 0 implies an active queue
            queue = self._queues[client]
            form_started = time.perf_counter()
            first = queue.popleft()
            self._queued -= 1
            batch = [first]
            self._drain_group(batch, queue)
            # Batch-vs-solo is decided per request against its SLO: a tight
            # first job gets a zero linger budget (already-queued same-group
            # jobs above still ride along), a relaxed one the full window,
            # a standard one its deadline slack.
            now = time.monotonic()
            window = linger_budget(
                first.slo_class,
                self.batch_window,
                None if first.deadline_at is None else first.deadline_at - now,
                first.execute_estimate,
            )
            deadline = now + window
            while len(batch) < self.max_batch and window > 0 and not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
                self._drain_group(batch, self._queues.get(client, deque()))
            # Charge the client's virtual time for the service received: one
            # unit per job, scaled down by its weight.  The engine clock
            # advances with the served client so newly active clients start
            # at "now" in virtual time.
            self._vtime[client] = self._vtime.get(client, 0.0) + (
                len(batch) / self._weight_of(client)
            )
            self._clock = max(self._clock, self._vtime[client])
            if not self._queues.get(client):
                # Drop empty queues (and their vtime) so per-client state
                # stays bounded by the number of *active* clients.
                self._queues.pop(client, None)
                self._vtime.pop(client, None)
            form_seconds = time.perf_counter() - form_started
            for job in batch:
                job.batch_form_seconds = form_seconds
            if self.telemetry is not None:
                self.telemetry.set_gauge("serving.queue.depth", self._queued)
            self._cond.notify_all()
            return batch

    def _drain_group(self, batch: List[Job], queue: "deque[Job]") -> None:
        """Pull same-group jobs out of one client's queue (lock held)."""
        group = batch[0].group
        kept: "deque[Job]" = deque()
        while queue and len(batch) < self.max_batch:
            job = queue.popleft()
            if job.group == group:
                batch.append(job)
                self._queued -= 1
            else:
                kept.append(job)
        kept.extend(queue)
        queue.clear()
        queue.extend(kept)

    def _worker_loop(self) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            # A caller may have cancelled a future while its job sat queued.
            # Transitioning the survivors to RUNNING here makes later
            # cancellation attempts fail cleanly instead of racing
            # set_result below (an InvalidStateError in this loop would kill
            # the worker and strand every future behind it).
            live = [job for job in batch if job.future.set_running_or_notify_cancel()]
            if len(live) != len(batch):
                with self._cond:
                    self.metrics.cancelled += len(batch) - len(live)
                if self.telemetry is not None:
                    for job in batch:
                        if job not in live:
                            self.telemetry.inc(
                                "serving.requests.cancelled", client=job.client
                            )
            if not live:
                continue
            batch = live
            started = time.monotonic()
            for job in batch:
                job.started_at = started
            try:
                results: List[Any] = list(self.handler(batch))
                if len(results) != len(batch):
                    raise ServingError(
                        f"handler returned {len(results)} results for "
                        f"{len(batch)} jobs"
                    )
            except BaseException as exc:
                results = [exc] * len(batch)
            finished = time.monotonic()
            execute_seconds = finished - started
            with self._cond:
                self.metrics.batches += 1
                self.metrics.largest_batch = max(self.metrics.largest_batch, len(batch))
                size_counts = self.metrics.batch_size_counts
                size_counts[len(batch)] = size_counts.get(len(batch), 0) + 1
                self.metrics.execute_seconds_total += execute_seconds
                self.metrics.last_finish_at = finished
                self._execute_recent.append(execute_seconds)
                for job in batch:
                    job.finished_at = finished
                    self.metrics.queue_seconds_total += job.queue_seconds
                    self._wait_recent.setdefault(
                        job.slo_class, deque(maxlen=_RECENT_SAMPLES)
                    ).append(job.queue_seconds)
                    if job.deadline_at is not None:
                        if finished <= job.deadline_at:
                            self.metrics.slo_attained += 1
                        else:
                            self.metrics.slo_missed += 1
            if self.telemetry is not None:
                # This is the single per-job accounting site: solo batches
                # (len == 1, including degraded-to-solo fallbacks inside the
                # handler) and grouped batches both pass through here exactly
                # once per job, so queue wait and the batch-amortized execute
                # time are reported uniformly.
                job_execute = execute_seconds / len(batch)
                self.telemetry.observe("serving.batch.size", len(batch))
                for job in batch:
                    self.telemetry.observe(
                        "serving.queue.seconds",
                        job.queue_seconds,
                        client=job.client,
                        program=job.program,
                    )
                    self.telemetry.observe(
                        "serving.execute.seconds",
                        job_execute,
                        client=job.client,
                        program=job.program,
                    )
                    self.telemetry.span(
                        job.trace_id, "queue_wait", job.queue_seconds,
                        client=job.client,
                    )
                    self.telemetry.span(
                        job.trace_id, "batch_form", job.batch_form_seconds,
                        batch_size=len(batch),
                    )
                    self.telemetry.span(
                        job.trace_id, "execute", job_execute,
                        batch_size=len(batch), program=job.program,
                    )
                    if job.deadline_at is not None:
                        outcome = (
                            "attained" if finished <= job.deadline_at else "missed"
                        )
                        self.telemetry.inc(
                            f"serving.slo.{outcome}",
                            slo_class=job.slo_class,
                            program=job.program,
                        )
            for job, result in zip(batch, results):
                try:
                    if isinstance(result, BaseException):
                        with self._cond:
                            self.metrics.failed += 1
                        if self.telemetry is not None:
                            self.telemetry.inc(
                                "serving.requests.failed",
                                client=job.client,
                                program=job.program,
                            )
                        job.future.set_exception(result)
                    else:
                        with self._cond:
                            self.metrics.completed += 1
                        if self.telemetry is not None:
                            self.telemetry.inc(
                                "serving.requests.completed",
                                client=job.client,
                                program=job.program,
                            )
                        job.future.set_result(result)
                except InvalidStateError:  # pragma: no cover - narrow race
                    # The future was resolved elsewhere; the worker must
                    # survive to serve the rest of the queue either way.
                    pass

    # -- introspection -----------------------------------------------------------
    def metrics_snapshot(self) -> Dict[str, object]:
        """The :class:`EngineMetrics` summary, read under the engine lock.

        Workers mutate the metrics under ``self._cond``; stats paths that
        read ``self.metrics.summary()`` without it can observe torn
        mid-batch state (e.g. ``batches`` advanced but ``completed`` not
        yet).  Every stats/exposition path goes through here instead.
        """
        with self._cond:
            summary = self.metrics.summary()
            # Current queue depth rides along: the cluster autoscaler reads
            # it per shard to compare against its watermarks.
            summary["queued"] = self._queued
            return summary

    # -- lifecycle ---------------------------------------------------------------
    def _drain_all(self) -> List[Job]:
        """Remove and return every queued job (lock held)."""
        doomed: List[Job] = []
        for queue in self._queues.values():
            doomed.extend(queue)
            queue.clear()
        self._queues.clear()
        self._vtime.clear()
        self._queued = 0
        return doomed

    def shutdown(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Stop accepting jobs and settle every outstanding future.

        By default queued jobs are *drained*: workers keep executing until the
        queue is empty, so every future resolves with a result or exception.
        With ``cancel_pending`` the queued-but-unstarted jobs are cancelled
        immediately (their futures raise ``CancelledError``) and only the
        batches already in flight run to completion.  With ``wait`` the call
        blocks until the workers exit, at which point every future ever
        accepted by :meth:`submit` is guaranteed to be done — resolved,
        failed, or cancelled — never silently pending.
        """
        with self._cond:
            first_close = not self._closed
            self._closed = True
            doomed: List[Job] = []
            if cancel_pending and first_close:
                doomed = self._drain_all()
            self._cond.notify_all()
        cancelled = sum(1 for job in doomed if job.future.cancel())
        if cancelled:
            with self._cond:
                self.metrics.cancelled += cancelled
        if wait:
            for thread in self._workers:
                thread.join()
            # Workers have exited; nothing can touch the queue anymore.  Any
            # job still sitting in it (a worker died mid-loop) must not leave
            # its caller blocked on a future that will never settle.
            with self._cond:
                leftover = self._drain_all()
            stranded = sum(1 for job in leftover if job.future.cancel())
            if stranded:
                with self._cond:
                    self.metrics.cancelled += stranded

    def close(self, wait: bool = True) -> None:
        """Stop accepting jobs; drain the queue, then stop the workers."""
        self.shutdown(wait=wait)

    def __enter__(self) -> "JobEngine":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()
