"""Compile-once program registry with LRU eviction and hit/miss accounting.

The serving layer compiles every distinct (program graph, compiler options,
scale overrides) combination exactly once: :func:`repro.core.program_signature`
gives a stable content hash for the combination, and the registry caches the
resulting :class:`~repro.core.compiler.CompilationResult` under it.  Repeat
requests therefore skip the whole Transform/Validate/DetermineParameters
pipeline, which dominates cold-request latency for small programs.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from ..core.compiler import (
    CompilationResult,
    CompilerOptions,
    EvaCompiler,
    program_signature,
)
from ..core.ir import Program


@dataclass
class CacheStats:
    """Hit/miss/eviction counters shared by the serving caches."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        """Total lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache."""
        return self.hits / self.requests if self.requests else 0.0

    def summary(self) -> Dict[str, float]:
        """Cache counters as a plain dict."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass
class RegistryEntry:
    """A cached compilation plus its bookkeeping."""

    signature: str
    compilation: CompilationResult
    hits: int = 0
    compile_seconds: float = field(default=0.0)


class ProgramRegistry:
    """LRU cache of compiled programs keyed by content signature.

    ``capacity`` bounds the number of distinct compilations kept alive;
    the least-recently-used entry is evicted when a new compilation would
    exceed it.  All methods are thread-safe: concurrent workers serving
    the same program race to compile only on the very first request (the
    compile itself runs outside the lock, and the first finisher wins).

    ``artifacts`` (an :class:`~repro.serving.artifacts.ArtifactCache`) adds
    a second, on-disk tier shared across processes: a memory miss first
    tries to *load* the finished compilation a sibling shard published
    before falling back to compiling from source, and every fresh compile
    is published for the rest of the fleet.
    """

    def __init__(self, capacity: int = 64, artifacts: Optional[Any] = None) -> None:
        if capacity < 1:
            raise ValueError("registry capacity must be at least 1")
        self.capacity = capacity
        self.artifacts = artifacts
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, RegistryEntry]" = OrderedDict()
        #: Index from (base signature, lane width) to the variant's own
        #: signature, so the warm path of :meth:`get_or_compile_variant`
        #: never re-hashes the program graph.
        self._variants: "OrderedDict[Tuple[str, int], str]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, signature: str) -> bool:
        with self._lock:
            return signature in self._entries

    def lookup(self, signature: str) -> Optional[CompilationResult]:
        """Return the cached compilation for ``signature`` or None (counts)."""
        with self._lock:
            entry = self._entries.get(signature)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(signature)
            self.stats.hits += 1
            entry.hits += 1
            return entry.compilation

    def get_or_compile(
        self,
        program: Program,
        options: Optional[CompilerOptions] = None,
        input_scales: Optional[Dict[str, float]] = None,
        output_scales: Optional[Dict[str, float]] = None,
        signature: Optional[str] = None,
    ) -> CompilationResult:
        """Return the compilation of ``program``, compiling at most once.

        ``signature`` lets callers that computed the content hash up front
        (e.g. at registration time) skip re-hashing the graph per request.
        """
        if signature is None:
            signature = program_signature(program, options, input_scales, output_scales)
        cached = self.lookup(signature)
        if cached is not None:
            return cached
        if self.artifacts is not None:
            lane_width = (options or CompilerOptions()).lane_width
            loaded = self.artifacts.load(signature, lane_width)
            if loaded is not None:
                return self._insert(signature, loaded)
        compilation = EvaCompiler(options).compile(program, input_scales, output_scales)
        if self.artifacts is not None:
            try:
                self.artifacts.save(compilation, signature=signature)
            except Exception as exc:  # publishing is best-effort, serving is not
                import warnings

                warnings.warn(
                    f"could not publish compiled artifact {signature[:12]}...: "
                    f"{type(exc).__name__}: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return self._insert(signature, compilation)

    def get_or_compile_variant(
        self,
        program: Program,
        options: Optional[CompilerOptions] = None,
        input_scales: Optional[Dict[str, float]] = None,
        output_scales: Optional[Dict[str, float]] = None,
        lane_width: Optional[int] = None,
        base_signature: Optional[str] = None,
    ) -> CompilationResult:
        """Resolve the ``lane_width`` variant of a program, compiling at most once.

        Lane variants are ordinary registry entries — their signatures differ
        from the base because ``lane_width`` is a compiler option — plus an
        index from ``(base_signature, lane_width)`` to the variant signature
        so repeat batches skip re-hashing the graph.  With ``lane_width``
        None (or equal to the base options') this is :meth:`get_or_compile`.
        """
        base_options = options or CompilerOptions()
        if lane_width is None or lane_width == base_options.lane_width:
            return self.get_or_compile(
                program, base_options, input_scales, output_scales,
                signature=base_signature,
            )
        lane_width = int(lane_width)
        if base_signature is not None:
            with self._lock:
                known = self._variants.get((base_signature, lane_width))
            if known is not None:
                cached = self.lookup(known)
                if cached is not None:
                    return cached
        variant_options = replace(base_options, lane_width=lane_width)
        signature = program_signature(
            program, variant_options, input_scales, output_scales
        )
        if base_signature is not None:
            with self._lock:
                self._variants[(base_signature, lane_width)] = signature
                while len(self._variants) > 4 * self.capacity:
                    self._variants.popitem(last=False)
        return self.get_or_compile(
            program, variant_options, input_scales, output_scales,
            signature=signature,
        )

    def _insert(
        self, signature: str, compilation: CompilationResult
    ) -> CompilationResult:
        """Insert (or yield the racing winner); returns the surviving object.

        A race loser must hand its caller the *cached* compilation, not its
        own duplicate, so identity-keyed caches downstream stay coherent.
        """
        with self._lock:
            existing = self._entries.get(signature)
            if existing is not None:
                # A concurrent worker compiled the same program first; keep
                # the existing entry so cached identity stays stable.
                self._entries.move_to_end(signature)
                return existing.compilation
            self._entries[signature] = RegistryEntry(
                signature=signature,
                compilation=compilation,
                compile_seconds=compilation.compile_seconds,
            )
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
            return compilation

    def clear(self) -> None:
        """Drop every cached compilation (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._variants.clear()

    def summary(self) -> Dict[str, object]:
        """Cache contents and counters, for stats() and telemetry absorption."""
        with self._lock:
            summary = {
                "capacity": self.capacity,
                "entries": len(self._entries),
                **self.stats.summary(),
            }
        if self.artifacts is not None:
            summary["artifacts"] = self.artifacts.summary()
        return summary
