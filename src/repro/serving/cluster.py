"""Multi-process sharded serving: consistent-hash routing over EvaServer shards.

A single :class:`~repro.serving.server.EvaServer` is bounded by one process —
one GIL, one job engine, one session cache.  :class:`EvaCluster` scales past
that by running N *shards*, each a full ``EvaServer`` (own
:class:`~repro.serving.registry.ProgramRegistry`,
:class:`~repro.serving.jobs.JobEngine`, and
:class:`~repro.serving.sessions.SessionManager`) in its own process behind
the existing newline-JSON TCP transport, and routing every client to a shard
with a :class:`ConsistentHashRing`.

Routing is by ``client_id``: all of a client's requests land on one shard, so
its compiled programs, generated keys, and slot batches stay warm in that
shard's caches.  Consistent hashing keeps the mapping stable — adding or
removing one shard remaps only ~1/N of the clients instead of reshuffling
everyone.

Sessions survive shard loss because shards share one
:class:`~repro.serving.store.SessionStore` directory: ``create_session``
persists the client's exported key blob, and whichever shard a rerouted
client lands on lazily rebuilds the evaluation context from disk.  The
cluster detects a dead shard on the first failed request, removes it from the
ring, and retries the request on the client's new home shard — transparently
to :class:`~repro.serving.netserver.ServingClient`, whose wire protocol is
unchanged.

Shard processes are started with the ``spawn`` method (safe to use from
threaded parents) and are daemons of the front-door process; killing the
front door kills the fleet.

Shards need not be local: :meth:`EvaCluster.attach_shard` adds a **remote**
``host:port`` endpoint (a running :class:`~repro.serving.netserver.EvaTcpServer`
anywhere on the network) to the same ring — exposed on the wire as the
``join`` op and loadable from a cluster config file
(:func:`load_cluster_config`).  Remote shards get the same health probes,
drain/rejoin lifecycle, and binary-frame forwarding as local ones; they are
simply never spawned, killed, or respawned by this process.

A :class:`ScalePolicy` adds watermark **autoscaling**: when the fleet-wide
queue depth stays above the high watermark the cluster spawns (or rejoins) a
local shard, and when it stays below the low watermark it drains one —
with consecutive-observation hysteresis and a cooldown so an oscillating
load cannot make membership flap.  Decisions are recorded on the cluster's
own telemetry plane as ``cluster.scale.*`` series.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import threading
import time
import weakref
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.compiler import CompilerOptions
from ..core.ir import Program
from ..errors import EvaError, ServingError, TransportError
from .quotas import FairnessPolicy
from .telemetry import Telemetry, aggregate_snapshots, merge_traces, new_trace_id

#: Transport-level failures that justify failing over to another shard.
_FAILOVER_ERRORS = (TransportError, OSError)


# -- consistent hashing ------------------------------------------------------------
def _ring_hash(data: str) -> int:
    return int.from_bytes(hashlib.sha256(data.encode("utf-8")).digest()[:8], "big")


class ConsistentHashRing:
    """Classic consistent-hash ring with virtual nodes.

    Each node is placed at ``replicas`` pseudo-random points of a 64-bit hash
    circle; a key routes to the first node point at or after its own hash.
    Removing a node only remaps the keys that routed to it, and adding one
    claims ~``K/N`` keys from its neighbours — the property the serving layer
    relies on so that shard membership changes do not flush every client's
    warm caches.
    """

    def __init__(self, nodes: Tuple[int, ...] = (), replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError("the ring needs at least one replica per node")
        self.replicas = replicas
        self._points: List[Tuple[int, int]] = []  # sorted (hash, node)
        self._nodes: set = set()
        for node in nodes:
            self.add(node)

    def add(self, node: int) -> None:
        """Place a node on the ring (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for replica in range(self.replicas):
            self._points.append((_ring_hash(f"{node}#{replica}"), node))
        self._points.sort()

    def remove(self, node: int) -> None:
        """Remove a node and its virtual points from the ring (idempotent)."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._points = [point for point in self._points if point[1] != node]

    def route(self, key: Any) -> int:
        """The node responsible for ``key``; raises when the ring is empty."""
        if not self._points:
            raise LookupError("the hash ring has no nodes")
        position = bisect_right(self._points, (_ring_hash(str(key)), -1))
        if position == len(self._points):
            position = 0
        return self._points[position][1]

    @property
    def nodes(self) -> List[int]:
        """The ring's current nodes, sorted."""
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: int) -> bool:
        return node in self._nodes


# -- shard processes ---------------------------------------------------------------
@dataclass
class BackendSpec:
    """Picklable recipe for building a backend inside a shard process.

    ``op_latency`` (mock backends only) emulates a fixed per-homomorphic-op
    hardware latency, so scaling measurements exercise the serving stack
    rather than the host's core count.
    """

    name: str = "mock"
    seed: int = 0
    op_latency: float = 0.0

    def build(self):
        """Instantiate the backend this spec describes."""
        from ..backend import MockBackend

        if self.name == "mock":
            return MockBackend(seed=self.seed, op_latency=self.op_latency)
        if self.name == "mock-exact":
            return MockBackend(
                error_model="none", seed=self.seed, op_latency=self.op_latency
            )
        if self.name == "ckks":
            if self.op_latency:
                raise EvaError("op_latency is a mock-backend knob")
            from ..backend import CkksBackend

            return CkksBackend(seed=self.seed)
        raise EvaError(
            f"unknown backend {self.name!r} (choose mock, mock-exact, or ckks)"
        )


@dataclass
class _RegisteredProgram:
    """One program as shipped to every shard (serialized for pickling)."""

    name: str
    data: bytes  # proto wire format of the source graph
    options: Optional[CompilerOptions]
    lane_width: Optional[int]


@dataclass
class ShardConfig:
    """Everything a shard process needs to come up (must stay picklable)."""

    index: int
    programs: List[_RegisteredProgram]
    backend: BackendSpec
    session_dir: Optional[str]
    host: str = "127.0.0.1"
    workers: int = 2
    queue_size: int = 256
    max_batch: int = 8
    batch_window: float = 0.0
    executor_threads: int = 1
    session_ttl: Optional[float] = None
    artifact_dir: Optional[str] = None
    fairness: Optional[FairnessPolicy] = None
    #: Requests slower than this (seconds, end-to-end in the shard) emit one
    #: structured WARNING line and join the shard's slow ring buffer.
    slow_threshold: float = 1.0
    #: Structured-logging switches (``serve --log-json`` / ``--log-level``):
    #: applied inside the spawned interpreter, where the parent's logging
    #: configuration does not exist.
    log_json: bool = False
    log_level: str = "INFO"


def _shard_main(config: ShardConfig, ready) -> None:  # pragma: no cover - subprocess
    """Entry point of one shard process: a full EvaServer behind TCP.

    Runs in a fresh ``spawn``-ed interpreter.  Reports its bound port (or the
    startup error) through the ``ready`` pipe, then serves forever until the
    parent terminates it.
    """
    try:
        from ..core.serialization.proto import deserialize
        from .artifacts import ArtifactCache
        from .netserver import EvaTcpServer
        from .server import EvaServer
        from .store import SessionStore
        from .telemetry import Telemetry, configure_logging

        configure_logging(json_logs=config.log_json, level=config.log_level)
        session_store = None
        if config.session_dir:
            session_store = SessionStore(config.session_dir, ttl=config.session_ttl)
            # GC expired records at startup so a long-lived shared directory
            # does not grow unboundedly across restarts.
            session_store.prune()
        server = EvaServer(
            backend=config.backend.build(),
            workers=config.workers,
            queue_size=config.queue_size,
            max_batch=config.max_batch,
            batch_window=config.batch_window,
            executor_threads=config.executor_threads,
            session_store=session_store,
            artifact_cache=(
                ArtifactCache(config.artifact_dir) if config.artifact_dir else None
            ),
            fairness=config.fairness,
            telemetry=Telemetry(
                slow_threshold=config.slow_threshold, shard=config.index
            ),
        )
        for spec in config.programs:
            server.register(
                spec.name,
                deserialize(spec.data, name=spec.name),
                options=spec.options,
                lane_width=spec.lane_width,
            )
        tcp = EvaTcpServer(server, host=config.host, port=0)
    except BaseException as exc:
        try:
            ready.send(("error", f"{type(exc).__name__}: {exc}"))
        finally:
            ready.close()
        return
    ready.send(("ok", {"port": tcp.address[1]}))
    ready.close()
    try:
        tcp.serve_forever()
    finally:
        tcp.shutdown()
        server.close(wait=False)


@dataclass
class ShardHandle:
    """A running shard as seen from the front door.

    Two modes share one handle type.  A **local** shard wraps the process
    this cluster spawned; a **remote** shard (``process is None``) is a
    ``host:port`` endpoint attached with :meth:`EvaCluster.attach_shard` —
    its liveness is whatever the last TCP probe said (``last_probe_ok``),
    since there is no process object to ask.
    """

    index: int
    process: Any
    host: str
    port: int
    started_at: float = field(default_factory=time.time)
    #: Result of the most recent TCP probe; the liveness signal of remote
    #: shards (local ones ask their process instead).  Starts True so a
    #: freshly attached shard is live until a probe says otherwise.
    last_probe_ok: bool = True

    @property
    def remote(self) -> bool:
        """True for an attached host:port endpoint with no local process."""
        return self.process is None

    @property
    def mode(self) -> str:
        """``local`` (spawned child process) or ``remote`` (attached endpoint)."""
        return "remote" if self.remote else "local"

    @property
    def pid(self) -> Optional[int]:
        """The local shard process pid (None for remote shards)."""
        return None if self.process is None else self.process.pid

    def alive(self) -> bool:
        """Whether the shard looked alive at the last probe (remote) or is running (local)."""
        if self.remote:
            return self.last_probe_ok
        return self.process.is_alive()

    def info(self) -> Dict[str, Any]:
        """Wire-friendly shard descriptor (index, mode, address, liveness)."""
        return {
            "index": self.index,
            "pid": self.pid,
            "host": self.host,
            "port": self.port,
            "alive": self.alive(),
            "mode": self.mode,
        }


@dataclass
class ScalePolicy:
    """Watermark autoscaling knobs of an :class:`EvaCluster`.

    The autoscaler watches the fleet-wide queue depth (summed over live
    shards).  ``observations`` consecutive ticks at or above
    ``high_queue_depth`` scale **up** (rejoining a parked shard before
    spawning a new one); the same number at or below ``low_queue_depth``
    scale **down** (draining, never killing, a local shard).  ``cooldown``
    seconds must pass between actions.  The two-sided hysteresis plus the
    cooldown keeps an oscillating load from flapping membership — crossing a
    watermark once does nothing.
    """

    high_queue_depth: float = 32.0
    low_queue_depth: float = 4.0
    min_shards: int = 1
    max_shards: int = 8
    #: Consecutive ticks a watermark must stay breached before acting.
    observations: int = 3
    #: Seconds that must elapse between two scaling actions.
    cooldown: float = 30.0

    def __post_init__(self) -> None:
        if self.low_queue_depth < 0 or self.high_queue_depth <= self.low_queue_depth:
            raise ValueError(
                "watermarks must satisfy 0 <= low_queue_depth < high_queue_depth"
            )
        if self.min_shards < 1:
            raise ValueError("min_shards must be at least 1")
        if self.max_shards < self.min_shards:
            raise ValueError("max_shards must be >= min_shards")
        if self.observations < 1:
            raise ValueError("observations must be at least 1")
        if self.cooldown < 0:
            raise ValueError("cooldown must be non-negative")


# -- cluster config files ----------------------------------------------------------
def _toml_scalar(text: str) -> Any:
    """One TOML value of the subset the fallback parser accepts."""
    text = text.strip()
    if len(text) >= 2 and text[0] == text[-1] and text[0] in ("'", '"'):
        return text[1:-1]
    if text == "true":
        return True
    if text == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise ServingError(f"unsupported TOML value {text!r}") from None


def _parse_toml_minimal(text: str) -> Dict[str, Any]:
    """A minimal TOML-subset parser for interpreters without ``tomllib``.

    Covers what cluster config files use — ``[table]`` headers,
    ``[[array-of-tables]]`` headers, and ``key = scalar`` pairs (strings,
    ints, floats, booleans) with ``#`` comments — and nothing more.  On
    Python >= 3.11 :func:`load_cluster_config` uses the real ``tomllib``.
    """
    data: Dict[str, Any] = {}
    current: Dict[str, Any] = data
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[["):
            if not line.endswith("]]"):
                raise ServingError(f"malformed TOML table header {line!r}")
            name = line[2:-2].strip()
            current = {}
            data.setdefault(name, []).append(current)
            continue
        if line.startswith("["):
            if not line.endswith("]"):
                raise ServingError(f"malformed TOML table header {line!r}")
            name = line[1:-1].strip()
            current = data.setdefault(name, {})
            continue
        if "=" not in line:
            raise ServingError(f"malformed TOML line {line!r}")
        key, _, value = line.partition("=")
        value = value.split("#", 1)[0] if not value.strip().startswith(('"', "'")) else value
        current[key.strip()] = _toml_scalar(value)
    return data


def load_cluster_config(path: Any) -> Dict[str, Any]:
    """Parse a cluster TOML config into constructor-ready pieces.

    The file has up to three sections::

        [cluster]            # EvaCluster keyword arguments
        shards = 2
        batch_window = 0.01

        [[remote]]           # remote shards to attach after start
        host = "10.0.0.5"
        port = 7001

        [scale]              # ScalePolicy fields (presence enables scaling)
        high_queue_depth = 32
        low_queue_depth = 4
        interval = 1.0       # seconds between autoscaler ticks

    Returns ``{"cluster": {...}, "remote": [(host, port), ...],
    "scale": ScalePolicy-or-None, "scale_interval": float-or-None}``.
    Uses :mod:`tomllib` when the interpreter has it (3.11+) and a minimal
    TOML-subset parser otherwise.
    """
    with open(path, "rb") as fh:
        raw = fh.read().decode("utf-8")
    try:
        import tomllib
    except ModuleNotFoundError:
        data = _parse_toml_minimal(raw)
    else:
        data = tomllib.loads(raw)
    if not isinstance(data, dict):
        raise ServingError("cluster config must be a TOML document")
    cluster = dict(data.get("cluster", {}) or {})
    remotes: List[Tuple[str, int]] = []
    for entry in data.get("remote", []) or []:
        if "host" not in entry or "port" not in entry:
            raise ServingError("each [[remote]] entry needs 'host' and 'port'")
        remotes.append((str(entry["host"]), int(entry["port"])))
    scale_fields = dict(data.get("scale") or {})
    interval = scale_fields.pop("interval", None)
    try:
        scale = ScalePolicy(**scale_fields) if scale_fields else None
    except TypeError as error:
        raise ServingError(f"bad [scale] section: {error}") from None
    return {
        "cluster": cluster,
        "remote": remotes,
        "scale": scale,
        "scale_interval": float(interval) if interval is not None else None,
    }


# -- the cluster front door --------------------------------------------------------
class EvaCluster:
    """Front door over N shard processes with consistent-hash client routing.

    Usage mirrors :class:`~repro.serving.server.EvaServer`: register programs,
    then :meth:`start`; every shard registers the same program set.  Requests
    go through :meth:`request` / :meth:`create_session` /
    :meth:`submit_bundle`, which route by ``client_id``, keep one upstream
    connection per (thread, shard), and transparently fail over when a shard
    dies — removing it from the ring so the affected clients get a stable new
    home.
    """

    def __init__(
        self,
        shards: int = 2,
        backend: Optional[BackendSpec] = None,
        session_dir: Optional[str] = None,
        replicas: int = 64,
        workers: int = 2,
        queue_size: int = 256,
        max_batch: int = 8,
        batch_window: float = 0.0,
        executor_threads: int = 1,
        host: str = "127.0.0.1",
        start_timeout: float = 120.0,
        request_timeout: Optional[float] = 60.0,
        retries: int = 3,
        session_ttl: Optional[float] = None,
        artifact_dir: Optional[str] = None,
        fairness: Optional[FairnessPolicy] = None,
        health_interval: Optional[float] = None,
        slow_threshold: float = 1.0,
        log_json: bool = False,
        log_level: str = "INFO",
        wire: str = "auto",
        remote_shards: Optional[List[Tuple[str, int]]] = None,
        scale_policy: Optional[ScalePolicy] = None,
        scale_interval: Optional[float] = None,
    ) -> None:
        if shards < 1 and not remote_shards:
            raise ServingError("a cluster needs at least one shard")
        if wire not in ("auto", "binary", "json"):
            raise ServingError(f"unknown wire mode {wire!r}")
        if health_interval is not None and health_interval <= 0:
            raise ServingError("health_interval must be positive (or None)")
        if scale_interval is not None and scale_interval <= 0:
            raise ServingError("scale_interval must be positive (or None)")
        self.shards = int(shards)
        self.backend = backend or BackendSpec()
        self.session_dir = str(session_dir) if session_dir else None
        self.session_ttl = session_ttl
        #: Shared compiled-artifact directory: each shard's registry loads
        #: programs (and lane variants) its siblings already compiled.
        self.artifact_dir = str(artifact_dir) if artifact_dir else None
        #: Per-client quotas, enforced twice: at the router (before a request
        #: crosses to a shard) and at every shard's job engine.
        self.fairness = fairness
        self.health_interval = health_interval
        #: Shard-side slow-request threshold and structured-logging switches,
        #: shipped to every shard process via its :class:`ShardConfig`.
        self.slow_threshold = float(slow_threshold)
        self.log_json = bool(log_json)
        self.log_level = str(log_level)
        #: Wire mode of the cluster-internal connections to shards (``auto``
        #: negotiates the binary frame protocol; shard listeners always
        #: accept both framings, so this only pins what *this* process
        #: speaks upstream).
        self.wire = str(wire)
        self.host = host
        self.workers = workers
        self.queue_size = queue_size
        self.max_batch = max_batch
        self.batch_window = batch_window
        self.executor_threads = executor_threads
        self.start_timeout = float(start_timeout)
        self.request_timeout = request_timeout
        #: Trace id of the most recent traced request (None when untraced).
        self.last_trace_id: Optional[str] = None
        self.retries = max(int(retries), 1)
        self.ring = ConsistentHashRing(replicas=replicas)
        self._programs: List[_RegisteredProgram] = []
        self._handles: Dict[int, ShardHandle] = {}
        self._dead: List[int] = []
        self._drained: List[int] = []
        #: Bumped whenever a shard index is respawned on a new port, so
        #: thread-local connections cached against the old process are
        #: discarded instead of reused.
        self._generations: Dict[int, int] = {}
        self._lock = threading.Lock()
        self._local = threading.local()
        #: Weak so that connections cached by a thread die with the thread
        #: (ServingClient closes its socket on finalization); close() sweeps
        #: whatever is still alive.
        self._all_clients: "weakref.WeakSet[Any]" = weakref.WeakSet()
        self._health_stop = threading.Event()
        self._health_thread: Optional[threading.Thread] = None
        #: Serializes rejoin_shard: concurrent rejoins of one index (operator
        #: retry racing automation) must not both respawn the process.
        self._rejoin_lock = threading.Lock()
        #: Remote ``(host, port)`` endpoints attached right after start().
        self._remote_endpoints: List[Tuple[str, int]] = [
            (str(host), int(port)) for host, port in (remote_shards or [])
        ]
        #: Persistent per-shard health-probe connections, keyed by index and
        #: guarded against respawns by the shard's generation — probing reuses
        #: one pinned-JSON connection instead of paying a fresh TCP connect
        #: (and hello) per probe.
        self._probe_lock = threading.Lock()
        self._probe_clients: Dict[int, Tuple[int, Any]] = {}
        #: The cluster's own telemetry plane: scale decisions, join events —
        #: aggregated into the fleet metrics snapshot next to the shards'.
        self.telemetry = Telemetry(shard="cluster")
        #: Watermark autoscaling (None disables): scale_tick() is the
        #: injectable decision step, the background loop just calls it.
        self.scale_policy = scale_policy
        self.scale_interval = scale_interval
        self._scale_above = 0
        self._scale_below = 0
        self._last_scale_at: Optional[float] = None
        self._scale_stop = threading.Event()
        self._scale_thread: Optional[threading.Thread] = None
        self._started = False
        self._closed = False

    # -- registration ------------------------------------------------------------
    def register(
        self,
        name: str,
        program: Any,
        options: Optional[CompilerOptions] = None,
        lane_width: Optional[int] = None,
    ) -> None:
        """Queue a program for registration on every shard (before start)."""
        if self._started:
            raise ServingError("programs must be registered before the cluster starts")
        graph = getattr(program, "graph", program)
        if not isinstance(graph, Program):
            raise ServingError(f"cannot register {type(program).__name__} as a program")
        from ..core.serialization.proto import serialize

        self._programs.append(
            _RegisteredProgram(
                name=str(name),
                data=serialize(graph),
                options=options,
                lane_width=lane_width,
            )
        )

    # -- lifecycle ---------------------------------------------------------------
    def _shard_config(self, index: int) -> ShardConfig:
        return ShardConfig(
            index=index,
            programs=list(self._programs),
            backend=self.backend,
            session_dir=self.session_dir,
            host=self.host,
            workers=self.workers,
            queue_size=self.queue_size,
            max_batch=self.max_batch,
            batch_window=self.batch_window,
            executor_threads=self.executor_threads,
            session_ttl=self.session_ttl,
            artifact_dir=self.artifact_dir,
            fairness=self.fairness,
            slow_threshold=self.slow_threshold,
            log_json=self.log_json,
            log_level=self.log_level,
        )

    def _launch_shard(self, index: int):
        """Fork one shard process; returns (process, ready-pipe)."""
        context = multiprocessing.get_context("spawn")
        parent_end, child_end = context.Pipe(duplex=False)
        process = context.Process(
            target=_shard_main,
            args=(self._shard_config(index), child_end),
            name=f"eva-shard-{index}",
            daemon=True,
        )
        process.start()
        child_end.close()
        return process, parent_end

    def _await_shard(self, index: int, process, parent_end, deadline: float) -> ShardHandle:
        """Wait for one launched shard's ready message; returns its handle."""
        remaining = max(deadline - time.monotonic(), 0.0)
        if not parent_end.poll(remaining):
            raise ServingError(
                f"shard {index} did not come up within {self.start_timeout:g}s"
            )
        try:
            status, payload = parent_end.recv()
        except EOFError as exc:
            raise ServingError(
                f"shard {index} died during startup (no ready message)"
            ) from exc
        parent_end.close()
        if status != "ok":
            raise ServingError(f"shard {index} failed to start: {payload}")
        return ShardHandle(
            index=index,
            process=process,
            host=self.host,
            port=int(payload["port"]),
        )

    def start(self) -> "EvaCluster":
        """Spawn the shard processes and wait for every one to bind its port."""
        if self._started:
            raise ServingError("the cluster is already started")
        pending = [
            (index, *self._launch_shard(index)) for index in range(self.shards)
        ]
        deadline = time.monotonic() + self.start_timeout
        try:
            for index, process, parent_end in pending:
                self._handles[index] = self._await_shard(
                    index, process, parent_end, deadline
                )
                self.ring.add(index)
        except BaseException:
            for _index, process, _conn in pending:
                if process.is_alive():
                    process.terminate()
            raise
        self._started = True
        if self._remote_endpoints:
            try:
                for host, port in self._remote_endpoints:
                    self.attach_shard(host, port)
            except BaseException:
                self.close()
                raise
        if self.health_interval is not None:
            self._health_thread = threading.Thread(
                target=self._health_loop, name="eva-cluster-health", daemon=True
            )
            self._health_thread.start()
        if self.scale_policy is not None and self.scale_interval is not None:
            self._scale_thread = threading.Thread(
                target=self._scale_loop, name="eva-cluster-scale", daemon=True
            )
            self._scale_thread.start()
        return self

    def close(self) -> None:
        """Terminate every shard and drop all cached connections."""
        if self._closed:
            return
        self._closed = True
        self._health_stop.set()
        self._scale_stop.set()
        if self._health_thread is not None:
            self._health_thread.join(timeout=10)
        if self._scale_thread is not None:
            self._scale_thread.join(timeout=10)
        with self._lock:
            clients = list(self._all_clients)
        with self._probe_lock:
            clients.extend(client for _gen, client in self._probe_clients.values())
            self._probe_clients.clear()
        for client in clients:
            try:
                client.close()
            except Exception:
                pass
        # Remote shards are attached, not owned: closing the front door
        # leaves their processes running wherever they live.
        for handle in self._handles.values():
            if handle.process is not None and handle.process.is_alive():
                handle.process.terminate()
        for handle in self._handles.values():
            if handle.process is not None:
                handle.process.join(timeout=10)

    def __enter__(self) -> "EvaCluster":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    # -- routing -----------------------------------------------------------------
    def shard_for(self, client_id: str) -> int:
        """The live shard index ``client_id`` currently routes to."""
        with self._lock:
            try:
                return self.ring.route(str(client_id))
            except LookupError as exc:
                raise ServingError("no live shards in the cluster") from exc

    def describe_route(self, client_id: str) -> Dict[str, Any]:
        """Routing info for one client (exposed as the wire ``route`` op)."""
        index = self.shard_for(client_id)
        handle = self._handles[index]
        return {
            "client_id": str(client_id),
            "shard": index,
            "pid": handle.pid,
            "port": handle.port,
        }

    def shard_infos(self) -> List[Dict[str, Any]]:
        """Descriptors of every shard handle, ordered by index."""
        return [self._handles[i].info() for i in sorted(self._handles)]

    def mark_dead(self, index: int) -> None:
        """Remove a shard from the ring (its clients reroute on next request)."""
        with self._lock:
            if index in self.ring:
                self.ring.remove(index)
                self._dead.append(index)

    def kill_shard(self, index: int) -> None:
        """Hard-kill one shard (test/chaos hook: SIGKILL, no cleanup)."""
        handle = self._handles.get(index)
        if handle is None:
            raise ServingError(f"no shard {index}")
        if handle.remote:
            raise ServingError(
                f"shard {index} is a remote endpoint ({handle.host}:{handle.port}); "
                "the router has no process to kill — drain it instead"
            )
        handle.process.kill()
        handle.process.join(timeout=10)
        self.mark_dead(index)

    # -- health / drain / rejoin ---------------------------------------------------
    def _ping_shard(self, handle: ShardHandle, timeout: float = 2.0) -> bool:
        """Liveness probe of a shard's TCP front over a persistent connection.

        The probe connection is cached per shard index (pinned JSON — probes
        never negotiate) and keyed by the shard's generation, so the steady
        state pays one ``ping`` round trip per probe instead of a fresh TCP
        connect and hello.  A probe failure on the cached connection retries
        once on a fresh one before declaring the shard down, so a stale
        socket (e.g. the shard restarted out-of-band) is not mistaken for a
        dead shard.  The result also lands on ``handle.last_probe_ok`` — the
        liveness signal of remote shards.
        """
        ok = self._probe_once(handle, timeout)
        handle.last_probe_ok = ok
        return ok

    def _probe_once(self, handle: ShardHandle, timeout: float) -> bool:
        from .netserver import ServingClient

        index = handle.index
        with self._lock:
            generation = self._generations.get(index, 0)
        with self._probe_lock:
            cached = self._probe_clients.get(index)
        if cached is not None and cached[0] == generation:
            try:
                return cached[1].ping()
            except Exception:
                pass  # stale or broken: fall through to a fresh connection
        self._drop_probe_client(index)
        try:
            client = ServingClient(
                handle.host, handle.port, timeout=timeout, wire="json"
            )
            ok = client.ping()
        except Exception:
            return False
        if not ok:
            try:
                client.close()
            except Exception:
                pass
            return False
        with self._probe_lock:
            stale = self._probe_clients.get(index)
            self._probe_clients[index] = (generation, client)
        if stale is not None:
            try:
                stale[1].close()
            except Exception:
                pass
        return True

    def _drop_probe_client(self, index: int) -> None:
        with self._probe_lock:
            cached = self._probe_clients.pop(index, None)
        if cached is not None:
            try:
                cached[1].close()
            except Exception:
                pass

    def check_health(self, probe: bool = True) -> List[Dict[str, Any]]:
        """Probe every shard; demote dead ones from the ring.  Returns a report.

        ``status`` per shard: ``live`` (in the ring, serving), ``drained``
        (process up, removed from the ring by an operator), or ``dead``
        (process gone or unresponsive — its clients reroute).  This is also
        the body of the periodic health loop and the wire ``health`` op.
        """
        report = []
        for index in sorted(self._handles):
            handle = self._handles[index]
            if handle.remote:
                # No process to ask: the probe IS the liveness signal (and
                # without probing, the last probe's verdict stands).
                responsive = self._ping_shard(handle) if probe else handle.alive()
                alive = responsive
            else:
                alive = handle.alive()
                responsive = alive and (self._ping_shard(handle) if probe else True)
            if not responsive and self._handles.get(index) is not handle:
                # The shard was respawned while we probed its predecessor;
                # judge the *current* process, not the corpse — otherwise a
                # stale probe would eject a freshly rejoined shard with no
                # automatic path back into the ring.
                handle = self._handles[index]
                alive = handle.alive()
                responsive = alive and (self._ping_shard(handle) if probe else True)
            with self._lock:
                in_ring = index in self.ring
                drained = index in self._drained
                if drained and not alive:
                    # A parked shard whose process died is dead, not
                    # "drained": monitoring reading stats() must see it in
                    # the dead list or no alert ever fires.
                    self._drained.remove(index)
                    if index not in self._dead:
                        self._dead.append(index)
                    drained = False
            if in_ring and not responsive:
                self.mark_dead(index)
                in_ring = False
            if drained and alive:
                status = "drained"
            elif in_ring and responsive:
                status = "live"
            else:
                status = "dead"
            report.append(
                {
                    "index": index,
                    "mode": handle.mode,
                    "pid": handle.pid,
                    "port": handle.port,
                    "alive": alive,
                    "responsive": responsive,
                    "in_ring": in_ring,
                    "status": status,
                }
            )
        return report

    def _health_loop(self) -> None:
        """Periodic health checks so dead shards leave the ring proactively
        (before any client request trips over them)."""
        while not self._health_stop.wait(self.health_interval):
            try:
                self.check_health()
            except Exception:  # pragma: no cover - monitoring must not die
                pass

    def drain_shard(self, index: int) -> Dict[str, Any]:
        """Remove a live shard from the ring without stopping its process.

        Its clients consistent-hash to new homes on their next request
        (encrypted sessions follow via the shared session store); the process
        keeps running so in-flight work finishes — the graceful half of
        :meth:`kill_shard`, for rolling restarts and maintenance.
        """
        handle = self._handles.get(index)
        if handle is None:
            raise ServingError(f"no shard {index}")
        with self._lock:
            if index in self.ring:
                if len(self.ring) == 1:
                    # Draining the last live shard is a full outage, not
                    # maintenance; demand an explicit kill instead.
                    raise ServingError(
                        f"refusing to drain shard {index}: it is the last "
                        "shard in the ring (rejoin another shard first)"
                    )
                self.ring.remove(index)
                if index not in self._drained:
                    self._drained.append(index)
            elif index not in self._drained:
                raise ServingError(f"shard {index} is not in the ring (already dead?)")
        return {"shard": index, "status": "drained", "pid": handle.pid}

    def rejoin_shard(self, index: int) -> Dict[str, Any]:
        """Return a shard to the ring, respawning its process if it died.

        The complement of :meth:`kill_shard` / :meth:`drain_shard`: a drained
        shard is simply re-added; a dead one is restarted from the cluster's
        registered program set first (same index, fresh process and port).
        Only ~1/N of clients remap onto the rejoined shard, and any of them
        with persisted sessions restore lazily from the shared session store
        — so membership can now grow back, not only shrink.
        """
        if not self._started:
            raise ServingError("the cluster has not been started")
        with self._rejoin_lock:
            # Re-check liveness under the lock: a concurrent rejoin of the
            # same index must find the winner's fresh process and not spawn
            # a duplicate (which would leak until the cluster closes).
            handle = self._handles.get(index)
            if handle is None:
                raise ServingError(f"no shard {index}")
            respawned = False
            if handle.remote:
                # There is no process to respawn: the endpoint must answer a
                # probe before it may return to the ring.
                if not self._ping_shard(handle):
                    raise ServingError(
                        f"remote shard {index} at {handle.host}:{handle.port} "
                        "is not responding; rejoin it once it is back up"
                    )
            elif not handle.alive():
                process, parent_end = self._launch_shard(index)
                deadline = time.monotonic() + self.start_timeout
                try:
                    handle = self._await_shard(index, process, parent_end, deadline)
                except BaseException:
                    # A failed respawn must not leak the half-started
                    # process (start() gives its pending shards the same
                    # courtesy); the old dead handle stays for a retry.
                    if process.is_alive():
                        process.terminate()
                    raise
                self._handles[index] = handle
                respawned = True
        with self._lock:
            if respawned:
                # Old cached connections point at the dead process; the
                # generation bump makes every thread reconnect lazily.
                self._generations[index] = self._generations.get(index, 0) + 1
            if index in self._dead:
                self._dead.remove(index)
            if index in self._drained:
                self._drained.remove(index)
            self.ring.add(index)
        return {
            "shard": index,
            "status": "rejoined",
            "respawned": respawned,
            "pid": handle.pid,
            "port": handle.port,
            "mode": handle.mode,
        }

    def attach_shard(self, host: str, port: int) -> Dict[str, Any]:
        """Attach a running remote shard at ``host:port`` to the ring.

        The endpoint (any :class:`~repro.serving.netserver.EvaTcpServer`,
        typically ``repro.cli serve`` on another host) must answer a probe
        and serve every program registered with this cluster.  Attaching a
        ``host:port`` that is already known simply returns that shard to the
        ring (the live counterpart of :meth:`rejoin_shard` for endpoints the
        router cannot respawn).  Exposed on the wire as the ``join`` op.
        """
        if not self._started:
            raise ServingError("the cluster has not been started")
        host, port = str(host), int(port)
        from .netserver import ServingClient

        try:
            with ServingClient(
                host, port, timeout=self.request_timeout, wire="json"
            ) as probe:
                if not probe.ping():
                    raise TransportError("endpoint did not answer the ping")
                remote_programs = set(probe.programs())
        except Exception as exc:
            raise ServingError(
                f"cannot attach shard at {host}:{port}: {exc}"
            ) from exc
        missing = sorted(
            {spec.name for spec in self._programs} - remote_programs
        )
        if missing:
            raise ServingError(
                f"remote shard at {host}:{port} does not serve the cluster's "
                f"registered programs (missing {missing}); start it with the "
                "same program set"
            )
        with self._rejoin_lock, self._lock:
            for handle in self._handles.values():
                if handle.remote and (handle.host, handle.port) == (host, port):
                    index = handle.index
                    handle.last_probe_ok = True
                    break
            else:
                index = max(self._handles, default=self.shards - 1) + 1
                self._handles[index] = ShardHandle(
                    index=index, process=None, host=host, port=port
                )
            if index in self._dead:
                self._dead.remove(index)
            if index in self._drained:
                self._drained.remove(index)
            self.ring.add(index)
        self.telemetry.inc("cluster.shards.joined")
        return {
            "shard": index,
            "status": "joined",
            "mode": "remote",
            "host": host,
            "port": port,
        }

    def add_shard(self) -> Dict[str, Any]:
        """Spawn one brand-new local shard and add it to the ring.

        The scale-up primitive for when no parked (drained or dead) shard is
        available to rejoin: allocates the next free index, spawns a fresh
        process with the cluster's registered program set, and waits for it
        to bind before ring membership changes.
        """
        if not self._started:
            raise ServingError("the cluster has not been started")
        with self._rejoin_lock:
            with self._lock:
                index = max(self._handles, default=self.shards - 1) + 1
            process, parent_end = self._launch_shard(index)
            deadline = time.monotonic() + self.start_timeout
            try:
                handle = self._await_shard(index, process, parent_end, deadline)
            except BaseException:
                if process.is_alive():
                    process.terminate()
                raise
            self._handles[index] = handle
        with self._lock:
            self.ring.add(index)
        return {
            "shard": index,
            "status": "added",
            "mode": "local",
            "pid": handle.pid,
            "port": handle.port,
        }

    # -- autoscaling ---------------------------------------------------------------
    def _observed_queue_depth(self) -> float:
        """Fleet-wide queue depth: queued jobs summed over live shards."""
        total = 0.0
        for index in self._live_shards():
            try:
                stats = self._client_for(index).stats()
            except _FAILOVER_ERRORS:
                self._note_failure(index)
                continue
            engine = stats.get("engine") or {}
            total += float(engine.get("queued", 0) or 0)
        return total

    def scale_tick(self, queue_depth: Optional[float] = None) -> Optional[Dict[str, Any]]:
        """One autoscaler observation; returns the action taken (or None).

        ``queue_depth`` defaults to the observed fleet-wide depth; tests (and
        operators simulating load) may inject a value.  The decision applies
        the policy's two-sided hysteresis — a watermark must stay breached
        for ``observations`` consecutive ticks, any tick in between the
        watermarks resets both streaks — and the cooldown, so a load
        oscillating across a watermark cannot flap membership.
        """
        policy = self.scale_policy
        if policy is None:
            raise ServingError("the cluster has no scale policy")
        if queue_depth is None:
            queue_depth = self._observed_queue_depth()
        queue_depth = float(queue_depth)
        self.telemetry.set_gauge("cluster.scale.queue_depth", queue_depth)
        if queue_depth >= policy.high_queue_depth:
            self._scale_above += 1
            self._scale_below = 0
        elif queue_depth <= policy.low_queue_depth:
            self._scale_below += 1
            self._scale_above = 0
        else:
            self._scale_above = 0
            self._scale_below = 0
        now = time.monotonic()
        cooling = (
            self._last_scale_at is not None
            and now - self._last_scale_at < policy.cooldown
        )
        with self._lock:
            live = list(self.ring.nodes)
        self.telemetry.set_gauge("cluster.scale.live_shards", len(live))
        if cooling:
            return None
        if self._scale_above >= policy.observations and len(live) < policy.max_shards:
            self._scale_above = 0
            action = self._scale_up()
            if action is not None:
                self._last_scale_at = now
            return action
        if self._scale_below >= policy.observations and len(live) > policy.min_shards:
            self._scale_below = 0
            action = self._scale_down(live)
            if action is not None:
                self._last_scale_at = now
            return action
        return None

    def _scale_up(self) -> Optional[Dict[str, Any]]:
        """Add capacity: rejoin a parked local shard, else spawn a new one."""
        with self._lock:
            parked = sorted(
                index
                for index in self._drained + self._dead
                if not self._handles[index].remote
            )
        try:
            if parked:
                result = dict(self.rejoin_shard(parked[0]))
                reason = "rejoin"
            else:
                result = dict(self.add_shard())
                reason = "spawn"
        except ServingError:
            return None  # e.g. a dead shard that fails to respawn; retry next tick
        self.telemetry.inc("cluster.scale.up", reason=reason)
        result["action"] = "up"
        result["reason"] = reason
        return result

    def _scale_down(self, live: List[int]) -> Optional[Dict[str, Any]]:
        """Shed capacity by draining the highest-index live *local* shard.

        Draining (not killing) keeps the process parked so the next scale-up
        is a cheap rejoin; remote shards are never scaled down — the router
        did not provision them, so it does not decommission them.
        """
        local = [index for index in live if not self._handles[index].remote]
        if not local:
            return None
        try:
            result = dict(self.drain_shard(max(local)))
        except ServingError:
            return None  # e.g. it became the last ring member; retry next tick
        self.telemetry.inc("cluster.scale.down", reason="drain")
        result["action"] = "down"
        result["reason"] = "drain"
        return result

    def _scale_loop(self) -> None:
        """Background watermark watcher (``scale_interval`` seconds per tick)."""
        while not self._scale_stop.wait(self.scale_interval):
            try:
                self.scale_tick()
            except Exception:  # pragma: no cover - scaling must not die
                pass

    # -- request plumbing ---------------------------------------------------------
    def _client_for(self, index: int):
        """Thread-local cached connection to one shard (created on demand).

        Connections are cached per (thread, shard, *generation*): a respawned
        shard bumps its generation, so connections to the dead predecessor
        are dropped instead of reused.
        """
        from .netserver import ServingClient

        cache = getattr(self._local, "clients", None)
        if cache is None:
            cache = self._local.clients = {}
        with self._lock:
            generation = self._generations.get(index, 0)
        cached = cache.get(index)
        if cached is not None:
            cached_generation, client = cached
            if cached_generation == generation:
                return client
            self._drop_client(index)
        handle = self._handles[index]
        client = ServingClient(
            handle.host, handle.port, timeout=self.request_timeout, wire=self.wire
        )
        cache[index] = (generation, client)
        with self._lock:
            self._all_clients.add(client)
        return client

    def _drop_client(self, index: int) -> None:
        cache = getattr(self._local, "clients", None)
        if cache is None:
            return
        cached = cache.pop(index, None)
        if cached is not None:
            _generation, client = cached
            try:
                client.close()
            except Exception:
                pass
            with self._lock:
                self._all_clients.discard(client)

    def _note_failure(self, index: int) -> None:
        """A request to ``index`` failed at the transport level.

        A dead process is removed from the ring so its clients reroute; a
        live process (transient connection failure) stays — the retry loop
        reconnects to it.
        """
        self._drop_client(index)
        handle = self._handles.get(index)
        if handle is None:
            return
        if handle.remote:
            # A remote shard has no process to ask; one failed probe after a
            # transport error is the eviction signal (transient connection
            # loss to a live endpoint answers the probe and stays routable).
            if not self._ping_shard(handle):
                self.mark_dead(index)
        elif not handle.alive():
            self.mark_dead(index)

    def _call(self, client_id: str, fn: Callable[[Any], Any]) -> Any:
        """Route ``client_id``, run ``fn(connection)``, fail over on dead shards."""
        if not self._started:
            raise ServingError("the cluster has not been started")
        last_error: Optional[BaseException] = None
        for _attempt in range(self.retries + 1):
            index = self.shard_for(client_id)
            try:
                return fn(self._client_for(index))
            except _FAILOVER_ERRORS as exc:
                last_error = exc
                self._note_failure(index)
        raise ServingError(
            f"request for client {client_id!r} failed after "
            f"{self.retries + 1} attempts: {last_error}"
        )

    # -- client API ----------------------------------------------------------------
    def request(
        self,
        name: str,
        inputs: Dict[str, Any],
        client_id: str = "default",
        output_size: Optional[int] = None,
        trace: bool = False,
        deadline_ms: Optional[float] = None,
        slo_class: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Plaintext request: routed to the client's shard, decrypted outputs.

        With ``trace`` the trace id is minted *here*, before the retry loop,
        so a request that fails over after a shard death keeps one id across
        attempts — the spans of the successful attempt land on the new shard
        under the same trace.  The minted id is kept as ``last_trace_id`` so
        the caller can look the trace up afterwards.  ``deadline_ms`` and
        ``slo_class`` ride the envelope to the owning shard unchanged.
        """
        trace_id = new_trace_id() if trace else None
        self.last_trace_id = trace_id
        return self._call(
            client_id,
            lambda client: client.submit(
                name,
                inputs,
                client_id=client_id,
                output_size=output_size,
                trace=trace,
                trace_id=trace_id,
                deadline_ms=deadline_ms,
                slo_class=slo_class,
            ),
        )

    def create_session(
        self, name: str, client_kit: Any, client_id: Optional[str] = None
    ) -> Dict[str, Any]:
        """Register a client's evaluation keys on its shard (persisted when
        the cluster has a session directory)."""
        client_id = client_id or getattr(client_kit, "client_id", "default")
        return self._call(
            client_id,
            lambda client: client.create_session(name, client_kit, client_id=client_id),
        )

    def submit_bundle(
        self,
        name: str,
        bundle_wire: Dict[str, Any],
        client_id: str = "default",
        trace: bool = False,
        deadline_ms: Optional[float] = None,
        slo_class: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Pre-encrypted request; returns wire-encoded ciphertext outputs."""
        trace_id = new_trace_id() if trace else None
        self.last_trace_id = trace_id
        return self._call(
            client_id,
            lambda client: client.submit_bundle(
                name,
                bundle_wire,
                client_id=client_id,
                trace=trace,
                trace_id=trace_id,
                deadline_ms=deadline_ms,
                slo_class=slo_class,
            ),
        )

    def request_encrypted(
        self,
        name: str,
        client_kit: Any,
        inputs: Dict[str, Any],
        client_id: Optional[str] = None,
        trace: bool = False,
        deadline_ms: Optional[float] = None,
        slo_class: Optional[str] = None,
    ) -> Dict[str, Any]:
        """End-to-end encrypted request through the client's shard.

        With ``trace`` the bundle submission is traced under one id (minted
        before the failover retry loop, like :meth:`request`), available
        afterwards as ``last_trace_id``.  SLO fields ride the envelope
        identically to the plaintext path.
        """
        client_id = client_id or getattr(client_kit, "client_id", "default")
        bundle = client_kit.encrypt_inputs(inputs)
        reply = self.submit_bundle(
            name,
            client_kit.bundle_to_wire(bundle),
            client_id=client_id,
            trace=trace,
            deadline_ms=deadline_ms,
            slo_class=slo_class,
        )
        return client_kit.decrypt_outputs(client_kit.outputs_from_wire(reply))

    # -- introspection -------------------------------------------------------------
    def programs(self) -> List[str]:
        """Registered program names (identical on every shard)."""
        return self._call("__cluster-meta__", lambda client: client.programs())

    def stats(self) -> Dict[str, Any]:
        """Cluster-level view plus the per-shard server stats of live shards."""
        with self._lock:
            live = list(self.ring.nodes)
            dead = list(self._dead)
            drained = list(self._drained)
        shard_stats: Dict[str, Any] = {}
        for index in live:
            try:
                shard_stats[str(index)] = self._client_for(index).stats()
            except _FAILOVER_ERRORS:
                self._note_failure(index)
        return {
            "shards": self.shards,
            "live": live,
            "dead": dead,
            "drained": drained,
            "session_dir": self.session_dir,
            "artifact_dir": self.artifact_dir,
            "health_interval": self.health_interval,
            "fairness": (
                self.fairness is not None and self.fairness.enabled
            ),
            "per_shard": shard_stats,
        }

    # -- telemetry fan-out ---------------------------------------------------------
    def _live_shards(self) -> List[int]:
        with self._lock:
            return list(self.ring.nodes)

    def shard_metrics(self) -> Dict[str, Dict[str, Any]]:
        """Each live shard's registry snapshot, keyed by shard index."""
        snapshots: Dict[str, Dict[str, Any]] = {}
        for index in self._live_shards():
            try:
                snapshots[str(index)] = self._client_for(index).metrics()["metrics"]
            except _FAILOVER_ERRORS:
                self._note_failure(index)
        return snapshots

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The cluster-wide snapshot: shard registries aggregated into one.

        Every series appears per-shard (labeled ``shard=<i>``) and summed
        into an unlabeled aggregate, with histogram percentiles recomputed
        from the merged buckets.  The cluster's own control-plane registry
        (``cluster.scale.*``, ``cluster.shards.joined``) rides along under
        ``shard=cluster``; the TCP router adds its own registry on top when
        serving the wire ``metrics`` op.
        """
        snapshots = self.shard_metrics()
        snapshots["cluster"] = self.telemetry.registry.snapshot()
        return aggregate_snapshots(snapshots)

    def shard_traces(self, trace_id: str) -> List[Optional[Dict[str, Any]]]:
        """Each live shard's view of one trace (None entries for unknown)."""
        parts: List[Optional[Dict[str, Any]]] = []
        for index in self._live_shards():
            try:
                parts.append(self._client_for(index).trace_of(trace_id))
            except _FAILOVER_ERRORS:
                self._note_failure(index)
        return parts

    def trace_of(self, trace_id: str) -> Optional[Dict[str, Any]]:
        """One trace merged across shards (spans in timestamp order)."""
        return merge_traces(self.shard_traces(trace_id))

    def shard_slow(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Every live shard's recent slow requests, merged (unsorted)."""
        records: List[Dict[str, Any]] = []
        for index in self._live_shards():
            try:
                records.extend(self._client_for(index).slow(limit))
            except _FAILOVER_ERRORS:
                self._note_failure(index)
        return records

    def slow_requests(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Cluster-wide slow requests, newest first."""
        records = self.shard_slow(limit)
        records.sort(key=lambda record: record.get("ts", 0.0), reverse=True)
        if limit is not None:
            records = records[: max(int(limit), 0)]
        return records
