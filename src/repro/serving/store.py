"""Disk-backed persistence of client evaluation-key material.

The session caches in :mod:`repro.serving.sessions` hold *live* backend
contexts, so every session dies with its process: a server restart — or, in a
sharded deployment, the loss of one shard — forces every client back through
``create_session``.  The :class:`SessionStore` removes that coupling by
persisting the exported evaluation-key blob (the JSON-able dictionary from
``ClientKit.export_evaluation_keys()``, which never contains the secret key)
to disk, keyed by the client identity plus everything key generation depends
on: the encryption parameters and the rotation steps of the compilation.

Any process that can read the store directory can then lazily rebuild an
evaluation context for a returning client via
``HomomorphicBackend.create_evaluation_context`` — which is exactly what
:class:`~repro.serving.server.EvaServer` does when a pre-encrypted bundle
arrives for a client it has never seen.  Sessions therefore survive both a
full server restart and a shard failure followed by a reroute (the new shard
reads the blob the old shard persisted).

Records are single JSON files written atomically (temp file + ``os.replace``),
so concurrent shard processes sharing one directory never observe a torn
record; the last writer of a key wins, which is safe for the key material
because every writer of one key holds the same client's blob.  The record's
``programs`` list is advisory metadata: the in-process lock merges names
saved by one process, but two *processes* saving the same key concurrently
may keep only the last writer's list.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..core.compiler import CompilationResult
from ..core.serialization.packing import jsonable_blobs

#: Format version stamped into every record.
STORE_VERSION = 1


def atomic_write_json(root: Path, path: Path, record: Dict[str, Any]) -> None:
    """Publish ``record`` at ``path`` atomically (temp file + ``os.replace``).

    The write discipline shared by every on-disk store of the serving layer
    (:class:`SessionStore`, :class:`~repro.serving.artifacts.ArtifactCache`):
    a concurrent reader sees nothing, the old record, or the new one — never
    a torn file.  ``root`` must be on the same filesystem as ``path`` (the
    temp file is created there so the final rename stays atomic).
    """
    fd, tmp_name = tempfile.mkstemp(dir=root, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(record, handle)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def session_digest(compilation: CompilationResult, client_id: str) -> str:
    """Stable digest of (client, keygen-relevant parameters) for one session.

    Mirrors :func:`repro.serving.sessions.session_key`: two compilations with
    the same encryption parameters *and* rotation steps can share key
    material, anything else cannot.
    """
    parameters = compilation.parameters
    key = [
        str(client_id),
        int(parameters.poly_modulus_degree),
        [int(b) for b in parameters.coeff_modulus_bits],
        sorted(int(s) for s in compilation.rotation_steps),
    ]
    return hashlib.sha256(json.dumps(key, separators=(",", ":")).encode("utf-8")).hexdigest()[:32]


class SessionStore:
    """A directory of persisted evaluation-key records, one JSON file each.

    The store is deliberately dumb: no index, no locking protocol beyond
    atomic whole-file replacement.  That makes it safe to share between the
    shard processes of an :class:`~repro.serving.cluster.EvaCluster` (and
    across full server restarts) without any coordination.
    """

    def __init__(self, root: Union[str, Path], ttl: Optional[float] = None) -> None:
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive seconds (or None to disable)")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Optional record lifetime in seconds: reads treat older records as
        #: missing, and :meth:`prune` deletes them.  Without a TTL a
        #: long-lived ``--session-dir`` grows one record per (client,
        #: parameters) pair forever.
        self.ttl = float(ttl) if ttl is not None else None
        self._lock = threading.Lock()

    def _expired(self, record: Dict[str, Any], max_age: Optional[float] = None) -> bool:
        max_age = max_age if max_age is not None else self.ttl
        if max_age is None:
            return False
        saved_at = record.get("saved_at")
        if not isinstance(saved_at, (int, float)):
            return True
        return (time.time() - float(saved_at)) > float(max_age)

    # -- paths -------------------------------------------------------------------
    def path_for(self, client_id: str, compilation: CompilationResult) -> Path:
        """The store file path for a (client, compilation) record."""
        return self.root / f"{session_digest(compilation, client_id)}.json"

    # -- write -------------------------------------------------------------------
    def save(
        self,
        client_id: str,
        compilation: CompilationResult,
        evaluation_keys: Dict[str, Any],
        program: Optional[str] = None,
    ) -> Path:
        """Persist ``evaluation_keys`` for ``(client, compilation)``.

        Re-saving the same session merges the ``program`` name into the
        record's program list (several registered programs may share one set
        of encryption parameters and hence one session).
        """
        if not isinstance(evaluation_keys, dict):
            raise TypeError(
                "evaluation_keys must be the JSON-able blob from "
                "export_evaluation_keys(), got "
                f"{type(evaluation_keys).__name__}"
            )
        path = self.path_for(client_id, compilation)
        with self._lock:
            programs = set()
            existing = self._read(path)
            if existing is not None:
                programs.update(existing.get("programs", ()))
            if program:
                programs.add(str(program))
            parameters = compilation.parameters
            record = {
                "version": STORE_VERSION,
                "client_id": str(client_id),
                "saved_at": time.time(),
                "parameters": {
                    "poly_modulus_degree": int(parameters.poly_modulus_degree),
                    "coeff_modulus_bits": [int(b) for b in parameters.coeff_modulus_bits],
                    "rotation_steps": sorted(int(s) for s in compilation.rotation_steps),
                },
                "programs": sorted(programs),
                # Keys received over the binary wire carry raw (memoryview)
                # packed records; the on-disk store stays plain JSON.
                "evaluation_keys": jsonable_blobs(evaluation_keys),
            }
            atomic_write_json(self.root, path, record)
        return path

    # -- read --------------------------------------------------------------------
    def load(
        self, client_id: str, compilation: CompilationResult
    ) -> Optional[Dict[str, Any]]:
        """The persisted key blob for ``(client, compilation)``, or ``None``.

        With a TTL configured, records past it read as missing (and are
        deleted opportunistically): an expired session must force the client
        back through ``create_session``, not silently serve stale keys.
        """
        path = self.path_for(client_id, compilation)
        record = self._read(path)
        if record is None:
            return None
        if self._expired(record):
            # Delete under the lock, after re-reading: a concurrent save()
            # may have just republished fresh keys at this path, and deleting
            # those would silently destroy a live session.  (save() holds the
            # same lock, so the in-process race is closed; a cross-process
            # saver stamps a fresh saved_at, which the re-read observes.)
            with self._lock:
                current = self._read(path)
                if current is not None and self._expired(current):
                    try:
                        path.unlink()
                    except OSError:
                        pass
            return None
        keys = record.get("evaluation_keys")
        return keys if isinstance(keys, dict) else None

    @staticmethod
    def _read(path: Path) -> Optional[Dict[str, Any]]:
        """One record, or ``None`` for missing/corrupt/incompatible files."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(record, dict) or record.get("version") != STORE_VERSION:
            return None
        return record

    # -- maintenance -------------------------------------------------------------
    def records(self) -> List[Dict[str, Any]]:
        """Metadata of every readable record (key blobs omitted)."""
        found = []
        for path in sorted(self.root.glob("*.json")):
            record = self._read(path)
            if record is None:
                continue
            found.append(
                {
                    "client_id": record.get("client_id"),
                    "programs": record.get("programs", []),
                    "parameters": record.get("parameters", {}),
                    "saved_at": record.get("saved_at"),
                    "path": str(path),
                }
            )
        return found

    def prune(self, max_age: Optional[float] = None) -> int:
        """Delete records older than ``max_age`` seconds (defaults to the TTL).

        The session GC for long-lived ``--session-dir`` directories: without
        it the store grows one record per (client, parameters) pair forever.
        Corrupt records are aged by file mtime so they get swept too.
        Returns the number of files removed; a no-op without a bound.
        """
        max_age = max_age if max_age is not None else self.ttl
        if max_age is None:
            return 0
        removed = 0
        with self._lock:
            for path in self.root.glob("*.json"):
                record = self._read(path)
                if record is None:
                    # Unreadable records degrade to misses anyway; sweep them
                    # once they are old by the filesystem clock.
                    try:
                        expired = (time.time() - path.stat().st_mtime) > float(max_age)
                    except OSError:
                        continue
                else:
                    expired = self._expired(record, max_age)
                if expired:
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        pass
        return removed

    def delete(self, client_id: str) -> int:
        """Drop every persisted session of ``client_id`` (e.g. key rotation)."""
        count = 0
        with self._lock:
            for path in self.root.glob("*.json"):
                record = self._read(path)
                if record is not None and record.get("client_id") == str(client_id):
                    try:
                        path.unlink()
                        count += 1
                    except OSError:
                        pass
        return count

    def __len__(self) -> int:
        return sum(1 for path in self.root.glob("*.json") if self._read(path) is not None)

    def summary(self) -> Dict[str, object]:
        """Cheap monitoring view: counts files without parsing key blobs.

        Real CKKS key blobs dominate record size, and ``summary`` runs on
        every ``EvaServer.stats()`` call — so this must not read them.  The
        count may include records :meth:`records` would reject as corrupt;
        use :meth:`records` (which parses everything) for the exact view.
        """
        return {
            "root": str(self.root),
            "ttl": self.ttl,
            "records": sum(1 for _ in self.root.glob("*.json")),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SessionStore root={str(self.root)!r}>"
