"""Per-client session cache of backend contexts and generated keys.

Creating a backend context and generating its secret/public/relinearization/
Galois keys is the other per-request cost a one-shot ``Executor.execute``
pays besides compilation.  A *session* pins that work to a
``(client, encryption parameters, rotation steps)`` triple: the first request
of a session builds the context and keys, every later request reuses them.
Distinct clients never share a session — in a real deployment each client
owns its own secret key, so contexts must not leak across clients even when
their encryption parameters coincide.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..backend.hisa import BackendContext, HomomorphicBackend
from ..core.compiler import CompilationResult
from .registry import CacheStats

SessionKey = Tuple[str, int, Tuple[int, ...], Tuple[int, ...]]


def session_key(compilation: CompilationResult, client_id: str = "default") -> SessionKey:
    """The cache key of a session: client plus everything keygen depends on."""
    parameters = compilation.parameters
    return (
        str(client_id),
        parameters.poly_modulus_degree,
        tuple(parameters.coeff_modulus_bits),
        tuple(sorted(compilation.rotation_steps)),
    )


@dataclass
class Session:
    """A cached context (with keys) and its bookkeeping."""

    key: SessionKey
    context: BackendContext
    created_at: float
    keygen_seconds: float
    hits: int = 0
    #: True when the context was supplied by the client (evaluation keys only,
    #: no secret key) rather than generated server-side.  Client-keyed
    #: sessions are the paper's deployment model: the server can evaluate but
    #: never decrypt.
    client_keyed: bool = False
    #: Serializes executions sharing this context: backend contexts (RNG state,
    #: op counters, real key material) are not safe for concurrent evaluation.
    lock: threading.Lock = field(default_factory=threading.Lock)

    @property
    def client_id(self) -> str:
        """The owning client's id."""
        return self.key[0]


class SessionManager:
    """LRU cache of live backend sessions keyed by :func:`session_key`.

    ``capacity`` bounds the number of concurrently cached sessions (each one
    holds key material and, for real backends, sizeable Galois keys); the
    least-recently-used session is dropped when the bound is exceeded.
    """

    def __init__(self, backend: HomomorphicBackend, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError("session capacity must be at least 1")
        self.backend = backend
        self.capacity = capacity
        self.stats = CacheStats()
        self._sessions: "OrderedDict[SessionKey, Session]" = OrderedDict()
        #: Client-keyed (attached) sessions live in their own namespace so a
        #: client that registers evaluation keys for the encrypted path keeps
        #: its independent server-generated session for plaintext requests.
        self._attached: "OrderedDict[SessionKey, Session]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions) + len(self._attached)

    def get(
        self, compilation: CompilationResult, client_id: str = "default"
    ) -> BackendContext:
        """Return a keyed context for ``(compilation, client)``, reusing if cached."""
        return self.get_session(compilation, client_id).context

    def get_session(
        self, compilation: CompilationResult, client_id: str = "default"
    ) -> Session:
        """The cached session for (compilation, client), creating it on miss."""
        key = session_key(compilation, client_id)
        with self._lock:
            session = self._sessions.get(key)
            if session is not None:
                self._sessions.move_to_end(key)
                self.stats.hits += 1
                session.hits += 1
                return session
            self.stats.misses += 1
        # Keygen runs outside the lock: it is the expensive part and other
        # sessions should not stall behind it.
        start = time.perf_counter()
        context = self.backend.create_context(compilation.parameters)
        context.generate_keys()
        keygen_seconds = time.perf_counter() - start
        session = Session(
            key=key,
            context=context,
            created_at=time.time(),
            keygen_seconds=keygen_seconds,
        )
        with self._lock:
            existing = self._sessions.get(key)
            if existing is not None:
                # A concurrent request built the same session first; reuse it
                # so every caller sees one context per session.
                self._sessions.move_to_end(key)
                existing.hits += 1
                return existing
            self._sessions[key] = session
            while len(self._sessions) > self.capacity:
                self._sessions.popitem(last=False)
                self.stats.evictions += 1
        return session

    def attach(
        self,
        compilation: CompilationResult,
        client_id: str,
        context: BackendContext,
    ) -> Session:
        """Install a client-supplied evaluation context for the encrypted path.

        The context must hold no secret key (the client keeps that).  Attached
        sessions live in their own namespace: pre-encrypted bundles evaluate
        under the client's own evaluation keys (the server can never decrypt
        them), while the client's plaintext requests — if it makes any — keep
        using an independent server-generated session.
        """
        if getattr(context, "has_secret_key", True):
            raise ValueError(
                "attached sessions must use evaluation-only contexts "
                "(no secret key); derive one with ClientKit.evaluation_context()"
            )
        key = session_key(compilation, client_id)
        session = Session(
            key=key,
            context=context,
            created_at=time.time(),
            keygen_seconds=0.0,
            client_keyed=True,
        )
        with self._lock:
            self._attached[key] = session
            self._attached.move_to_end(key)
            while len(self._attached) > self.capacity:
                self._attached.popitem(last=False)
                self.stats.evictions += 1
        return session

    def get_attached(
        self, compilation: CompilationResult, client_id: str
    ) -> Session:
        """Return the client-keyed session for ``(compilation, client)``.

        Unlike :meth:`get_session` this never generates keys server-side: a
        missing or server-keyed session is an error, because a pre-encrypted
        bundle can only be evaluated under the keys its client exported.
        """
        key = session_key(compilation, client_id)
        with self._lock:
            session = self._attached.get(key)
            if session is not None:
                self._attached.move_to_end(key)
                self.stats.hits += 1
                session.hits += 1
                return session
            self.stats.misses += 1
        raise LookupError(
            f"client {client_id!r} has not registered evaluation keys for this "
            "program (create a session first)"
        )

    def invalidate(self, client_id: str) -> int:
        """Drop every session of ``client_id`` (e.g. on key rotation)."""
        count = 0
        with self._lock:
            for store in (self._sessions, self._attached):
                doomed = [k for k in store if k[0] == str(client_id)]
                for key in doomed:
                    del store[key]
                count += len(doomed)
        return count

    def clear(self) -> None:
        """Release every cached session."""
        with self._lock:
            self._sessions.clear()
            self._attached.clear()

    def summary(self) -> Dict[str, object]:
        """Session-cache counters, for stats() and telemetry absorption."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "sessions": len(self._sessions) + len(self._attached),
                "clients": len(
                    {k[0] for k in self._sessions} | {k[0] for k in self._attached}
                ),
                "client_keyed": len(self._attached),
                **self.stats.summary(),
            }
