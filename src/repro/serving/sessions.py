"""Per-client session cache of backend contexts and generated keys.

Creating a backend context and generating its secret/public/relinearization/
Galois keys is the other per-request cost a one-shot ``Executor.execute``
pays besides compilation.  A *session* pins that work to a
``(client, encryption parameters, rotation steps)`` triple: the first request
of a session builds the context and keys, every later request reuses them.
Distinct clients never share a session — in a real deployment each client
owns its own secret key, so contexts must not leak across clients even when
their encryption parameters coincide.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..backend.hisa import BackendContext, HomomorphicBackend
from ..core.compiler import CompilationResult
from .registry import CacheStats

SessionKey = Tuple[str, int, Tuple[int, ...], Tuple[int, ...]]


def session_key(compilation: CompilationResult, client_id: str = "default") -> SessionKey:
    """The cache key of a session: client plus everything keygen depends on."""
    parameters = compilation.parameters
    return (
        str(client_id),
        parameters.poly_modulus_degree,
        tuple(parameters.coeff_modulus_bits),
        tuple(sorted(compilation.rotation_steps)),
    )


@dataclass
class Session:
    """A cached context (with keys) and its bookkeeping."""

    key: SessionKey
    context: BackendContext
    created_at: float
    keygen_seconds: float
    hits: int = 0
    #: Serializes executions sharing this context: backend contexts (RNG state,
    #: op counters, real key material) are not safe for concurrent evaluation.
    lock: threading.Lock = field(default_factory=threading.Lock)

    @property
    def client_id(self) -> str:
        return self.key[0]


class SessionManager:
    """LRU cache of live backend sessions keyed by :func:`session_key`.

    ``capacity`` bounds the number of concurrently cached sessions (each one
    holds key material and, for real backends, sizeable Galois keys); the
    least-recently-used session is dropped when the bound is exceeded.
    """

    def __init__(self, backend: HomomorphicBackend, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError("session capacity must be at least 1")
        self.backend = backend
        self.capacity = capacity
        self.stats = CacheStats()
        self._sessions: "OrderedDict[SessionKey, Session]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def get(
        self, compilation: CompilationResult, client_id: str = "default"
    ) -> BackendContext:
        """Return a keyed context for ``(compilation, client)``, reusing if cached."""
        return self.get_session(compilation, client_id).context

    def get_session(
        self, compilation: CompilationResult, client_id: str = "default"
    ) -> Session:
        key = session_key(compilation, client_id)
        with self._lock:
            session = self._sessions.get(key)
            if session is not None:
                self._sessions.move_to_end(key)
                self.stats.hits += 1
                session.hits += 1
                return session
            self.stats.misses += 1
        # Keygen runs outside the lock: it is the expensive part and other
        # sessions should not stall behind it.
        start = time.perf_counter()
        context = self.backend.create_context(compilation.parameters)
        context.generate_keys()
        keygen_seconds = time.perf_counter() - start
        session = Session(
            key=key,
            context=context,
            created_at=time.time(),
            keygen_seconds=keygen_seconds,
        )
        with self._lock:
            existing = self._sessions.get(key)
            if existing is not None:
                # A concurrent request built the same session first; reuse it
                # so every caller sees one context per session.
                self._sessions.move_to_end(key)
                existing.hits += 1
                return existing
            self._sessions[key] = session
            while len(self._sessions) > self.capacity:
                self._sessions.popitem(last=False)
                self.stats.evictions += 1
        return session

    def invalidate(self, client_id: str) -> int:
        """Drop every session of ``client_id`` (e.g. on key rotation)."""
        with self._lock:
            doomed = [k for k in self._sessions if k[0] == str(client_id)]
            for key in doomed:
                del self._sessions[key]
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._sessions.clear()

    def summary(self) -> Dict[str, object]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "sessions": len(self._sessions),
                "clients": len({k[0] for k in self._sessions}),
                **self.stats.summary(),
            }
