"""Slot batching: pack independent small requests into one ciphertext.

A CKKS ciphertext carries ``vec_size`` slots, but many workloads (Section 8's
statistical/ML examples) use vectors far smaller than the slot count the
security level forces.  One-shot execution wastes the spare slots by
replicating the input.  The batcher instead splits the slots into *lanes* of a
common power-of-two width, places one request per lane, executes the program
once, and demultiplexes each lane back out — k requests for one ciphertext's
worth of homomorphic work.

Packing is sound in two cases, both read off the compilation's metadata:

* *slotwise* programs — no instruction reads across slot boundaries, so any
  lane width that fits the requests (and the constants) works;
* *lane-lowered* programs — the compiler ran
  :class:`~repro.core.rewrite.LaneLoweringPass` at a fixed ``lane_width``,
  rewriting every rotation (and expanded SUM) into its masked lane-local
  form.  The lane width is then a compiler guarantee carried on
  :class:`~repro.core.compiler.CompilationResult`, not something this module
  re-derives from opcodes, and it is *fixed*: requests wider than the
  compiled lane cannot be packed.

Program constants are lane-constrained either way: a constant vector tiles
with its own period during encoding, so every constant's length must divide
the lane width for each lane to see the same constant a solo run would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..core.compiler import CompilationResult
from ..core.ir import Program
from ..core.types import Op
from ..errors import ServingError

#: Opcodes that read or write across slot boundaries (before lane lowering).
_CROSS_SLOT_OPS = (Op.ROTATE_LEFT, Op.ROTATE_RIGHT, Op.SUM)


def pow2_ceil(value: int) -> int:
    """Smallest power of two >= value (lane and request widths are pow2)."""
    result = 1
    while result < value:
        result <<= 1
    return result


def linger_budget(
    slo_class: str,
    batch_window: float,
    deadline_remaining: Optional[float] = None,
    execute_estimate: float = 0.0,
) -> float:
    """Seconds batch formation may linger for one request, given its SLO.

    The DiLaServe-style batch-vs-solo decision, made per request against its
    deadline rather than globally:

    * ``tight`` requests are never held back to fill lanes — a batch worth
      forming for a relaxed client is worth skipping for a tight one, so the
      budget is 0 (already-queued same-group jobs still ride along for free).
    * ``relaxed`` requests always amortize: the full ``batch_window``, even
      when a deadline leaves less slack — a relaxed client asked for
      throughput, not latency.
    * ``standard`` requests linger only as long as their deadline allows:
      ``batch_window`` capped at ``deadline_remaining - execute_estimate``
      (a request whose slack just covers execution goes solo, not rejected).

    ``deadline_remaining`` is seconds until the request's deadline (None when
    it carries none); ``execute_estimate`` is the modeled solo execution time.
    """
    if slo_class == "tight":
        return 0.0
    if slo_class == "relaxed" or deadline_remaining is None:
        return max(float(batch_window), 0.0)
    slack = float(deadline_remaining) - float(execute_estimate)
    return min(max(float(batch_window), 0.0), max(slack, 0.0))


def _value_width(value: Any) -> int:
    return int(np.atleast_1d(np.asarray(value, dtype=np.float64)).size)


def is_slotwise(program: Program) -> bool:
    """True when every instruction operates slot-by-slot (batchable as-is)."""
    return not any(term.op in _CROSS_SLOT_OPS for term in program.terms())


def min_lane_width(program: Program) -> int:
    """Smallest lane width the program's constants allow.

    Lane-mask constants inserted by the compiler's lowering pass are skipped:
    they always span exactly the compiled lane width and carry no program
    semantics, so they must not inflate the output period reported for the
    program's real constants.
    """
    width = 1
    for term in program.terms():
        if term.is_constant and not term.attributes.get("lane_mask"):
            width = max(width, pow2_ceil(_value_width(term.value)))
    return width


def request_width(inputs: Dict[str, Any]) -> int:
    """Logical vector width of one request (its widest input, at least 1)."""
    width = 1
    for value in inputs.values():
        width = max(width, _value_width(value))
    return pow2_ceil(width)


@dataclass(frozen=True)
class BatchInfo:
    """Batch-relevant facts of a compiled program.

    ``slotwise`` and ``min_lane`` are pure functions of the compiled graph;
    ``lane_width`` is the compiler-enforced lane width copied from the
    compilation options (None for programs compiled without lane lowering).
    Computing the graph-derived facts walks the whole term graph, so servers
    cache one ``BatchInfo`` per compilation signature instead of re-scanning
    per batch.
    """

    slotwise: bool
    min_lane: int
    vec_size: int
    lane_width: Optional[int] = None
    #: Static per-evaluation rotation and key-switch (rotate + relinearize)
    #: counts of the compiled graph — the telemetry layer multiplies these by
    #: served batches instead of re-walking the graph per request.
    rotations: int = 0
    keyswitches: int = 0

    @property
    def batchable(self) -> bool:
        """Whether this compilation can share a ciphertext across requests."""
        if self.lane_width is not None:
            return self.lane_width < self.vec_size
        return self.slotwise and self.min_lane < self.vec_size


@dataclass
class BatchPlan:
    """Placement of a group of requests into the lanes of one ciphertext."""

    vec_size: int
    lane_width: int
    input_names: List[str]
    #: Per-request output width (defaults to the request's own width).
    output_widths: List[int] = field(default_factory=list)

    @property
    def capacity(self) -> int:
        """Max requests that fit one ciphertext at this lane width."""
        return self.vec_size // self.lane_width

    @property
    def lanes(self) -> int:
        """Number of occupied lanes in this batch plan."""
        return len(self.output_widths)


class SlotBatcher:
    """Plans, packs, and unpacks slot-level request batches."""

    def inspect(self, compilation: CompilationResult) -> BatchInfo:
        """Scan the compiled program once for its batch-relevant facts."""
        program = compilation.program
        lane_width = compilation.options.lane_width
        if lane_width is not None and lane_width >= program.vec_size:
            lane_width = None  # full-width lane: lowering was the identity
        counts = program.op_counts()
        rotations = counts.get(Op.ROTATE_LEFT, 0) + counts.get(Op.ROTATE_RIGHT, 0)
        return BatchInfo(
            slotwise=is_slotwise(program),
            min_lane=min_lane_width(program),
            vec_size=program.vec_size,
            lane_width=lane_width,
            rotations=rotations,
            keyswitches=rotations + counts.get(Op.RELINEARIZE, 0),
        )

    def batchable(self, compilation: CompilationResult) -> bool:
        """Whether the compiled program admits slot batching at all."""
        return self.inspect(compilation).batchable

    def plan(
        self,
        compilation: CompilationResult,
        requests: Sequence[Dict[str, Any]],
        output_widths: Optional[Sequence[Optional[int]]] = None,
        info: Optional[BatchInfo] = None,
    ) -> Optional[BatchPlan]:
        """Fit ``requests`` into one execution, or None when batching loses.

        Returns a plan only when at least two requests fit; callers fall back
        to per-request execution otherwise.  ``info`` lets a server pass the
        cached :meth:`inspect` result instead of re-scanning the graph.
        """
        if info is None:
            info = self.inspect(compilation)
        if len(requests) < 2 or not info.batchable:
            return None
        program = compilation.program
        widths = [request_width(inputs) for inputs in requests]
        if info.lane_width is not None:
            # The compiler fixed the lane width; a wider request cannot be
            # packed (its data would cross the masked lane boundary).
            lane = info.lane_width
            if any(width > lane for width in widths):
                return None
        else:
            lane = max([info.min_lane] + widths)
        if lane > program.vec_size or program.vec_size % lane:
            return None
        capacity = program.vec_size // lane
        if capacity < 2 or len(requests) > capacity:
            return None
        names = sorted({name for inputs in requests for name in inputs})
        for inputs in requests:
            if sorted(inputs) != names:
                return None  # heterogeneous requests cannot share lanes
            # Every value must tile its lane exactly; a request that cannot
            # (e.g. a size-3 vector) must fail alone on the solo path, not
            # poison the whole batch from inside pack().
            if any(lane % _value_width(value) for value in inputs.values()):
                return None
        resolved: List[int] = []
        for index, width in enumerate(widths):
            requested = None if output_widths is None else output_widths[index]
            if requested is not None and (
                not isinstance(requested, int) or requested < 1
            ):
                return None
            # The default reply covers the full output period: a constant
            # wider than the request makes the output repeat with the
            # constant's period, not the request's (min_lane <= lane always).
            resolved.append(requested if requested else max(width, info.min_lane))
        if any(w > lane for w in resolved):
            return None
        return BatchPlan(
            vec_size=program.vec_size,
            lane_width=lane,
            input_names=names,
            output_widths=resolved,
        )

    def pack(
        self, plan: BatchPlan, requests: Sequence[Dict[str, Any]]
    ) -> Dict[str, np.ndarray]:
        """Assemble the lane-packed input vectors for one execution."""
        if len(requests) != plan.lanes:
            raise ServingError(
                f"plan covers {plan.lanes} requests, got {len(requests)}"
            )
        packed: Dict[str, np.ndarray] = {}
        for name in plan.input_names:
            vector = np.empty(plan.vec_size, dtype=np.float64)
            for index, inputs in enumerate(requests):
                start = index * plan.lane_width
                vector[start : start + plan.lane_width] = self._fill_lane(
                    inputs[name], plan.lane_width
                )
            # Unused lanes repeat lane 0: neither slotwise nor lane-lowered
            # programs ever read across lanes, so the filler only has to be
            # *some* well-scaled value.
            for index in range(len(requests), plan.capacity):
                start = index * plan.lane_width
                vector[start : start + plan.lane_width] = vector[: plan.lane_width]
            packed[name] = vector
        return packed

    def unpack(
        self, plan: BatchPlan, outputs: Dict[str, np.ndarray]
    ) -> List[Dict[str, np.ndarray]]:
        """Split packed outputs back into one result dict per request."""
        results: List[Dict[str, np.ndarray]] = []
        for index, width in enumerate(plan.output_widths):
            start = index * plan.lane_width
            results.append(
                {
                    name: np.asarray(values)[start : start + width].copy()
                    for name, values in outputs.items()
                }
            )
        return results

    @staticmethod
    def _fill_lane(value: Any, lane_width: int) -> np.ndarray:
        """Replicate one request's value into its lane (solo-run semantics)."""
        array = np.atleast_1d(np.asarray(value, dtype=np.float64)).ravel()
        if array.size == lane_width:
            return array
        if array.size == 1:
            return np.full(lane_width, float(array[0]))
        if lane_width % array.size:
            raise ServingError(
                f"request value of size {array.size} does not divide "
                f"the lane width {lane_width}"
            )
        return np.tile(array, lane_width // array.size)
