"""Asyncio front door: the default listener behind the TCP server factories.

The threaded listeners in :mod:`.netserver` spend one OS thread per
connection — fine for tens of clients, fatal for the thousands of mostly-idle
sessions a long-lived serving deployment accumulates.  This module rebuilds
the *transport* on :mod:`asyncio` while reusing the threaded handlers'
message logic verbatim, so both front doors speak byte-identical protocols:

* One event loop owns every socket.  Idle connections cost a heap object and
  a file descriptor, not a thread; first-byte JSON/binary sniffing, hello
  negotiation, chunked uploads, and per-connection byte counters all behave
  exactly as on the threaded path.
* Request *processing* still happens on threads (CKKS evaluation and cluster
  forwarding are blocking, CPU- or upstream-bound work), but on a bounded
  daemon pool shared by all connections instead of a thread per socket.
  Each connection dispatches sequentially — pipelined requests keep their
  order, and the router's thread-local upstream connections keep working.
* The handler classes (:class:`~.netserver._RequestHandler`,
  :class:`~.netserver._RouterHandler`) are instantiated *detached* from
  ``socketserver``: the event loop reads complete messages, hands them to the
  handler on the pool, and flushes the handler's buffered reply back through
  the stream writer.  One logic implementation, two transports — the
  threaded path stays available as a fallback (``frontdoor="threaded"``).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import queue
import socket
import threading
from typing import Any, Optional, Tuple

from ..errors import ServingError, TransportError
from .netserver import (
    _ConnectionState,
    _RequestHandler,
    _RouterHandler,
    _WireListenerMixin,
)
from .quotas import FairnessPolicy, QuotaLedger
from .server import EvaServer
from .telemetry import Telemetry
from ..wire import FRAME_CHUNK, FRAME_REQUEST, FRAME_RESPONSE, MAGIC, MAX_FRAME_BYTES

_KNOWN_FRAME_TYPES = frozenset((FRAME_REQUEST, FRAME_RESPONSE, FRAME_CHUNK))

#: Longest legal frame varint, mirroring :func:`repro.wire.frames.read_varint`.
_MAX_VARINT_BYTES = 10

#: Upper bound on threads processing requests concurrently (idle connections
#: hold no thread).  Workers exit after this many seconds without work.
DEFAULT_DISPATCH_WORKERS = 64
_WORKER_IDLE_SECONDS = 30.0


async def read_frame_async(reader: asyncio.StreamReader) -> Tuple[int, bytes, int]:
    """Async counterpart of :func:`repro.wire.frames.read_frame`.

    The magic byte has already been consumed by the caller's protocol sniff.
    Returns ``(frame_type, payload, wire_bytes)`` with the same validation
    order as the blocking reader: type, varint, length ceiling — all checked
    before any payload byte is read or allocated.
    """
    frame_type = (await reader.readexactly(1))[0]
    if frame_type not in _KNOWN_FRAME_TYPES:
        raise TransportError(f"unknown frame type {frame_type:#x}")
    length = 0
    shift = 0
    varint_bytes = 0
    while True:
        byte = (await reader.readexactly(1))[0]
        varint_bytes += 1
        length |= (byte & 0x7F) << shift
        if not byte & 0x80:
            break
        if varint_bytes >= _MAX_VARINT_BYTES:
            raise TransportError("frame varint is too long (corrupt frame header)")
        shift += 7
    if length > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame declares a {length}-byte payload, above the "
            f"{MAX_FRAME_BYTES}-byte limit (corrupt or hostile header)"
        )
    payload = await reader.readexactly(length)
    return frame_type, payload, 2 + varint_bytes + length


class _ReplyBuffer:
    """File-like sink the detached handlers write replies into.

    Stands in for the socketserver ``wfile``: the handler runs on a pool
    thread and writes here; the event loop drains the chunks to the stream
    writer afterwards.  ``bytes(data)`` snapshots memoryview parts, because
    blob views are released when the handler's ``raw_blobs`` context exits —
    before the event loop flushes.
    """

    __slots__ = ("_chunks",)

    def __init__(self) -> None:
        self._chunks = []

    def write(self, data) -> int:
        self._chunks.append(bytes(data))
        return len(data)

    def flush(self) -> None:  # handler API compatibility; flushing is the loop's job
        pass

    def drain(self) -> list:
        chunks, self._chunks = self._chunks, []
        return chunks


class _WorkerSlot:
    __slots__ = ("queue", "lock", "running")

    def __init__(self) -> None:
        self.queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self.lock = threading.Lock()
        self.running = False


class _DaemonDispatchPool:
    """Bounded pool of daemon threads with per-connection worker affinity.

    Every connection hashes to one worker slot, so all of a connection's
    requests run on the *same* OS thread — which is what keeps the cluster
    router's thread-keyed upstream connections coherent: the CHUNK frames of
    a streaming upload and the request that finally references the upload
    must reach the shard over one upstream socket, exactly as they did when
    each connection owned a handler thread.

    ``concurrent.futures.ThreadPoolExecutor`` is deliberately not used: it
    has no affinity, and its workers are non-daemon and joined at interpreter
    exit, so one handler stuck on a dead upstream would hang process
    shutdown — the same reason the threaded servers set
    ``daemon_threads = True``.  Workers spawn on first use of their slot and
    retire after a quiet period.
    """

    def __init__(self, max_workers: int, name: str) -> None:
        self._slots = [_WorkerSlot() for _ in range(max(1, int(max_workers)))]
        self._name = name

    def submit(self, affinity: int, fn, *args) -> "concurrent.futures.Future":
        future: "concurrent.futures.Future" = concurrent.futures.Future()
        index = affinity % len(self._slots)
        slot = self._slots[index]
        slot.queue.put((future, fn, args))
        with slot.lock:
            if not slot.running:
                slot.running = True
                threading.Thread(
                    target=self._worker,
                    args=(slot,),
                    name=f"{self._name}-{index}",
                    daemon=True,
                ).start()
        return future

    def _worker(self, slot: _WorkerSlot) -> None:
        while True:
            try:
                item = slot.queue.get(timeout=_WORKER_IDLE_SECONDS)
            except queue.Empty:
                with slot.lock:
                    # Re-check under the lock: a submit racing the timeout
                    # either saw running=True (and skipped spawning) or put
                    # an item we must drain before retiring.
                    if slot.queue.empty():
                        slot.running = False
                        return
                continue
            future, fn, args = item
            if not future.set_running_or_notify_cancel():
                continue
            try:
                result = fn(*args)
            except BaseException as exc:  # delivered to the awaiting coroutine
                future.set_exception(exc)
            else:
                future.set_result(result)


class _AsyncWireServer(_WireListenerMixin):
    """Event-loop listener sharing the threaded servers' public surface.

    The listening socket is bound synchronously in ``__init__`` so
    ``.address`` answers immediately after construction — the CLI and the
    cluster's shard bootstrap read the bound port before serving starts.
    ``serve_forever`` runs the event loop in the calling thread (blocking,
    like socketserver); ``shutdown`` is thread-safe and waits for the loop
    to wind down, closing live connections as it goes.
    """

    #: Name for the background serving thread; subclasses override to match
    #: their threaded twin.
    thread_name = "eva-aio-server"

    def __init__(
        self,
        host: str,
        port: int,
        wire_policy: str,
        dispatch_workers: int = DEFAULT_DISPATCH_WORKERS,
    ) -> None:
        self._init_wire(wire_policy)
        self._socket = socket.create_server((host, port), backlog=512)
        self._pool = _DaemonDispatchPool(dispatch_workers, f"{self.thread_name}-dispatch")
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._stopped = threading.Event()
        self._conn_tasks = set()

    # -- handler wiring (subclass hook) -----------------------------------------
    def _make_handler(self, peer: str):
        raise NotImplementedError

    @staticmethod
    def _detached_handler(handler_cls, server, peer: str):
        """Instantiate a netserver handler without its socketserver plumbing.

        The handler's message methods only touch ``self.server``,
        ``self.conn``, and ``self.wfile`` — satisfied here by the async
        server, a fresh connection state, and a reply buffer.
        """
        handler = handler_cls.__new__(handler_cls)
        handler.server = server
        handler.conn = _ConnectionState(peer)
        handler.wfile = _ReplyBuffer()
        return handler

    # -- public lifecycle (threaded-server compatible) --------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — useful after binding port 0."""
        name = self._socket.getsockname()
        return name[0], name[1]

    def start_background(self) -> threading.Thread:
        """Serve on a daemon thread; returns once the loop is accepting."""
        thread = threading.Thread(
            target=self.serve_forever, name=self.thread_name, daemon=True
        )
        thread.start()
        self._started.wait(timeout=10)
        return thread

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        """Run the event loop until :meth:`shutdown` (blocking call)."""
        del poll_interval  # socketserver signature compatibility
        asyncio.run(self._serve())

    def shutdown(self) -> None:
        """Stop serving; thread-safe, idempotent, waits for the loop to exit."""
        if self._started.is_set() and not self._stopped.is_set():
            loop = self._loop
            if loop is not None:
                try:
                    loop.call_soon_threadsafe(self._signal_stop)
                except RuntimeError:
                    pass  # loop already closed between the checks
            self._stopped.wait(timeout=10)
        else:
            self.server_close()

    def server_close(self) -> None:
        """Release the listening socket (no-op once the loop has closed it)."""
        try:
            self._socket.close()
        except OSError:
            pass

    def _signal_stop(self) -> None:
        if self._stop_event is not None:
            self._stop_event.set()

    # -- event loop --------------------------------------------------------------
    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(
            self._serve_connection,
            sock=self._socket,
            # StreamReader's high-water mark also caps readline(); JSON-mode
            # key uploads are one multi-megabyte line, so give it the same
            # ceiling the frame layer enforces.
            limit=MAX_FRAME_BYTES,
        )
        self._started.set()
        try:
            async with server:
                await self._stop_event.wait()
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        finally:
            self._stopped.set()

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peername = writer.get_extra_info("peername")
        peer = f"{peername[0]}:{peername[1]}" if peername else "?"
        handler = self._make_handler(peer)
        key = self._register_connection(handler.conn)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        sock = writer.get_extra_info("socket")
        if sock is not None:
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
        try:
            await self._connection_loop(handler, key, reader, writer)
        except asyncio.CancelledError:
            pass  # server shutting down
        except (ConnectionError, OSError):
            pass  # peer went away mid-message
        except Exception:
            pass  # handler failure: drop the connection, keep serving others
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            self._unregister_connection(key)
            try:
                writer.close()
            except Exception:
                pass

    async def _connection_loop(
        self,
        handler,
        affinity: int,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Sniff each message's framing from its first byte and reply in kind.

        The async twin of :meth:`netserver._WireHandler.handle`: same
        per-message protocol sniff, same error policy (payload errors are
        answered, framing errors drop the connection).
        """
        while True:
            first = await reader.read(1)
            if not first:
                return
            if first[0] == MAGIC:
                try:
                    frame_type, payload, nbytes = await read_frame_async(reader)
                except (TransportError, asyncio.IncompleteReadError):
                    return  # broken framing: the stream cannot resync
                handler.conn.protocol = "binary"
                handler._count_received(nbytes, "binary")
                keep_open = await self._dispatch(
                    affinity, handler._handle_frame, frame_type, payload
                )
                if not await self._flush(handler, writer):
                    return
                if not keep_open:
                    return
            else:
                try:
                    line = first + await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    return  # line past the frame ceiling: hostile or corrupt
                handler._count_received(len(line), "json")
                try:
                    text = line.decode("utf-8").strip()
                except UnicodeDecodeError:
                    return  # not JSON, not a frame: drop the connection
                if not text:
                    continue
                await self._dispatch(affinity, handler._handle_json, text)
                if not await self._flush(handler, writer):
                    return

    async def _dispatch(self, affinity: int, fn, *args):
        """Run one blocking handler call on the connection's pool worker."""
        return await asyncio.wrap_future(self._pool.submit(affinity, fn, *args))

    async def _flush(self, handler, writer: asyncio.StreamWriter) -> bool:
        """Write the handler's buffered reply; False when the peer is gone."""
        chunks = handler.wfile.drain()
        if not chunks:
            return True
        try:
            writer.write(b"".join(chunks))
            await writer.drain()
        except (ConnectionError, OSError, RuntimeError):
            return False
        return True


class AsyncEvaTcpServer(_AsyncWireServer):
    """Asyncio front door for one :class:`~repro.serving.server.EvaServer`.

    Protocol-identical to :class:`~repro.serving.netserver.ThreadedEvaTcpServer`
    (same handler logic, different transport); holds thousands of idle
    sessions on one event loop.
    """

    thread_name = "eva-tcp-server"

    def __init__(
        self,
        eva_server: EvaServer,
        host: str = "127.0.0.1",
        port: int = 0,
        wire_policy: str = "auto",
        dispatch_workers: int = DEFAULT_DISPATCH_WORKERS,
    ) -> None:
        self.eva_server = eva_server
        super().__init__(host, port, wire_policy, dispatch_workers)

    def _make_handler(self, peer: str):
        return self._detached_handler(_RequestHandler, self, peer)


class AsyncClusterTcpServer(_AsyncWireServer):
    """Asyncio router front door of an :class:`~repro.serving.cluster.EvaCluster`.

    Protocol- and policy-identical to
    :class:`~repro.serving.netserver.ThreadedClusterTcpServer`: same quota
    admission, telemetry plane, and passthrough forwarding — on an event
    loop instead of a thread per connection.
    """

    thread_name = "eva-cluster-router"

    def __init__(
        self,
        cluster: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        fairness: Optional[FairnessPolicy] = None,
        slow_threshold: float = 1.0,
        wire_policy: str = "auto",
        dispatch_workers: int = DEFAULT_DISPATCH_WORKERS,
    ) -> None:
        self.cluster = cluster
        if fairness is None:
            fairness = getattr(cluster, "fairness", None)
        self.ledger = QuotaLedger(fairness)
        #: The router's own telemetry plane (mirrors the threaded router).
        self.telemetry = Telemetry(slow_threshold=slow_threshold, shard="router")
        super().__init__(host, port, wire_policy, dispatch_workers)

    def _make_handler(self, peer: str):
        return self._detached_handler(_RouterHandler, self, peer)
