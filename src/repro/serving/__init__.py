"""Encrypted-computation serving subsystem (compile once, serve many).

Turns the one-shot compiler + executor into a serving stack:

* :class:`ProgramRegistry` — compile each (program, policy) once, LRU-cached.
* :class:`SessionManager` — cache backend contexts and keys per client.
* :class:`SlotBatcher` — pack independent small requests into spare CKKS slots.
* :class:`JobEngine` — bounded-queue worker pool with a futures API.
* :class:`EvaServer` — the in-process front door combining all of the above.
* :class:`EvaTcpServer` / :class:`ServingClient` — newline-JSON TCP transport
  (also exposed as ``repro.cli serve`` / ``repro.cli submit``).
* :class:`SessionStore` — disk persistence of client key blobs, so sessions
  survive restarts and shard failures (with TTL-based ``prune`` GC).
* :class:`ArtifactCache` — shared on-disk compiled-program cache: shards load
  what their siblings already compiled instead of recompiling, and
  :class:`LaneWidthPolicy` pre-warms the most-requested lane widths.
* :class:`FairnessPolicy` / :class:`QuotaLedger` — per-client token-bucket
  rate quotas and in-flight caps (the serving 429,
  :class:`~repro.errors.QuotaExceededError`), enforced at the cluster router
  and at each shard's job engine, which dequeues by weighted fair queueing
  instead of global FIFO.
* :class:`EvaCluster` / :class:`ClusterTcpServer` — multi-node sharding:
  local shard processes plus remote shard servers attached from a cluster
  config or live via the ``join`` wire op, consistent-hash client routing,
  transparent failover, health checks, shard ``drain`` / ``rejoin``, and
  queue-depth autoscaling under a :class:`ScalePolicy`
  (``repro.cli serve --shards N --cluster-config cluster.toml``; admin via
  ``repro.cli cluster``).
* SLO classes — requests may carry ``deadline_ms`` / ``slo_class``
  (``tight`` / ``standard`` / ``relaxed``); admission rejects infeasible
  deadlines up front (:class:`~repro.errors.DeadlineInfeasibleError` with
  ``retry_after``) and :func:`linger_budget` decides batch-vs-solo per
  request against its deadline.
* :class:`Telemetry` / :class:`MetricsRegistry` / :class:`Histogram` — the
  unified telemetry plane: dotted-name counters/gauges/latency histograms
  (p50/p95/p99 from log buckets), per-stage request tracing with a
  client-or-router-minted ``trace_id``, slow-request detection, Prometheus
  text exposition, and cluster-wide aggregation
  (``repro.cli cluster metrics|trace|slow``; ``submit --trace``).
"""

from .artifacts import ArtifactCache, LaneWidthPolicy, WidthHistogram
from .batching import (
    BatchInfo,
    BatchPlan,
    SlotBatcher,
    is_slotwise,
    linger_budget,
    min_lane_width,
    request_width,
)
from .cluster import (
    BackendSpec,
    ConsistentHashRing,
    EvaCluster,
    ScalePolicy,
    ShardConfig,
    ShardHandle,
    load_cluster_config,
)
from .jobs import EngineMetrics, Job, JobEngine
from .netserver import ClusterTcpServer, EvaTcpServer, ServingClient
from .quotas import FairnessPolicy, QuotaLedger, TokenBucket
from .registry import CacheStats, ProgramRegistry, RegistryEntry
from .server import (
    EncryptedServeRequest,
    EncryptedServeResponse,
    EvaServer,
    ProgramSpec,
    ServeRequest,
    ServeResponse,
)
from .sessions import Session, SessionManager, session_key
from .store import SessionStore, session_digest
from .telemetry import (
    Histogram,
    MetricsRegistry,
    Telemetry,
    aggregate_snapshots,
    configure_logging,
    merge_traces,
    new_trace_id,
    render_prometheus,
)

__all__ = [
    "ArtifactCache",
    "LaneWidthPolicy",
    "WidthHistogram",
    "FairnessPolicy",
    "QuotaLedger",
    "TokenBucket",
    "BatchInfo",
    "BatchPlan",
    "SlotBatcher",
    "is_slotwise",
    "linger_budget",
    "min_lane_width",
    "request_width",
    "BackendSpec",
    "ConsistentHashRing",
    "EvaCluster",
    "ScalePolicy",
    "ShardConfig",
    "ShardHandle",
    "load_cluster_config",
    "EngineMetrics",
    "Job",
    "JobEngine",
    "ClusterTcpServer",
    "EvaTcpServer",
    "ServingClient",
    "SessionStore",
    "session_digest",
    "CacheStats",
    "ProgramRegistry",
    "RegistryEntry",
    "EvaServer",
    "ProgramSpec",
    "ServeRequest",
    "ServeResponse",
    "EncryptedServeRequest",
    "EncryptedServeResponse",
    "Session",
    "SessionManager",
    "session_key",
    "Histogram",
    "MetricsRegistry",
    "Telemetry",
    "aggregate_snapshots",
    "configure_logging",
    "merge_traces",
    "new_trace_id",
    "render_prometheus",
]
