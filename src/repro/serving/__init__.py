"""Encrypted-computation serving subsystem (compile once, serve many).

Turns the one-shot compiler + executor into a serving stack:

* :class:`ProgramRegistry` — compile each (program, policy) once, LRU-cached.
* :class:`SessionManager` — cache backend contexts and keys per client.
* :class:`SlotBatcher` — pack independent small requests into spare CKKS slots.
* :class:`JobEngine` — bounded-queue worker pool with a futures API.
* :class:`EvaServer` — the in-process front door combining all of the above.
* :class:`EvaTcpServer` / :class:`ServingClient` — newline-JSON TCP transport
  (also exposed as ``repro.cli serve`` / ``repro.cli submit``).
* :class:`SessionStore` — disk persistence of client key blobs, so sessions
  survive restarts and shard failures.
* :class:`EvaCluster` / :class:`ClusterTcpServer` — multi-process sharding:
  N ``EvaServer`` shards, consistent-hash client routing, transparent
  failover (``repro.cli serve --shards N --session-dir PATH``).
"""

from .batching import (
    BatchInfo,
    BatchPlan,
    SlotBatcher,
    is_slotwise,
    min_lane_width,
    request_width,
)
from .cluster import (
    BackendSpec,
    ConsistentHashRing,
    EvaCluster,
    ShardConfig,
    ShardHandle,
)
from .jobs import EngineMetrics, Job, JobEngine
from .netserver import ClusterTcpServer, EvaTcpServer, ServingClient
from .registry import CacheStats, ProgramRegistry, RegistryEntry
from .server import (
    EncryptedServeRequest,
    EncryptedServeResponse,
    EvaServer,
    ProgramSpec,
    ServeRequest,
    ServeResponse,
)
from .sessions import Session, SessionManager, session_key
from .store import SessionStore, session_digest

__all__ = [
    "BatchInfo",
    "BatchPlan",
    "SlotBatcher",
    "is_slotwise",
    "min_lane_width",
    "request_width",
    "BackendSpec",
    "ConsistentHashRing",
    "EvaCluster",
    "ShardConfig",
    "ShardHandle",
    "EngineMetrics",
    "Job",
    "JobEngine",
    "ClusterTcpServer",
    "EvaTcpServer",
    "ServingClient",
    "SessionStore",
    "session_digest",
    "CacheStats",
    "ProgramRegistry",
    "RegistryEntry",
    "EvaServer",
    "ProgramSpec",
    "ServeRequest",
    "ServeResponse",
    "EncryptedServeRequest",
    "EncryptedServeResponse",
    "Session",
    "SessionManager",
    "session_key",
]
