"""Shared on-disk cache of compiled-program artifacts.

In a sharded deployment every :class:`~repro.serving.server.EvaServer` shard
owns a private in-memory :class:`~repro.serving.registry.ProgramRegistry`, so
each shard pays the full Transform/Validate/DetermineParameters pipeline for
every program — and for every lane-width variant the batcher resolves — even
when a sibling shard compiled the identical program minutes earlier.  The
:class:`ArtifactCache` removes that duplication: the first shard to compile a
``(program signature, lane width)`` pair publishes the finished compilation
as one JSON file, and every other shard (or a restarted shard, or tomorrow's
fleet) *loads* it instead of recompiling.

A cached artifact stores everything :class:`~repro.core.compiler.CompilationResult`
carries — the compiled graph, compiler options, scale maps, the selected
encryption parameters, and the rotation steps — so loading skips not just the
rewrite passes but parameter selection too.  The content signature
(:func:`repro.core.compiler.program_signature`) keys the cache exactly as it
keys the in-memory registry, which makes cache poisoning by name impossible:
a record can only ever be loaded by a server that would have compiled the
same source with the same options.

Writes are atomic (temp file + ``os.replace``, the :class:`SessionStore`
discipline), so shard processes sharing one directory never observe a torn
record.  Two shards racing to compile the same signature both publish — the
last writer wins, and both wrote byte-identical semantics because
compilation is deterministic in the signature.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..core.analysis.parameters import EncryptionParameters
from ..core.compiler import CompilationResult, CompilerOptions
from ..core.serialization.json_format import dict_to_program, program_to_dict
from .store import atomic_write_json

#: Format marker / version stamped into every artifact record.
ARTIFACT_FORMAT = "eva-serving-artifact"
#: Version 2: compiled graphs carry the rotation-hoisting/BSGS optimizations.
#: Signatures hash the *source* program, so a version-1 record for the same
#: signature would hold a pre-optimization graph; the bump degrades those
#: stale records to a cache miss (the shard recompiles and republishes).
ARTIFACT_VERSION = 2


class ArtifactCache:
    """A directory of compiled-program artifacts keyed by (signature, lane width).

    Like the session store, the cache is deliberately dumb — no index, no
    cross-process locking beyond atomic whole-file replacement — so any
    number of shard processes (or hosts sharing a filesystem) can use one
    directory without coordination.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # -- paths -------------------------------------------------------------------
    @staticmethod
    def _key(signature: str, lane_width: Optional[int]) -> str:
        return f"{signature}.w{int(lane_width or 0)}"

    def path_for(self, signature: str, lane_width: Optional[int] = None) -> Path:
        """The cache file path for a (signature, lane width) record."""
        return self.root / f"{self._key(signature, lane_width)}.json"

    # -- write -------------------------------------------------------------------
    def save(
        self, compilation: CompilationResult, signature: Optional[str] = None
    ) -> Optional[Path]:
        """Publish one finished compilation; returns its path (None if unkeyed).

        ``signature`` defaults to the signature the compiler stamped on the
        result; hand-assembled results without one cannot be cached (there is
        no content key another process could look them up under).
        """
        signature = signature or compilation.signature
        if signature is None:
            return None
        parameters = compilation.parameters
        record = {
            "format": ARTIFACT_FORMAT,
            "version": ARTIFACT_VERSION,
            "signature": signature,
            "lane_width": compilation.lane_width,
            "saved_at": time.time(),
            "options": compilation.options.to_dict(),
            "input_scales": {
                k: float(v) for k, v in compilation.input_scales.items()
            },
            "output_scales": {
                k: float(v) for k, v in compilation.output_scales.items()
            },
            "program": program_to_dict(compilation.program),
            "parameters": {
                "poly_modulus_degree": int(parameters.poly_modulus_degree),
                "coeff_modulus_bits": [int(b) for b in parameters.coeff_modulus_bits],
                "security_level": int(parameters.security_level),
                "rotation_steps": [int(s) for s in parameters.rotation_steps],
            },
            "rotation_steps": [int(s) for s in compilation.rotation_steps],
            "compile_seconds": float(compilation.compile_seconds),
        }
        path = self.path_for(signature, compilation.lane_width)
        with self._lock:
            # Atomic publish (the shared SessionStore discipline): a
            # concurrent reader — another shard — sees nothing, the old
            # record, or the new one, never a torn file.
            atomic_write_json(self.root, path, record)
            self.stores += 1
        return path

    # -- read --------------------------------------------------------------------
    def load(
        self, signature: str, lane_width: Optional[int] = None
    ) -> Optional[CompilationResult]:
        """Rebuild the cached compilation, or ``None`` on miss/corruption.

        Corrupt, incompatible, or mismatched records degrade to a miss — the
        caller compiles from source exactly as it would have without a cache.
        """
        record = self._read(self.path_for(signature, lane_width))
        if record is None or record.get("signature") != signature:
            with self._lock:
                self.misses += 1
            return None
        try:
            compilation = CompilationResult(
                program=dict_to_program(record["program"]),
                parameters=EncryptionParameters(
                    poly_modulus_degree=int(record["parameters"]["poly_modulus_degree"]),
                    coeff_modulus_bits=[
                        int(b) for b in record["parameters"]["coeff_modulus_bits"]
                    ],
                    security_level=int(record["parameters"]["security_level"]),
                    rotation_steps=[
                        int(s) for s in record["parameters"]["rotation_steps"]
                    ],
                ),
                rotation_steps=[int(s) for s in record["rotation_steps"]],
                options=CompilerOptions.from_dict(record.get("options", {})),
                input_scales={
                    k: float(v) for k, v in record.get("input_scales", {}).items()
                },
                output_scales={
                    k: float(v) for k, v in record.get("output_scales", {}).items()
                },
                compile_seconds=float(record.get("compile_seconds", 0.0)),
                signature=signature,
            )
        except Exception:
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        return compilation

    @staticmethod
    def _read(path: Path) -> Optional[Dict[str, Any]]:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if (
            not isinstance(record, dict)
            or record.get("format") != ARTIFACT_FORMAT
            or record.get("version") != ARTIFACT_VERSION
        ):
            return None
        return record

    # -- maintenance -------------------------------------------------------------
    def records(self) -> List[Dict[str, Any]]:
        """Metadata of every readable artifact (compiled graphs omitted)."""
        found = []
        for path in sorted(self.root.glob("*.json")):
            record = self._read(path)
            if record is None:
                continue
            found.append(
                {
                    "signature": record.get("signature"),
                    "lane_width": record.get("lane_width"),
                    "saved_at": record.get("saved_at"),
                    "compile_seconds": record.get("compile_seconds"),
                    "path": str(path),
                }
            )
        return found

    def prune(self, max_age: float) -> int:
        """Delete artifacts older than ``max_age`` seconds; returns the count."""
        cutoff = time.time() - float(max_age)
        removed = 0
        with self._lock:
            for path in self.root.glob("*.json"):
                record = self._read(path)
                saved_at = record.get("saved_at") if record else None
                if not isinstance(saved_at, (int, float)):
                    # Unreadable record: fall back to the filesystem clock.
                    try:
                        saved_at = path.stat().st_mtime
                    except OSError:
                        continue
                if saved_at < cutoff:
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        pass
        return removed

    def __len__(self) -> int:
        return sum(
            1 for path in self.root.glob("*.json") if self._read(path) is not None
        )

    def summary(self) -> Dict[str, object]:
        """Cheap monitoring view: counts files without parsing graphs."""
        with self._lock:
            return {
                "root": str(self.root),
                "records": sum(1 for _ in self.root.glob("*.json")),
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ArtifactCache root={str(self.root)!r}>"


# -- lane-width precompilation -----------------------------------------------------
@dataclass
class LaneWidthPolicy:
    """When and how aggressively to pre-warm lane-width variants.

    Lane-width selection is per-batch greedy: the first batch at a new width
    pays the variant's full compilation inline.  This policy removes that
    first-batch latency cliff by watching the *request-width histogram* of
    each program and pre-compiling the most frequent widths in the background
    (publishing them to the shared :class:`ArtifactCache`, so one shard's
    pre-warm covers the whole fleet).

    Width *selection* is cost-model-driven: instead of pre-warming whatever
    widths are merely frequent, :meth:`choose_widths` scores every candidate
    width by the modeled per-request serving cost — evaluation seconds divided
    by lane capacity for the requests that fit (slot waste shows up here: a
    narrow request in a wide lane shares the ciphertext with fewer peers),
    solo evaluation for the requests that don't, plus the amortized
    generation/upload cost of the width's Galois key set (after BSGS
    planning, so a width whose step set decomposes well scores better).
    Set ``use_cost_model=False`` to fall back to raw histogram frequency.

    Attributes
    ----------
    min_samples:
        Re-evaluate a program's histogram every ``min_samples`` requests.
    top_widths:
        How many of the best-scoring widths to pre-warm per evaluation.
    use_cost_model:
        Score candidates with the backend cost model (default) instead of
        ranking by frequency alone.
    """

    min_samples: int = 32
    top_widths: int = 2
    use_cost_model: bool = True

    def __post_init__(self) -> None:
        if self.min_samples < 1:
            raise ValueError("min_samples must be at least 1")
        if self.top_widths < 1:
            raise ValueError("top_widths must be at least 1")

    def choose_widths(
        self,
        compilation: CompilationResult,
        counts: Dict[int, int],
        cost_model=None,
    ) -> List[tuple]:
        """Rank candidate lane widths by modeled per-request cost.

        ``counts`` is the signature's width histogram (power-of-two request
        width -> observations).  Returns ``[(width, score), ...]`` with the
        cheapest modeled width first, truncated to ``top_widths``; scores are
        modeled seconds per request (lower is better).  With
        ``use_cost_model=False`` the scores are negated frequencies, which
        reproduces the legacy most-frequent-first ranking.
        """
        vec_size = compilation.program.vec_size
        candidates = sorted(
            width
            for width in counts
            if 0 < width < vec_size and vec_size % int(width) == 0
        )
        if not candidates:
            return []
        if not self.use_cost_model:
            ranked = sorted(candidates, key=lambda w: (-counts[w], w))
            return [(w, float(-counts[w])) for w in ranked[: self.top_widths]]
        if cost_model is None:
            from ..backend.cost_model import DEFAULT_COST_MODEL

            cost_model = DEFAULT_COST_MODEL
        from ..core.analysis.rotations import (
            lane_rotation_profile,
            plan_rotation_steps,
        )

        parameters = compilation.parameters
        poly = parameters.poly_modulus_degree
        levels = max(len(parameters.coeff_modulus_bits), 1)
        base_seconds = cost_model.program_seconds(compilation.program, poly, levels)
        base_rotations = len(compilation.rotation_steps)
        total = float(sum(counts.values())) or 1.0

        def score(width: int) -> float:
            """Modeled amortized per-request cost of serving at this width."""
            capacity = vec_size // width
            # Lane-lowering overhead on the base graph: one plain multiply
            # and one add per masked rotation, plus the hoisted wrap
            # rotation.  Slotwise programs lower to themselves.
            lane_seconds = base_seconds
            lane_steps: List[int] = []
            if base_rotations:
                lane_steps = lane_rotation_profile(
                    compilation.rotation_steps, width, vec_size
                )
                lane_seconds += base_rotations * (
                    cost_model.op_seconds("multiply_plain", poly, levels)
                    + cost_model.op_seconds("add", poly, levels)
                ) + cost_model.op_seconds("rotate", poly, levels)
            plan = plan_rotation_steps(
                lane_steps, vec_size, mode="auto", cost_model=cost_model,
                poly_degree=poly, levels=levels,
            )
            key_seconds = cost_model.rotation_plan_seconds(
                len(plan.key_steps), plan.extra_rotations, poly, levels
            )
            per_batch = lane_seconds + key_seconds / cost_model.session_evaluations
            cost = 0.0
            for observed, count in counts.items():
                if observed <= width:
                    cost += count * per_batch / capacity
                else:
                    cost += count * base_seconds  # too wide: served solo
            return cost / total

        ranked = sorted(candidates, key=lambda w: (score(w), w))
        return [(w, score(w)) for w in ranked[: self.top_widths]]


class WidthHistogram:
    """Thread-safe per-signature histogram of (power-of-two) request widths."""

    def __init__(self) -> None:
        self._counts: Dict[str, Dict[int, int]] = {}
        self._samples: Dict[str, int] = {}
        self._lock = threading.Lock()

    def record(self, signature: str, width: int) -> int:
        """Count one request of ``width``; returns the signature's sample count."""
        width = int(width)
        with self._lock:
            counts = self._counts.setdefault(signature, {})
            counts[width] = counts.get(width, 0) + 1
            total = self._samples.get(signature, 0) + 1
            self._samples[signature] = total
            return total

    def top(self, signature: str, k: int) -> List[int]:
        """The ``k`` most frequent widths (most frequent first, ties by width)."""
        with self._lock:
            counts = self._counts.get(signature, {})
            ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
            return [width for width, _count in ranked[: max(int(k), 0)]]

    def counts(self, signature: str) -> Dict[int, int]:
        """A snapshot of the signature's width histogram (width -> count)."""
        with self._lock:
            return dict(self._counts.get(signature, {}))

    def samples(self, signature: str) -> int:
        """Number of width observations recorded for a program signature."""
        with self._lock:
            return self._samples.get(signature, 0)

    def summary(self) -> Dict[str, Dict[int, int]]:
        """Per-signature width histograms, for stats and debugging."""
        with self._lock:
            return {
                signature[:12]: dict(sorted(counts.items()))
                for signature, counts in self._counts.items()
            }


__all__ = [
    "ArtifactCache",
    "LaneWidthPolicy",
    "WidthHistogram",
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
]
