"""Per-client fairness: token-bucket rate quotas and in-flight caps.

The bounded job queue (:class:`~repro.serving.jobs.JobEngine`) protects the
*server* from overload, but it is first-come-first-served: one greedy client
can fill the whole queue and starve everyone else.  This module adds the
per-*client* half of admission control:

* :class:`TokenBucket` — the classic rate limiter: a client earns
  ``rate`` tokens per second up to a ``capacity`` burst, and each admitted
  request spends one.  An empty bucket yields the time until the next token,
  which travels to the client as ``retry_after``.
* :class:`FairnessPolicy` — the operator-facing knobs: requests/second per
  client, burst size, a per-client in-flight cap, and optional per-client
  scheduling weights for the engine's weighted fair dequeue.
* :class:`QuotaLedger` — thread-safe per-client enforcement of one policy.
  Both admission points share it: the cluster router (rejecting before a
  request ever crosses to a shard) and each shard's job engine (protecting a
  shard even from clients that bypass the router).

Rejections raise :class:`~repro.errors.QuotaExceededError`, the serving
layer's 429 — carrying ``retry_after`` so clients can back off precisely
instead of hammering.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.serialization.messages import SLO_CLASSES
from ..errors import QuotaExceededError


class TokenBucket:
    """A token bucket: ``rate`` tokens/second, at most ``capacity`` banked.

    Not thread-safe on its own — :class:`QuotaLedger` serializes access.
    """

    def __init__(self, rate: float, capacity: float) -> None:
        if rate <= 0:
            raise ValueError("token rate must be positive")
        if capacity < 1:
            raise ValueError("bucket capacity must be at least 1 token")
        self.rate = float(rate)
        self.capacity = float(capacity)
        self.tokens = float(capacity)
        self.updated = time.monotonic()

    def try_acquire(self, now: Optional[float] = None) -> float:
        """Spend one token; returns 0.0 on success, else seconds to retry."""
        if now is None:
            now = time.monotonic()
        self.tokens = min(self.capacity, self.tokens + (now - self.updated) * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


@dataclass
class FairnessPolicy:
    """Operator knobs for per-client admission control and scheduling.

    Attributes
    ----------
    quota_rps:
        Sustained requests/second each client may submit (token-bucket rate).
        ``None`` disables rate limiting.
    burst:
        Bucket capacity — how many requests a client may send back-to-back
        after an idle period.  Defaults to ``max(2 * quota_rps, 1)``.
    max_inflight:
        Maximum requests one client may have queued or executing at once.
        ``None`` disables the cap.
    weights:
        Per-client scheduling weights for the engine's weighted fair dequeue
        (default weight 1.0); a weight of 2 gets twice the service share
        under contention.  Scheduling weights are independent of the quota —
        they shape *order*, quotas shape *admission*.
    slo_classes:
        Per-client default SLO class (``tight`` / ``standard`` / ``relaxed``)
        applied to submits that carry no explicit ``slo_class``.  Clients
        without an entry default to ``standard``.
    class_deadlines_ms:
        Per-class default ``deadline_ms`` applied to submits that carry a
        class (explicit or per-client default) but no explicit deadline.
        Classes without an entry carry no deadline — they still shape
        batch-vs-solo decisions, but never trigger deadline admission.
    """

    quota_rps: Optional[float] = None
    burst: Optional[float] = None
    max_inflight: Optional[int] = None
    weights: Dict[str, float] = field(default_factory=dict)
    slo_classes: Dict[str, str] = field(default_factory=dict)
    class_deadlines_ms: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.quota_rps is not None and self.quota_rps <= 0:
            raise ValueError("quota_rps must be positive (or None to disable)")
        if self.burst is not None and self.burst < 1:
            raise ValueError("burst must be at least 1 (or None for the default)")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError("max_inflight must be at least 1 (or None to disable)")
        for client, weight in self.weights.items():
            if weight <= 0:
                raise ValueError(f"weight of client {client!r} must be positive")
        for client, slo_class in self.slo_classes.items():
            if slo_class not in SLO_CLASSES:
                raise ValueError(
                    f"unknown SLO class {slo_class!r} of client {client!r}; "
                    f"expected one of {SLO_CLASSES}"
                )
        for slo_class, deadline_ms in self.class_deadlines_ms.items():
            if slo_class not in SLO_CLASSES:
                raise ValueError(
                    f"unknown SLO class {slo_class!r} in class_deadlines_ms; "
                    f"expected one of {SLO_CLASSES}"
                )
            if deadline_ms <= 0:
                raise ValueError(
                    f"class deadline of {slo_class!r} must be positive milliseconds"
                )

    @property
    def limits_rate(self) -> bool:
        """Whether a sustained requests/second limit is configured."""
        return self.quota_rps is not None

    @property
    def limits_inflight(self) -> bool:
        """Whether an in-flight request cap is configured."""
        return self.max_inflight is not None

    @property
    def enabled(self) -> bool:
        """Whether any quota dimension is active."""
        return self.limits_rate or self.limits_inflight

    def bucket_capacity(self) -> float:
        """Token-bucket capacity: explicit burst, or 2x the sustained rate."""
        if self.burst is not None:
            return float(self.burst)
        return max(2.0 * float(self.quota_rps or 0.0), 1.0)

    def weight_of(self, client_id: str) -> float:
        """A client's fair-queueing weight (default 1.0)."""
        return float(self.weights.get(str(client_id), 1.0))

    def slo_class_of(self, client_id: str, requested: Optional[str] = None) -> str:
        """The effective SLO class of one request.

        An explicit per-request class wins; otherwise the client's configured
        default applies; otherwise ``standard``.
        """
        if requested is not None:
            if requested not in SLO_CLASSES:
                raise ValueError(
                    f"unknown SLO class {requested!r}; expected one of {SLO_CLASSES}"
                )
            return str(requested)
        return str(self.slo_classes.get(str(client_id), "standard"))

    def deadline_ms_of(self, slo_class: str) -> Optional[float]:
        """The class's default deadline in milliseconds, or None when unset."""
        deadline_ms = self.class_deadlines_ms.get(str(slo_class))
        return float(deadline_ms) if deadline_ms is not None else None


class QuotaLedger:
    """Thread-safe per-client enforcement of one :class:`FairnessPolicy`.

    ``admit`` spends a token and reserves an in-flight slot; every admitted
    request must be matched by exactly one ``release`` when it settles
    (completed, failed, or cancelled).  With a ``None`` policy (or one with
    no limits) both are no-ops, so callers never need to branch.

    Per-client buckets are bounded (``max_clients``, LRU): client ids are
    client-*chosen* strings, so unbounded per-id state would let an id-
    rotating caller exhaust the admission layer's memory.  An evicted
    (least-recently-seen) client restarts with a fresh burst on return —
    the standard trade of identity-keyed rate limiting, which by nature
    cannot bound callers that mint a new identity per request.
    """

    def __init__(
        self, policy: Optional[FairnessPolicy] = None, max_clients: int = 4096
    ) -> None:
        if max_clients < 1:
            raise ValueError("max_clients must be at least 1")
        self.policy = policy
        self.max_clients = int(max_clients)
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()
        self._inflight: Dict[str, int] = {}
        self.throttled = 0
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        """Whether this enforcer has an active policy."""
        return self.policy is not None and self.policy.enabled

    def admit(self, client_id: str) -> None:
        """Admit one request of ``client_id`` or raise QuotaExceededError."""
        policy = self.policy
        if policy is None or not policy.enabled:
            return
        client_id = str(client_id)
        with self._lock:
            if policy.limits_inflight:
                inflight = self._inflight.get(client_id, 0)
                if inflight >= int(policy.max_inflight):
                    self.throttled += 1
                    raise QuotaExceededError(
                        f"client {client_id!r} already has {inflight} requests "
                        f"in flight (cap {policy.max_inflight}); retry when one "
                        "completes",
                        retry_after=0.05,
                    )
            if policy.limits_rate:
                bucket = self._buckets.get(client_id)
                if bucket is None:
                    bucket = self._buckets[client_id] = TokenBucket(
                        float(policy.quota_rps), policy.bucket_capacity()
                    )
                    while len(self._buckets) > self.max_clients:
                        self._buckets.popitem(last=False)
                else:
                    self._buckets.move_to_end(client_id)
                retry_after = bucket.try_acquire()
                if retry_after > 0.0:
                    self.throttled += 1
                    raise QuotaExceededError(
                        f"client {client_id!r} exceeded its rate quota of "
                        f"{policy.quota_rps:g} requests/second; retry in "
                        f"{retry_after:.3f}s",
                        retry_after=retry_after,
                    )
            if policy.limits_inflight:
                self._inflight[client_id] = self._inflight.get(client_id, 0) + 1

    def release(self, client_id: str) -> None:
        """Return the in-flight slot taken by one admitted request."""
        policy = self.policy
        if policy is None or not policy.limits_inflight:
            return
        client_id = str(client_id)
        with self._lock:
            count = self._inflight.get(client_id, 0) - 1
            if count > 0:
                self._inflight[client_id] = count
            else:
                self._inflight.pop(client_id, None)

    def inflight(self, client_id: str) -> int:
        """A client's current queued+executing request count."""
        with self._lock:
            return self._inflight.get(str(client_id), 0)

    def summary(self) -> Dict[str, object]:
        """Quota totals and per-client in-flight counts, for stats()."""
        policy = self.policy
        with self._lock:
            return {
                "enabled": self.enabled,
                "quota_rps": policy.quota_rps if policy else None,
                "max_inflight": policy.max_inflight if policy else None,
                "throttled": self.throttled,
                "clients_inflight": dict(sorted(self._inflight.items())),
            }


__all__ = ["TokenBucket", "FairnessPolicy", "QuotaLedger"]
