"""Homomorphic tensor kernels: EVA-graph builders for neural-network layers.

These are the vectorized tensor kernels of Section 7.2: each layer of a
:class:`~repro.nn.network.Network` is lowered onto EVA's vector instructions
(rotations, plaintext multiplications by masked weight vectors, additions, and
SUM reductions), one ciphertext per channel in the CHW layout.

The builders label every generated instruction with the layer's kernel name.
The label has no semantic effect; it feeds the bulk-synchronous baseline
scheduler used for the CHET comparison (Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import CompilationError
from ..frontend.pyeva import EvaProgram, Expr
from .layout import TensorLayout
from .network import Activation, AveragePool2D, Conv2D, Dense


@dataclass
class SpatialTensor:
    """An activation tensor packed one ciphertext per channel."""

    channels: List[Expr]
    layout: TensorLayout


@dataclass
class NeuronVector:
    """A dense activation vector: one broadcast ciphertext per neuron."""

    neurons: List[Expr]


class KernelBuilder:
    """Builds EVA graphs for network layers inside an :class:`EvaProgram`."""

    def __init__(
        self,
        program: EvaProgram,
        vector_scale: float,
        scalar_scale: float,
    ) -> None:
        self.program = program
        self.vector_scale = float(vector_scale)
        self.scalar_scale = float(scalar_scale)
        self._rotation_cache: Dict[Tuple[int, int], Expr] = {}

    # -- primitive helpers ---------------------------------------------------------
    def rotate(self, expr: Expr, offset: int) -> Expr:
        """Rotate so that slot ``p`` of the result reads slot ``p + offset``."""
        if offset == 0:
            return expr
        key = (expr.term.id, offset)
        cached = self._rotation_cache.get(key)
        if cached is None:
            cached = expr << offset if offset > 0 else expr >> (-offset)
            self._rotation_cache[key] = cached
        return cached

    def vector_constant(self, values: np.ndarray) -> Expr:
        return self.program.constant(np.asarray(values, dtype=np.float64), scale=self.vector_scale)

    def scalar_constant(self, value: float) -> Expr:
        return self.program.constant(float(value), scale=self.scalar_scale)

    # -- layer kernels ----------------------------------------------------------------
    def conv2d(self, data: SpatialTensor, layer: Conv2D) -> SpatialTensor:
        """Convolution as masked rotate-multiply-accumulate (zero padding)."""
        layout = data.layout
        if layer.in_channels != len(data.channels):
            raise CompilationError(
                f"{layer.name}: expected {layer.in_channels} input channels, "
                f"got {len(data.channels)}"
            )
        out_layout = layout.after_conv(layer.kernel, layer.stride, layer.padding)
        pad = (layer.kernel - 1) // 2 if layer.padding == "same" else 0
        vec_size = self.program.vec_size
        outputs: List[Expr] = []
        with self.program.kernel(layer.name):
            for oc in range(layer.out_channels):
                acc: Optional[Expr] = None
                for ic in range(layer.in_channels):
                    for dy in range(layer.kernel):
                        for dx in range(layer.kernel):
                            weight = float(layer.weights[oc, ic, dy, dx])
                            if weight == 0.0:
                                continue
                            mask = self._conv_mask(
                                layout, out_layout, layer.stride, pad, dy, dx, weight, vec_size
                            )
                            if not np.any(mask):
                                continue
                            offset = layout.offset(dy - pad, dx - pad)
                            rotated = self.rotate(data.channels[ic], offset)
                            term = rotated * self.vector_constant(mask)
                            acc = term if acc is None else acc + term
                if acc is None:
                    raise CompilationError(f"{layer.name}: output channel {oc} is empty")
                if layer.bias is not None:
                    acc = acc + self.scalar_constant(float(layer.bias[oc]))
                outputs.append(acc)
        return SpatialTensor(outputs, out_layout)

    def average_pool(self, data: SpatialTensor, layer: AveragePool2D) -> SpatialTensor:
        """Average pooling as a per-channel uniform-weight convolution."""
        layout = data.layout
        out_layout = layout.after_conv(layer.kernel, layer.stride, "valid")
        weight = 1.0 / float(layer.kernel * layer.kernel)
        vec_size = self.program.vec_size
        outputs: List[Expr] = []
        with self.program.kernel(layer.name):
            for channel in data.channels:
                acc: Optional[Expr] = None
                for dy in range(layer.kernel):
                    for dx in range(layer.kernel):
                        mask = self._conv_mask(
                            layout, out_layout, layer.stride, 0, dy, dx, weight, vec_size
                        )
                        offset = layout.offset(dy, dx)
                        term = self.rotate(channel, offset) * self.vector_constant(mask)
                        acc = term if acc is None else acc + term
                outputs.append(acc)
        return SpatialTensor(outputs, out_layout)

    def activation(self, data, layer: Activation):
        """Polynomial activation applied element-wise (square by default)."""
        with self.program.kernel(layer.name):
            if isinstance(data, SpatialTensor):
                return SpatialTensor(
                    [self._activate(c, layer) for c in data.channels], data.layout
                )
            return NeuronVector([self._activate(n, layer) for n in data.neurons])

    def _activate(self, x: Expr, layer: Activation) -> Expr:
        result: Optional[Expr] = None
        if layer.square_coeff != 0.0:
            squared = x * x
            if layer.square_coeff != 1.0:
                squared = squared * self.scalar_constant(layer.square_coeff)
            result = squared
        if layer.linear_coeff != 0.0:
            linear = x * self.scalar_constant(layer.linear_coeff)
            result = linear if result is None else result + linear
        if result is None:
            result = x * self.scalar_constant(0.0)
        if layer.constant_coeff != 0.0:
            result = result + self.scalar_constant(layer.constant_coeff)
        return result

    def dense(self, data, layer: Dense):
        """Fully connected layer.

        On spatial input the weights are laid out as masked vectors per input
        channel and reduced with a SUM; on neuron-vector input the weighted
        sum uses scalar constants directly.
        """
        with self.program.kernel(layer.name):
            if isinstance(data, SpatialTensor):
                return self._dense_from_spatial(data, layer)
            return self._dense_from_neurons(data, layer)

    def _dense_from_spatial(self, data: SpatialTensor, layer: Dense) -> NeuronVector:
        layout = data.layout
        per_channel = layout.height * layout.width
        expected = per_channel * len(data.channels)
        if layer.in_features != expected:
            raise CompilationError(
                f"{layer.name}: expects {layer.in_features} inputs but the spatial "
                f"tensor provides {expected}"
            )
        vec_size = self.program.vec_size
        neurons: List[Expr] = []
        for j in range(layer.out_features):
            acc: Optional[Expr] = None
            for ic, channel in enumerate(data.channels):
                mask = np.zeros(vec_size)
                for r in range(layout.height):
                    for c in range(layout.width):
                        flat = ic * per_channel + r * layout.width + c
                        mask[layout.physical_index(r, c)] = layer.weights[j, flat]
                if not np.any(mask):
                    continue
                term = channel * self.vector_constant(mask)
                acc = term if acc is None else acc + term
            if acc is None:
                acc = data.channels[0] * self.scalar_constant(0.0)
            total = acc.sum()
            if layer.bias is not None and layer.bias[j] != 0.0:
                total = total + self.scalar_constant(float(layer.bias[j]))
            neurons.append(total)
        return NeuronVector(neurons)

    def _dense_from_neurons(self, data: NeuronVector, layer: Dense) -> NeuronVector:
        if layer.in_features != len(data.neurons):
            raise CompilationError(
                f"{layer.name}: expects {layer.in_features} inputs but got "
                f"{len(data.neurons)} neurons"
            )
        neurons: List[Expr] = []
        for j in range(layer.out_features):
            acc: Optional[Expr] = None
            for i, neuron in enumerate(data.neurons):
                weight = float(layer.weights[j, i])
                if weight == 0.0:
                    continue
                term = neuron * self.scalar_constant(weight)
                acc = term if acc is None else acc + term
            if acc is None:
                acc = data.neurons[0] * self.scalar_constant(0.0)
            if layer.bias is not None and layer.bias[j] != 0.0:
                acc = acc + self.scalar_constant(float(layer.bias[j]))
            neurons.append(acc)
        return NeuronVector(neurons)

    # -- internals ---------------------------------------------------------------------
    @staticmethod
    def _conv_mask(
        layout: TensorLayout,
        out_layout: TensorLayout,
        stride: int,
        pad: int,
        dy: int,
        dx: int,
        weight: float,
        vec_size: int,
    ) -> np.ndarray:
        """Weight mask over output positions whose (dy, dx) tap is in bounds."""
        mask = np.zeros(vec_size)
        for r in range(out_layout.height):
            in_r = r * stride + dy - pad
            if not 0 <= in_r < layout.height:
                continue
            for c in range(out_layout.width):
                in_c = c * stride + dx - pad
                if not 0 <= in_c < layout.width:
                    continue
                mask[out_layout.physical_index(r, c)] = weight
        return mask
