"""Data layouts for packing image tensors into ciphertext slots.

CHET (and this reproduction) packs one image channel per ciphertext in
row-major CHW order.  Strided convolutions and pooling do not physically
compact their outputs (that would need expensive data movement under
encryption); instead the *layout* records a ``gap`` — the dilation between
logically adjacent elements — and subsequent kernels scale their rotation
offsets by it.  This is CHET's strided/gapped layout selection, specialised to
the CHW layout the paper's evaluation uses.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class TensorLayout:
    """Physical layout of one channel of an activation tensor.

    Attributes
    ----------
    height, width:
        Logical spatial dimensions of the tensor.
    base_width:
        Width of the physical row-major grid the data was originally packed
        into (never changes as strides accumulate).
    gap:
        Physical distance between logically adjacent elements along either
        spatial axis (1 for a freshly packed image; doubled by each stride-2
        layer).
    """

    height: int
    width: int
    base_width: int
    gap: int = 1

    @property
    def logical_size(self) -> int:
        return self.height * self.width

    def physical_index(self, row: int, col: int) -> int:
        """Slot index of logical element (row, col)."""
        return (row * self.gap) * self.base_width + (col * self.gap)

    def required_slots(self) -> int:
        """Minimum number of slots needed to address every element."""
        if self.height == 0 or self.width == 0:
            return 0
        return self.physical_index(self.height - 1, self.width - 1) + 1

    def offset(self, delta_row: int, delta_col: int) -> int:
        """Physical rotation offset corresponding to a logical displacement."""
        return self.gap * (delta_row * self.base_width + delta_col)

    def after_conv(self, kernel: int, stride: int, padding: str) -> "TensorLayout":
        """Layout of the output of a convolution/pooling with these parameters."""
        if padding == "same":
            out_h = (self.height + stride - 1) // stride
            out_w = (self.width + stride - 1) // stride
        elif padding == "valid":
            out_h = (self.height - kernel) // stride + 1
            out_w = (self.width - kernel) // stride + 1
        else:
            raise ValueError(f"unknown padding mode {padding!r}")
        return replace(self, height=out_h, width=out_w, gap=self.gap * stride)

    @classmethod
    def packed(cls, height: int, width: int) -> "TensorLayout":
        """Layout of a freshly packed (dense, gap-1) image."""
        return cls(height=height, width=width, base_width=width, gap=1)
