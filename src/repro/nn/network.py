"""Plaintext network description and NumPy reference semantics.

A :class:`Network` is an ordered list of layers with concrete weights; it can
be evaluated directly on NumPy arrays (the unencrypted reference used for
training and for the accuracy comparisons of Table 4) and compiled to an EVA
program by :mod:`repro.nn.chet`.

Only FHE-compatible layers are provided, mirroring how the CHET authors made
the paper's networks FHE-compatible: convolutions, average pooling (instead of
max pooling), polynomial activations (instead of ReLU), flatten, and dense
layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np


@dataclass
class Conv2D:
    """2-D convolution with optional bias.

    ``weights`` has shape ``(out_channels, in_channels, kernel, kernel)``;
    ``bias`` has shape ``(out_channels,)`` or is None.  ``padding`` is
    ``"same"`` (zero padding, output spatial size ``ceil(in / stride)``) or
    ``"valid"``.
    """

    weights: np.ndarray
    bias: Optional[np.ndarray] = None
    stride: int = 1
    padding: str = "same"
    name: str = "conv"

    @property
    def out_channels(self) -> int:
        return self.weights.shape[0]

    @property
    def in_channels(self) -> int:
        return self.weights.shape[1]

    @property
    def kernel(self) -> int:
        return self.weights.shape[2]

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Reference forward pass on a (channels, height, width) array.

        Vectorized over output positions: the kernel taps are enumerated and
        each contributes a strided slice of the (zero padded) input.
        """
        channels, height, width = x.shape
        k, stride = self.kernel, self.stride
        if self.padding == "same":
            out_h = (height + stride - 1) // stride
            out_w = (width + stride - 1) // stride
            pad = (k - 1) // 2
        elif self.padding == "valid":
            out_h = (height - k) // stride + 1
            out_w = (width - k) // stride + 1
            pad = 0
        else:
            raise ValueError(f"unknown padding mode {self.padding!r}")
        padded = np.zeros((channels, height + 2 * pad + k, width + 2 * pad + k))
        padded[:, pad : pad + height, pad : pad + width] = x
        out = np.zeros((self.out_channels, out_h, out_w))
        for dy in range(k):
            for dx in range(k):
                window = padded[
                    :,
                    dy : dy + out_h * stride : stride,
                    dx : dx + out_w * stride : stride,
                ][:, :out_h, :out_w]
                # (oc, ic) x (ic, out_h, out_w) -> (oc, out_h, out_w)
                out += np.einsum("oi,ihw->ohw", self.weights[:, :, dy, dx], window)
        if self.bias is not None:
            out += self.bias[:, None, None]
        return out


@dataclass
class AveragePool2D:
    """Average pooling with a square window."""

    kernel: int = 2
    stride: int = 2
    name: str = "pool"

    def forward(self, x: np.ndarray) -> np.ndarray:
        channels, height, width = x.shape
        out_h = (height - self.kernel) // self.stride + 1
        out_w = (width - self.kernel) // self.stride + 1
        out = np.zeros((channels, out_h, out_w))
        for r in range(out_h):
            for c in range(out_w):
                window = x[
                    :,
                    r * self.stride : r * self.stride + self.kernel,
                    c * self.stride : c * self.stride + self.kernel,
                ]
                out[:, r, c] = window.mean(axis=(1, 2))
        return out


@dataclass
class Activation:
    """Polynomial activation ``a*x^2 + b*x + c`` (square activation by default)."""

    square_coeff: float = 1.0
    linear_coeff: float = 0.0
    constant_coeff: float = 0.0
    name: str = "act"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.square_coeff * x * x + self.linear_coeff * x + self.constant_coeff

    @classmethod
    def square(cls, name: str = "act") -> "Activation":
        return cls(1.0, 0.0, 0.0, name=name)

    @classmethod
    def polynomial(cls, square: float, linear: float, constant: float = 0.0, name: str = "act") -> "Activation":
        return cls(square, linear, constant, name=name)


@dataclass
class Flatten:
    """Flatten a (channels, height, width) tensor into a vector (CHW order)."""

    name: str = "flatten"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x.reshape(-1)


@dataclass
class Dense:
    """Fully connected layer: ``y = W x + b``."""

    weights: np.ndarray
    bias: Optional[np.ndarray] = None
    name: str = "fc"

    @property
    def out_features(self) -> int:
        return self.weights.shape[0]

    @property
    def in_features(self) -> int:
        return self.weights.shape[1]

    def forward(self, x: np.ndarray) -> np.ndarray:
        y = self.weights @ x
        if self.bias is not None:
            y = y + self.bias
        return y


Layer = object  # any of the dataclasses above


@dataclass
class Network:
    """An ordered list of layers plus the expected input shape (C, H, W)."""

    name: str
    input_shape: Tuple[int, int, int]
    layers: List[Layer] = field(default_factory=list)

    def forward(self, image: np.ndarray) -> np.ndarray:
        """Unencrypted reference inference for one image (C, H, W)."""
        x: np.ndarray = np.asarray(image, dtype=np.float64)
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def predict(self, image: np.ndarray) -> int:
        """Class prediction (arg-max of the logits)."""
        return int(np.argmax(self.forward(image)))

    def layer_summary(self) -> List[str]:
        """Human-readable one-line-per-layer summary."""
        lines = []
        for layer in self.layers:
            if isinstance(layer, Conv2D):
                lines.append(
                    f"{layer.name}: Conv2D {layer.out_channels}x{layer.in_channels}"
                    f"x{layer.kernel}x{layer.kernel} stride={layer.stride} pad={layer.padding}"
                )
            elif isinstance(layer, Dense):
                lines.append(f"{layer.name}: Dense {layer.out_features}x{layer.in_features}")
            elif isinstance(layer, Activation):
                lines.append(
                    f"{layer.name}: Activation {layer.square_coeff:g}x^2+{layer.linear_coeff:g}x"
                )
            elif isinstance(layer, AveragePool2D):
                lines.append(f"{layer.name}: AveragePool {layer.kernel}x{layer.kernel}")
            else:
                lines.append(f"{layer.name}: {type(layer).__name__}")
        return lines

    def count_layers(self) -> dict:
        """Counts used for the Table 3 style summary."""
        return {
            "conv": sum(isinstance(l, Conv2D) for l in self.layers),
            "fc": sum(isinstance(l, Dense) for l in self.layers),
            "act": sum(isinstance(l, Activation) for l in self.layers),
        }
