"""CHET re-targeted onto EVA: compile neural networks to EVA programs.

This module plays the role of the modified CHET of Section 7.2: it takes a
network described as high-level tensor operations (:class:`~repro.nn.network.Network`),
lowers every layer through the homomorphic tensor kernels of
:mod:`repro.nn.kernels` into a single EVA program, and hands that program to
the EVA compiler for FHE-specific optimization, validation, parameter
selection, and rotation-key selection.

The original CHET baseline is reproduced by compiling the same program with
``CompilerOptions(policy="chet")``, which swaps in the per-multiply rescaling,
lazy modulus switching, and per-kernel level alignment that model CHET's
expert kernel library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..backend.hisa import HomomorphicBackend
from ..core.compiler import CompilationResult, CompilerOptions
from ..errors import CompilationError
from ..frontend.pyeva import EvaProgram
from .kernels import KernelBuilder, NeuronVector, SpatialTensor
from .layout import TensorLayout
from .network import Activation, AveragePool2D, Conv2D, Dense, Flatten, Network


def _next_power_of_two(value: int) -> int:
    power = 1
    while power < value:
        power *= 2
    return power


@dataclass
class ScaleConfig:
    """Programmer-specified scaling factors (Table 4's logP values)."""

    cipher: float = 25.0
    vector: float = 15.0
    scalar: float = 10.0
    output: float = 30.0


@dataclass
class CompiledNetwork:
    """A network compiled to an executable EVA program."""

    network: Network
    compilation: CompilationResult
    input_names: List[str]
    output_names: List[str]
    vec_size: int
    scales: ScaleConfig

    def image_to_inputs(self, image: np.ndarray) -> Dict[str, np.ndarray]:
        """Pack one (C, H, W) image into the executor's input dictionary."""
        channels, height, width = self.network.input_shape
        image = np.asarray(image, dtype=np.float64).reshape(channels, height, width)
        inputs = {}
        for index in range(channels):
            flat = np.zeros(self.vec_size)
            flat[: height * width] = image[index].reshape(-1)
            inputs[self.input_names[index]] = flat
        return inputs

    def logits_from_outputs(self, outputs: Dict[str, np.ndarray]) -> np.ndarray:
        """Extract the logits vector from decrypted program outputs."""
        return np.array([outputs[name][0] for name in self.output_names])


class DnnCompiler:
    """Compiles :class:`Network` objects to EVA programs (the CHET frontend)."""

    def __init__(
        self,
        scales: Optional[ScaleConfig] = None,
        options: Optional[CompilerOptions] = None,
    ) -> None:
        self.scales = scales or ScaleConfig()
        self.options = options or CompilerOptions()

    # -- program construction -----------------------------------------------------------
    def build_program(self, network: Network) -> EvaProgram:
        """Lower the network through the tensor kernels into an EVA input program."""
        channels, height, width = network.input_shape
        vec_size = _next_power_of_two(height * width)
        program = EvaProgram(network.name, vec_size=vec_size, default_scale=self.scales.cipher)
        with program:
            builder = KernelBuilder(program, self.scales.vector, self.scales.scalar)
            layout = TensorLayout.packed(height, width)
            data = SpatialTensor(
                [
                    program.input_encrypted(f"image_c{index}", scale=self.scales.cipher)
                    for index in range(channels)
                ],
                layout,
            )
            data = self._lower_layers(builder, data, network)
            if isinstance(data, NeuronVector):
                for index, neuron in enumerate(data.neurons):
                    program.output(f"logit_{index}", neuron, scale=self.scales.output)
            else:
                for index, channel in enumerate(data.channels):
                    program.output(f"channel_{index}", channel, scale=self.scales.output)
        return program

    def _lower_layers(self, builder: KernelBuilder, data, network: Network):
        for layer in network.layers:
            if isinstance(layer, Conv2D):
                data = builder.conv2d(data, layer)
            elif isinstance(layer, AveragePool2D):
                data = builder.average_pool(data, layer)
            elif isinstance(layer, Activation):
                data = builder.activation(data, layer)
            elif isinstance(layer, Dense):
                data = builder.dense(data, layer)
            elif isinstance(layer, Flatten):
                continue  # flattening is implicit in the dense kernel
            else:
                raise CompilationError(f"unsupported layer type {type(layer).__name__}")
        return data

    def compile(self, network: Network) -> CompiledNetwork:
        """Build and compile the network, returning an executable artifact."""
        program = self.build_program(network)
        compilation = program.compile(options=self.options)
        channels = network.input_shape[0]
        input_names = [f"image_c{i}" for i in range(channels)]
        output_names = [
            name for name in compilation.program.outputs if name.startswith("logit_")
        ]
        if not output_names:
            output_names = list(compilation.program.outputs)
        return CompiledNetwork(
            network=network,
            compilation=compilation,
            input_names=input_names,
            output_names=output_names,
            vec_size=program.vec_size,
            scales=self.scales,
        )


class EncryptedInferenceSession:
    """A client/server pair for repeated encrypted inferences on one network.

    Uses the three-artifact API of :mod:`repro.api`: the client kit owns the
    keys and encrypts each image, the server runtime evaluates the compiled
    network on ciphertexts only (it is never given the secret key), and the
    client decrypts the logits.  Key generation happens once per session, so
    batch evaluations (accuracy sweeps) amortize it across images.
    """

    def __init__(
        self,
        compiled: CompiledNetwork,
        backend: Optional[HomomorphicBackend] = None,
        threads: int = 1,
    ) -> None:
        from ..api import ClientKit, CompiledProgram, ServerRuntime

        self.compiled = compiled
        artifact = CompiledProgram(compiled.compilation)
        self.client = ClientKit(artifact, backend=backend)
        self.server = ServerRuntime(
            artifact, backend=self.client.backend, threads=threads
        )
        self.server.attach_client(
            self.client.client_id, self.client.evaluation_context()
        )

    def infer(self, image: np.ndarray) -> np.ndarray:
        """Encrypt one image, evaluate blindly, decrypt and return the logits."""
        bundle = self.client.encrypt_inputs(self.compiled.image_to_inputs(image))
        outputs = self.client.decrypt_outputs(self.server.evaluate(bundle))
        return self.compiled.logits_from_outputs(outputs)


def encrypted_inference(
    compiled: CompiledNetwork,
    image: np.ndarray,
    backend: Optional[HomomorphicBackend] = None,
    threads: int = 1,
) -> np.ndarray:
    """Run one encrypted inference and return the logits."""
    session = EncryptedInferenceSession(compiled, backend=backend, threads=threads)
    return session.infer(image)


def encrypted_accuracy(
    compiled: CompiledNetwork,
    images: Sequence[np.ndarray],
    labels: Sequence[int],
    backend: Optional[HomomorphicBackend] = None,
    threads: int = 1,
) -> float:
    """Fraction of images classified correctly under encryption."""
    session = EncryptedInferenceSession(compiled, backend=backend, threads=threads)
    correct = 0
    for image, label in zip(images, labels):
        if int(np.argmax(session.infer(image))) == int(label):
            correct += 1
    return correct / max(len(labels), 1)


def unencrypted_accuracy(network: Network, images: Sequence[np.ndarray], labels: Sequence[int]) -> float:
    """Fraction of images classified correctly by the plaintext reference."""
    correct = sum(
        1 for image, label in zip(images, labels) if network.predict(image) == int(label)
    )
    return correct / max(len(labels), 1)
