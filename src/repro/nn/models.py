"""FHE-compatible network architectures used in the evaluation (Table 3).

The five architectures follow the structure of the paper's networks — the
three LeNet-5 variants, the proprietary "Industrial" network, and a
SqueezeNet-style network for CIFAR — scaled down spatially so that a full
encrypted inference runs in seconds on a laptop-class machine with the
pure-Python backends.  The layer *kinds* and counts match Table 3 (convolution
+ polynomial-activation + dense stacks; the SqueezeNet variant is a deep
all-convolutional network with no dense layer); max pooling and ReLU are
replaced by average pooling and polynomial activations exactly as CHET's
authors did to make the originals FHE-compatible.

Weights of the convolutional feature extractors are drawn from a scaled
Gaussian (and can then be trained with :mod:`repro.nn.training`); the
Industrial network uses uniform random weights in [-1, 1] like the paper,
since its trained model was proprietary even to the original authors.
"""

from __future__ import annotations


import numpy as np

from .network import Activation, AveragePool2D, Conv2D, Dense, Flatten, Network


def _conv(rng, out_channels, in_channels, kernel, stride, name, padding="same", scale=None):
    fan_in = in_channels * kernel * kernel
    scale = scale if scale is not None else 1.0 / np.sqrt(fan_in)
    weights = rng.normal(0.0, scale, (out_channels, in_channels, kernel, kernel))
    bias = rng.normal(0.0, 0.05, out_channels)
    return Conv2D(weights, bias, stride=stride, padding=padding, name=name)


def _dense(rng, out_features, in_features, name, scale=None):
    scale = scale if scale is not None else 1.0 / np.sqrt(in_features)
    weights = rng.normal(0.0, scale, (out_features, in_features))
    bias = np.zeros(out_features)
    return Dense(weights, bias, name=name)


def build_lenet_small(num_classes: int = 10, seed: int = 1) -> Network:
    """LeNet-5-small analogue: 8x8 input, two conv and two dense layers."""
    rng = np.random.default_rng(seed)
    return Network(
        name="LeNet-5-small",
        input_shape=(1, 8, 8),
        layers=[
            _conv(rng, 4, 1, 3, 2, "conv1"),
            Activation.polynomial(0.25, 0.5, name="act1"),
            _conv(rng, 8, 4, 3, 2, "conv2"),
            Activation.polynomial(0.25, 0.5, name="act2"),
            Flatten(),
            _dense(rng, 16, 8 * 2 * 2, "fc1"),
            Activation.polynomial(0.25, 0.5, name="act3"),
            _dense(rng, num_classes, 16, "fc2"),
        ],
    )


def build_lenet_medium(num_classes: int = 10, seed: int = 2) -> Network:
    """LeNet-5-medium analogue: 16x16 input, wider feature maps."""
    rng = np.random.default_rng(seed)
    return Network(
        name="LeNet-5-medium",
        input_shape=(1, 16, 16),
        layers=[
            _conv(rng, 8, 1, 3, 2, "conv1"),
            Activation.polynomial(0.25, 0.5, name="act1"),
            _conv(rng, 16, 8, 3, 2, "conv2"),
            Activation.polynomial(0.25, 0.5, name="act2"),
            Flatten(),
            _dense(rng, 32, 16 * 4 * 4, "fc1"),
            Activation.polynomial(0.25, 0.5, name="act3"),
            _dense(rng, num_classes, 32, "fc2"),
        ],
    )


def build_lenet_large(num_classes: int = 10, seed: int = 3) -> Network:
    """LeNet-5-large analogue: 16x16 input, 5x5 first convolution, wide dense layer."""
    rng = np.random.default_rng(seed)
    return Network(
        name="LeNet-5-large",
        input_shape=(1, 16, 16),
        layers=[
            _conv(rng, 16, 1, 5, 2, "conv1"),
            Activation.polynomial(0.25, 0.5, name="act1"),
            _conv(rng, 32, 16, 3, 2, "conv2"),
            Activation.polynomial(0.25, 0.5, name="act2"),
            Flatten(),
            _dense(rng, 64, 32 * 4 * 4, "fc1"),
            Activation.polynomial(0.25, 0.5, name="act3"),
            _dense(rng, num_classes, 64, "fc2"),
        ],
    )


def build_industrial(num_classes: int = 2, seed: int = 4) -> Network:
    """Industrial analogue: five convolutions, two dense layers, six activations.

    Weights are uniform random in [-1, 1] scaled by the fan-in (the paper also
    evaluated this network with random weights, as the trained model was
    proprietary).
    """
    rng = np.random.default_rng(seed)

    def uconv(out_c, in_c, kernel, stride, name):
        fan_in = in_c * kernel * kernel
        weights = rng.uniform(-1.0, 1.0, (out_c, in_c, kernel, kernel)) / fan_in
        bias = rng.uniform(-1.0, 1.0, out_c) * 0.1
        return Conv2D(weights, bias, stride=stride, padding="same", name=name)

    def udense(out_f, in_f, name):
        weights = rng.uniform(-1.0, 1.0, (out_f, in_f)) / in_f
        bias = rng.uniform(-1.0, 1.0, out_f) * 0.1
        return Dense(weights, bias, name=name)

    return Network(
        name="Industrial",
        input_shape=(1, 16, 16),
        layers=[
            uconv(8, 1, 3, 2, "conv1"),
            Activation.square("act1"),
            uconv(8, 8, 3, 1, "conv2"),
            Activation.square("act2"),
            uconv(16, 8, 3, 2, "conv3"),
            Activation.square("act3"),
            uconv(16, 16, 3, 1, "conv4"),
            Activation.square("act4"),
            uconv(16, 16, 3, 1, "conv5"),
            Activation.square("act5"),
            Flatten(),
            udense(16, 16 * 4 * 4, "fc1"),
            Activation.square("act6"),
            udense(num_classes, 16, "fc2"),
        ],
    )


def build_squeezenet_cifar(num_classes: int = 10, seed: int = 5) -> Network:
    """SqueezeNet-CIFAR analogue: a deep all-convolutional network.

    Ten convolutions with squeeze (1x1) / expand (3x3) alternation in the
    style of Fire modules, nine polynomial activations, no dense layers, and a
    final global average pool over per-class channels.  (The original's
    channel-concatenating Fire modules are linearized into a sequential
    squeeze/expand stack; see DESIGN.md.)
    """
    rng = np.random.default_rng(seed)
    act = lambda name: Activation.polynomial(0.25, 0.5, name=name)  # noqa: E731
    return Network(
        name="SqueezeNet-CIFAR",
        input_shape=(3, 16, 16),
        layers=[
            _conv(rng, 8, 3, 3, 2, "conv1"),
            act("act1"),
            _conv(rng, 4, 8, 1, 1, "fire1_squeeze"),
            act("act2"),
            _conv(rng, 8, 4, 3, 1, "fire1_expand"),
            act("act3"),
            _conv(rng, 4, 8, 1, 2, "fire2_squeeze"),
            act("act4"),
            _conv(rng, 8, 4, 3, 1, "fire2_expand"),
            act("act5"),
            _conv(rng, 4, 8, 1, 1, "fire3_squeeze"),
            act("act6"),
            _conv(rng, 8, 4, 3, 2, "fire3_expand"),
            act("act7"),
            _conv(rng, 8, 8, 3, 1, "fire4_expand"),
            act("act8"),
            _conv(rng, 16, 8, 1, 1, "conv9"),
            act("act9"),
            _conv(rng, num_classes, 16, 1, 1, "conv10"),
            AveragePool2D(kernel=2, stride=2, name="global_pool"),
        ],
    )


#: Registry used by the benchmark harness (Tables 3-7, Figure 7).
MODEL_BUILDERS = {
    "LeNet-5-small": build_lenet_small,
    "LeNet-5-medium": build_lenet_medium,
    "LeNet-5-large": build_lenet_large,
    "Industrial": build_industrial,
    "SqueezeNet-CIFAR": build_squeezenet_cifar,
}


def build_model(name: str, **kwargs) -> Network:
    """Build one of the evaluation networks by name."""
    try:
        return MODEL_BUILDERS[name](**kwargs)
    except KeyError as exc:
        raise KeyError(f"unknown model {name!r}; choose from {sorted(MODEL_BUILDERS)}") from exc
