"""CHET re-targeted onto EVA: homomorphic neural-network inference (Section 7.2)."""

from .chet import (
    CompiledNetwork,
    DnnCompiler,
    EncryptedInferenceSession,
    ScaleConfig,
    encrypted_accuracy,
    encrypted_inference,
    unencrypted_accuracy,
)
from .datasets import ImageDataset, synthetic_image_dataset
from .kernels import KernelBuilder, NeuronVector, SpatialTensor
from .layout import TensorLayout
from .models import (
    MODEL_BUILDERS,
    build_industrial,
    build_lenet_large,
    build_lenet_medium,
    build_lenet_small,
    build_model,
    build_squeezenet_cifar,
)
from .network import Activation, AveragePool2D, Conv2D, Dense, Flatten, Network
from .training import accuracy, extract_features, train_readout

__all__ = [
    "CompiledNetwork",
    "DnnCompiler",
    "ScaleConfig",
    "EncryptedInferenceSession",
    "encrypted_accuracy",
    "encrypted_inference",
    "unencrypted_accuracy",
    "ImageDataset",
    "synthetic_image_dataset",
    "KernelBuilder",
    "NeuronVector",
    "SpatialTensor",
    "TensorLayout",
    "MODEL_BUILDERS",
    "build_model",
    "build_lenet_small",
    "build_lenet_medium",
    "build_lenet_large",
    "build_industrial",
    "build_squeezenet_cifar",
    "Activation",
    "AveragePool2D",
    "Conv2D",
    "Dense",
    "Flatten",
    "Network",
    "accuracy",
    "extract_features",
    "train_readout",
]
