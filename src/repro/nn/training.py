"""Plain-NumPy training for the FHE-compatible networks.

The convolutional feature extractors use fixed (random, suitably scaled)
weights; the final dense classifier is trained with softmax regression on the
extracted features.  This "fixed features + trained read-out" scheme keeps the
training code dependency-free while giving high accuracy on the synthetic
datasets, which is all the Table 3/4 reproduction needs: the claim under test
is that *encrypted* inference matches *unencrypted* inference, not the
absolute accuracy of the models.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .datasets import ImageDataset
from .network import Dense, Network


def _split_at_final_dense(network: Network) -> Tuple[List[object], Dense]:
    """Split the network into (feature layers, final dense layer)."""
    if not network.layers or not isinstance(network.layers[-1], Dense):
        raise ValueError("the network must end with a Dense layer to train its read-out")
    return network.layers[:-1], network.layers[-1]


def extract_features(network: Network, images: Sequence[np.ndarray]) -> np.ndarray:
    """Forward images through every layer except the final dense classifier."""
    feature_layers, _ = _split_at_final_dense(network)
    features = []
    for image in images:
        x = np.asarray(image, dtype=np.float64)
        for layer in feature_layers:
            x = layer.forward(x)
        features.append(np.asarray(x, dtype=np.float64).reshape(-1))
    return np.asarray(features)


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def train_readout(
    network: Network,
    dataset: ImageDataset,
    epochs: int = 300,
    learning_rate: float = 0.5,
    weight_decay: float = 1e-4,
    seed: int = 0,
) -> Network:
    """Train the final dense layer of ``network`` in place and return it.

    Uses full-batch softmax regression with L2 regularization on the features
    produced by the (fixed) earlier layers.
    """
    feature_layers, head = _split_at_final_dense(network)
    features = extract_features(network, dataset.train_images)
    labels = dataset.train_labels.astype(int)
    num_classes = head.out_features
    if features.shape[1] != head.in_features:
        raise ValueError(
            f"feature dimension {features.shape[1]} does not match the dense layer's "
            f"{head.in_features} inputs"
        )
    # Normalize features so a single learning rate works across networks.
    scale = np.maximum(np.std(features, axis=0, keepdims=True), 1e-6)
    normalized = features / scale

    rng = np.random.default_rng(seed)
    weights = rng.normal(0.0, 0.01, (num_classes, features.shape[1]))
    bias = np.zeros(num_classes)
    one_hot = np.eye(num_classes)[labels]
    count = features.shape[0]
    for _ in range(epochs):
        logits = normalized @ weights.T + bias
        probabilities = _softmax(logits)
        gradient = (probabilities - one_hot) / count
        weights -= learning_rate * (gradient.T @ normalized + weight_decay * weights)
        bias -= learning_rate * gradient.sum(axis=0)

    # Fold the feature normalization into the trained weights so inference
    # (encrypted or not) uses raw features.
    head.weights = weights / scale
    head.bias = bias
    return network


def accuracy(network: Network, images: Sequence[np.ndarray], labels: Sequence[int]) -> float:
    """Top-1 accuracy of the plaintext network."""
    correct = sum(
        1 for image, label in zip(images, labels) if network.predict(image) == int(label)
    )
    return correct / max(len(labels), 1)
