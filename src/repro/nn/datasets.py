"""Synthetic image-classification datasets.

The paper evaluates on MNIST, CIFAR-10, and a proprietary industrial dataset,
none of which can be redistributed here; the substitution (documented in
DESIGN.md) is a family of synthetic "blob" datasets: each class is a fixed
random prototype image, and samples are noisy copies of their class prototype.
What matters for the reproduced experiments is that (a) a small network can
learn the task to high accuracy and (b) encrypted inference matches
unencrypted inference — both properties are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass
class ImageDataset:
    """A train/test split of labelled images (channels-first)."""

    train_images: np.ndarray
    train_labels: np.ndarray
    test_images: np.ndarray
    test_labels: np.ndarray
    num_classes: int

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return tuple(self.train_images.shape[1:])


def synthetic_image_dataset(
    num_classes: int = 10,
    image_shape: Tuple[int, int, int] = (1, 16, 16),
    train_per_class: int = 20,
    test_per_class: int = 4,
    noise: float = 0.25,
    seed: int = 0,
) -> ImageDataset:
    """Generate a prototype-plus-noise classification dataset.

    Each class ``c`` has a smooth random prototype image; samples are the
    prototype plus Gaussian pixel noise, clipped to ``[-1, 1]`` so that the
    fixed-point scales of Table 4 are appropriate.
    """
    rng = np.random.default_rng(seed)
    channels, height, width = image_shape
    prototypes = rng.normal(0.0, 0.6, (num_classes, channels, height, width))
    # Smooth the prototypes slightly so classes have spatial structure.
    for axis in (2, 3):
        prototypes = 0.5 * prototypes + 0.25 * (
            np.roll(prototypes, 1, axis=axis) + np.roll(prototypes, -1, axis=axis)
        )

    def sample(count_per_class: int) -> Tuple[np.ndarray, np.ndarray]:
        images = []
        labels = []
        for label in range(num_classes):
            for _ in range(count_per_class):
                image = prototypes[label] + rng.normal(0.0, noise, image_shape)
                images.append(np.clip(image, -1.0, 1.0))
                labels.append(label)
        order = rng.permutation(len(images))
        return np.asarray(images)[order], np.asarray(labels)[order]

    train_images, train_labels = sample(train_per_class)
    test_images, test_labels = sample(test_per_class)
    return ImageDataset(train_images, train_labels, test_images, test_labels, num_classes)
