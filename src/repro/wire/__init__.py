"""Binary wire protocol for the serving transport (``repro.wire``).

The serving stack's original transport is newline-delimited JSON: readable,
debuggable, and ~33% larger than it needs to be the moment ciphertext and
evaluation-key blobs ride along base64-inflated.  This package is the binary
alternative that shares every listener with the JSON protocol:

* :mod:`.frames` — the frame layer: one magic byte (so a server can sniff
  binary frames apart from JSON lines on the same socket), a frame type, a
  varint length, and the payload.  Truncated, oversized, or garbage frames
  raise :class:`~repro.errors.TransportError` without over-reading.
* :mod:`.codec` — the message layer: a request/response dict is split into a
  small JSON *envelope* plus length-delimited binary *blob* records (protobuf
  style, built on :mod:`repro.core.serialization.wire`).  Cipher and key
  blobs travel as raw little-endian bytes — no base64 — and decode into
  zero-copy :class:`memoryview` slices of the received frame.
* :mod:`.protocol` — connection-level concerns: the ``hello`` negotiation
  (a JSON line, so legacy servers answer it with an ordinary error and the
  client falls back to JSON), and chunked streaming uploads so a multi-MB
  evaluation-key set is carried as a sequence of bounded frames instead of
  one monolithic message.

Compatibility promise: a listener that speaks this protocol still serves
plain JSON-lines clients unchanged — framing is sniffed per message from the
first byte, and replies always use the framing of the request they answer.
"""

from .codec import (
    BLOB_KEY,
    UPLOAD_KEY,
    decode_message,
    encode_blob_record,
    encode_envelope,
    encode_message,
    peek_envelope,
    rehydrate,
    replace_envelope,
    split_message,
)
from .frames import (
    FRAME_CHUNK,
    FRAME_REQUEST,
    FRAME_RESPONSE,
    MAGIC,
    MAX_FRAME_BYTES,
    encode_frame,
    read_frame,
    read_varint,
    write_frame,
)
from .protocol import (
    CHUNK_BYTES,
    PROTOCOL_VERSION,
    STREAM_THRESHOLD_BYTES,
    UploadState,
    WIRE_MODES,
    build_hello,
    hello_ack,
    iter_chunks,
    parse_hello_reply,
)

__all__ = [
    "BLOB_KEY",
    "CHUNK_BYTES",
    "FRAME_CHUNK",
    "FRAME_REQUEST",
    "FRAME_RESPONSE",
    "MAGIC",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "STREAM_THRESHOLD_BYTES",
    "UPLOAD_KEY",
    "UploadState",
    "WIRE_MODES",
    "build_hello",
    "decode_message",
    "encode_blob_record",
    "encode_envelope",
    "encode_frame",
    "encode_message",
    "hello_ack",
    "iter_chunks",
    "parse_hello_reply",
    "peek_envelope",
    "read_frame",
    "read_varint",
    "rehydrate",
    "replace_envelope",
    "split_message",
    "write_frame",
]
