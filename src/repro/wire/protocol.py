"""Connection-level pieces of the binary wire protocol.

Two concerns live here, shared by client and server:

**Negotiation.**  A client that wants binary framing opens the conversation
with a plain JSON line — ``{"op": "hello", "wire": "binary", "versions":
[1]}`` — because every server ever shipped can at least parse that.  A
binary-capable server answers ``{"ok": true, "wire": "binary", "version":
1}`` and both sides switch to frames; a server pinned to JSON answers
``{"ok": true, "wire": "json"}``; a *legacy* server answers its ordinary
"unknown op" error, which an ``auto`` client treats as "speak JSON" — so new
clients work against old servers and old clients never see a byte of binary.

**Chunked uploads.**  A multi-megabyte evaluation-key set is not sent as one
monolithic frame: the client streams it as bounded CHUNK frames (one blob
slice each) and finishes with a request frame referencing the upload.  The
server assembles chunks between serving other traffic on the connection, so
a large ``create_session`` no longer head-of-line-blocks every pipelined
request behind one giant read, and per-connection caps bound the memory any
peer can pin.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from ..errors import SerializationError, ServingError
from .frames import MAX_FRAME_BYTES

#: Highest binary protocol version this build speaks.
PROTOCOL_VERSION = 1

#: Client/server wire modes (CLI ``--wire``): ``auto`` negotiates binary and
#: falls back to JSON, the other two force one protocol.
WIRE_MODES = ("auto", "binary", "json")

#: One streamed chunk's blob slice (frame payload stays comfortably small).
CHUNK_BYTES = 256 * 1024

#: Requests whose blobs total more than this are streamed as chunks.
STREAM_THRESHOLD_BYTES = 1024 * 1024

#: Per-connection ceiling on buffered upload bytes, and on concurrent
#: assembling uploads — a misbehaving peer cannot pin unbounded memory.
MAX_UPLOAD_BYTES = MAX_FRAME_BYTES
MAX_OPEN_UPLOADS = 4

_Bytes = Union[bytes, bytearray, memoryview]


def build_hello(mode: str) -> Dict[str, Any]:
    """The hello request an ``auto`` or ``binary`` client opens with."""
    return {"op": "hello", "wire": str(mode), "versions": [PROTOCOL_VERSION]}


def hello_ack(request: Dict[str, Any], policy: str) -> Tuple[Dict[str, Any], str]:
    """Answer a hello under the listener's wire policy.

    Returns ``(reply, negotiated_protocol)``.  Binary is granted when the
    listener allows it (policy ``auto`` or ``binary``) and the client offers
    a version this build speaks; everything else negotiates down to JSON.
    """
    versions = request.get("versions")
    offered = (
        [v for v in versions if isinstance(v, int)]
        if isinstance(versions, list)
        else []
    )
    wants_binary = request.get("wire") in ("binary", "auto")
    if policy != "json" and wants_binary and PROTOCOL_VERSION in offered:
        return (
            {"ok": True, "wire": "binary", "version": PROTOCOL_VERSION},
            "binary",
        )
    return {"ok": True, "wire": "json"}, "json"


def parse_hello_reply(reply: Dict[str, Any], mode: str) -> Tuple[str, Optional[int]]:
    """Interpret the server's hello reply; returns (protocol, version).

    In ``auto`` mode any refusal — a JSON-pinned server, or a legacy server
    answering "unknown op" — falls back to JSON.  In forced ``binary`` mode a
    refusal is an error, because the caller asked for a guarantee the server
    cannot give.
    """
    if reply.get("ok") and reply.get("wire") == "binary":
        version = reply.get("version")
        if version != PROTOCOL_VERSION:
            raise ServingError(
                f"server negotiated unsupported wire protocol version {version!r}"
            )
        return "binary", PROTOCOL_VERSION
    if mode == "binary":
        detail = reply.get("error") or reply.get("wire") or "refused"
        raise ServingError(
            f"server does not speak the binary wire protocol ({detail}); "
            "use --wire auto or json against it"
        )
    return "json", None


def iter_chunks(blob: _Bytes, size: int = CHUNK_BYTES) -> Iterator[memoryview]:
    """Slice one blob into bounded memoryview chunks (zero-copy)."""
    view = memoryview(blob)
    if not len(view):
        yield view
        return
    for start in range(0, len(view), size):
        yield view[start : start + size]


class _Upload:
    __slots__ = ("blobs", "complete", "error", "total")

    def __init__(self) -> None:
        self.blobs: List[bytearray] = []
        self.complete: List[bool] = []
        self.error: Optional[str] = None
        self.total = 0


class UploadState:
    """Per-connection assembly of chunked blob uploads.

    Chunk envelopes carry ``{"upload": id, "blob": index, "eof": bool}``;
    chunks of one blob arrive in order (TCP per-connection ordering), blobs
    may interleave.  Violations — byte caps, too many concurrent uploads,
    malformed indices — *poison* the upload rather than raising: CHUNK
    frames are never answered individually, so the error is reported exactly
    once, on the final request that references the upload.
    """

    def __init__(
        self,
        max_bytes: int = MAX_UPLOAD_BYTES,
        max_uploads: int = MAX_OPEN_UPLOADS,
    ) -> None:
        self.max_bytes = int(max_bytes)
        self.max_uploads = int(max_uploads)
        self._uploads: Dict[str, _Upload] = {}

    def __len__(self) -> int:
        return len(self._uploads)

    def add_chunk(self, envelope: Dict[str, Any], data: _Bytes) -> None:
        """Buffer one chunk frame's blob slice (copies it — the frame buffer
        is released when the handler moves to the next message)."""
        upload_id = str(envelope.get("upload"))
        upload = self._uploads.get(upload_id)
        if upload is None:
            if len(self._uploads) >= self.max_uploads:
                upload = _Upload()
                upload.error = (
                    f"connection exceeds {self.max_uploads} concurrent uploads"
                )
                self._uploads[upload_id] = upload
                return
            upload = self._uploads[upload_id] = _Upload()
        if upload.error is not None:
            return
        index = envelope.get("blob")
        if not isinstance(index, int) or index < 0 or index > len(upload.blobs):
            upload.error = f"chunk references blob {index!r} out of order"
            upload.blobs.clear()
            return
        upload.total += len(data)
        if upload.total > self.max_bytes:
            upload.error = (
                f"upload exceeds the {self.max_bytes}-byte per-connection cap"
            )
            upload.blobs.clear()
            return
        if index == len(upload.blobs):
            upload.blobs.append(bytearray())
            upload.complete.append(False)
        if upload.complete[index]:
            upload.error = f"chunk appends to already-finished blob {index}"
            upload.blobs.clear()
            return
        upload.blobs[index] += data
        if envelope.get("eof"):
            upload.complete[index] = True

    def finish(self, upload_id: Any) -> List[bytearray]:
        """Claim a completed upload's blobs for the referencing request.

        Raises :class:`~repro.errors.SerializationError` for unknown,
        incomplete, or poisoned uploads — surfaced as an ordinary error
        reply to the request, never as a dead connection.
        """
        upload = self._uploads.pop(str(upload_id), None)
        if upload is None:
            raise SerializationError(
                f"request references unknown upload {upload_id!r}"
            )
        if upload.error is not None:
            raise SerializationError(f"upload {upload_id!r} failed: {upload.error}")
        if not all(upload.complete):
            raise SerializationError(
                f"upload {upload_id!r} is incomplete "
                f"({sum(upload.complete)} of {len(upload.blobs)} blobs finished)"
            )
        return upload.blobs
