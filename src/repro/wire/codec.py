"""Message layer of the binary wire protocol: envelope + blob records.

A request/response dict is transported as a protobuf-style field sequence::

    field 1 (length-delimited)           the *envelope*: UTF-8 JSON of the
                                         message with every packed array
                                         replaced by a ``{"$blob": i}``
                                         placeholder
    field 2 (length-delimited, repeated) the blobs, raw little-endian bytes,
                                         in placeholder order

The envelope stays tiny (op, names, scales, shapes) while ciphertext and
evaluation-key payloads — the megabytes — travel as raw bytes: no base64
(+33%), no JSON string scanning.  Decoding hands each blob back as a
:class:`memoryview` slice of the received payload, so a multi-megabyte key
set is never copied on its way to :func:`numpy.frombuffer`.

Packed arrays are recognized in both forms the serialization layer produces:
the binary fast path ``{"raw": <bytes>, "dtype", "shape"}`` (see
:func:`repro.core.serialization.packing.raw_blobs`) and the legacy base64
form ``{"b64": <str>, "dtype", "shape"}``, which is decoded to raw bytes on
the way out — so even a payload built for the JSON wire gains the binary
size win when sent through a binary connection.
"""

from __future__ import annotations

import base64
import binascii
import json
from typing import Any, Dict, List, Sequence, Tuple, Union

from ..errors import TransportError
from .frames import MAX_FRAME_BYTES, encode_varint

#: Envelope JSON is field 1, blobs are field 2 (both length-delimited).
_ENVELOPE_TAG = (1 << 3) | 2
_BLOB_TAG = (2 << 3) | 2

#: Placeholder key marking an extracted blob inside the envelope.
BLOB_KEY = "$blob"

#: Envelope key referencing a chunked upload instead of inline blobs.
UPLOAD_KEY = "$upload"

_Bytes = Union[bytes, bytearray, memoryview]


def _is_packed(node: Dict[str, Any]) -> bool:
    """Is this dict a packed-array record the codec should lift to a blob?"""
    if "dtype" not in node:
        return False
    if isinstance(node.get("raw"), (bytes, bytearray, memoryview)):
        return True
    return isinstance(node.get("b64"), str)


def _extract(node: Any, blobs: List[_Bytes]) -> Any:
    """Deep-copy ``node`` with packed arrays replaced by blob placeholders."""
    if isinstance(node, dict):
        if _is_packed(node):
            if "raw" in node:
                data: _Bytes = node["raw"]
            else:
                try:
                    data = base64.b64decode(node["b64"], validate=True)
                except (binascii.Error, ValueError) as exc:
                    raise TransportError(
                        f"malformed base64 blob in outgoing message: {exc}"
                    ) from exc
            meta = {
                key: value
                for key, value in node.items()
                if key not in ("raw", "b64")
            }
            meta[BLOB_KEY] = len(blobs)
            blobs.append(data)
            return meta
        return {key: _extract(value, blobs) for key, value in node.items()}
    if isinstance(node, (list, tuple)):
        return [_extract(item, blobs) for item in node]
    return node


def split_message(message: Dict[str, Any]) -> Tuple[Dict[str, Any], List[_Bytes]]:
    """Split a message dict into (envelope, blobs) without encoding yet.

    Callers that stream blobs separately (chunked uploads) use the parts;
    :func:`encode_message` is the one-shot path.
    """
    blobs: List[_Bytes] = []
    envelope = _extract(message, blobs)
    return envelope, blobs


def encode_envelope(envelope: Dict[str, Any]) -> bytes:
    """Field 1 of a frame payload: the length-delimited envelope JSON."""
    data = json.dumps(envelope, separators=(",", ":")).encode("utf-8")
    return encode_varint(_ENVELOPE_TAG) + encode_varint(len(data)) + data


def encode_blob_record(blob: _Bytes) -> List[_Bytes]:
    """One field-2 blob record as frame-payload parts (header, then the blob
    by reference — a multi-megabyte buffer is never concatenated)."""
    if len(blob) > MAX_FRAME_BYTES:
        raise TransportError(
            f"a {len(blob)}-byte blob exceeds the frame limit; stream it "
            "as chunks instead"
        )
    return [encode_varint(_BLOB_TAG) + encode_varint(len(blob)), blob]


def encode_message(message: Dict[str, Any]) -> List[_Bytes]:
    """Encode a message dict as frame-payload parts (envelope + blobs).

    Returns a list of byte-like parts for :func:`repro.wire.frames.write_frame`
    — blob bytes are passed through by reference, never concatenated, so a
    multi-megabyte ciphertext is written to the socket from its own buffer.
    """
    envelope, blobs = split_message(message)
    parts: List[_Bytes] = [encode_envelope(envelope)]
    for blob in blobs:
        parts.extend(encode_blob_record(blob))
    return parts


def _read_varint(view: memoryview, offset: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(view):
            raise TransportError("truncated varint inside a frame payload")
        byte = view[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 70:
            raise TransportError("overlong varint inside a frame payload")


def _iter_fields(view: memoryview):
    """Yield (field_number, value) over a payload; length-delimited values
    are zero-copy memoryview slices.  Unknown scalar fields are skipped."""
    offset = 0
    while offset < len(view):
        tag, offset = _read_varint(view, offset)
        field_number, wire_type = tag >> 3, tag & 0x7
        if wire_type == 2:
            length, offset = _read_varint(view, offset)
            if offset + length > len(view):
                raise TransportError(
                    "length-delimited field overruns the frame payload"
                )
            yield field_number, view[offset : offset + length], offset + length
            offset += length
        elif wire_type == 0:
            _value, offset = _read_varint(view, offset)
        else:
            raise TransportError(
                f"unsupported wire type {wire_type} in a frame payload"
            )


def _parse_envelope(raw: memoryview) -> Dict[str, Any]:
    try:
        envelope = json.loads(bytes(raw).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TransportError(f"malformed frame envelope: {exc}") from exc
    if not isinstance(envelope, dict):
        raise TransportError("frame envelope must be a JSON object")
    return envelope


def decode_message(
    payload: _Bytes,
) -> Tuple[Dict[str, Any], List[memoryview]]:
    """Decode one frame payload into (envelope, blob slices).

    Blobs are memoryview slices of ``payload`` — zero-copy; they stay valid
    as long as the payload buffer lives.  Use :func:`rehydrate` to fold them
    back into the envelope.
    """
    view = memoryview(payload)
    envelope: Dict[str, Any] = {}
    saw_envelope = False
    blobs: List[memoryview] = []
    for field_number, value, _end in _iter_fields(view):
        if field_number == 1:
            if saw_envelope:
                raise TransportError("frame payload carries two envelopes")
            envelope = _parse_envelope(value)
            saw_envelope = True
        elif field_number == 2:
            blobs.append(value)
        # unknown length-delimited fields are skipped (forward compatibility)
    if not saw_envelope:
        raise TransportError("frame payload carries no envelope")
    return envelope, blobs


def peek_envelope(payload: _Bytes) -> Tuple[Dict[str, Any], int]:
    """Decode only the envelope; returns (envelope, envelope_end_offset).

    The router's passthrough path: look at op/client/trace of a forwarded
    frame without touching the blob bytes that follow.  The envelope field
    must come first in the payload (as :func:`encode_message` guarantees).
    """
    view = memoryview(payload)
    for field_number, value, end in _iter_fields(view):
        if field_number != 1:
            raise TransportError(
                "frame payload does not start with an envelope field"
            )
        return _parse_envelope(value), end
    raise TransportError("frame payload carries no envelope")


def replace_envelope(
    payload: _Bytes, envelope: Dict[str, Any]
) -> List[_Bytes]:
    """Payload parts with a rewritten envelope and the original blobs.

    Re-encodes only the (small) envelope field; every byte after it — the
    blob records — is relayed as one memoryview slice of the original
    payload.  This is how the router splices a ``trace_id`` into a forwarded
    binary request without re-encoding megabytes of ciphertext.
    """
    _old, end = peek_envelope(payload)
    return [encode_envelope(envelope), memoryview(payload)[end:]]


def rehydrate(
    envelope: Any, blobs: Sequence[_Bytes]
) -> Any:
    """Fold blob slices back into the envelope, inverting :func:`split_message`.

    Placeholders become ``{"raw": <memoryview>, ...}`` packed-array records,
    which :func:`repro.core.serialization.packing.unpack_array` accepts
    directly — the blob bytes are not copied here.
    """
    if isinstance(envelope, dict):
        if BLOB_KEY in envelope:
            index = envelope[BLOB_KEY]
            if not isinstance(index, int) or not 0 <= index < len(blobs):
                raise TransportError(
                    f"frame envelope references blob {index!r}, but the "
                    f"payload carries {len(blobs)}"
                )
            node = {
                key: value for key, value in envelope.items() if key != BLOB_KEY
            }
            node["raw"] = blobs[index]
            return node
        return {key: rehydrate(value, blobs) for key, value in envelope.items()}
    if isinstance(envelope, list):
        return [rehydrate(item, blobs) for item in envelope]
    return envelope
