"""Frame layer of the binary wire protocol.

Every binary message on a serving connection is one *frame*::

    +--------+--------+================+==============================+
    |  0xEB  |  type  | varint length  | payload (``length`` bytes)   |
    +--------+--------+================+==============================+

The magic byte ``0xEB`` can never begin a JSON-lines message (those start
with ``{`` or whitespace), so a server reads one byte and knows which
protocol the message speaks — the sniffing that lets legacy JSON clients and
binary clients share a listener.

Payload *content* is the codec layer's business (:mod:`.codec`); this module
only moves length-checked byte strings.  Every failure mode a hostile or
broken peer can produce — truncated varint, truncated payload, a declared
length past :data:`MAX_FRAME_BYTES`, an unknown frame type — raises
:class:`~repro.errors.TransportError` *before* unbounded reading or
allocation, so a bad frame can neither hang a reader nor balloon its memory.
"""

from __future__ import annotations

from typing import BinaryIO, Optional, Tuple

from ..errors import TransportError

#: First byte of every binary frame.  JSON-lines messages begin with ``{``
#: (0x7B) or whitespace, so one-byte sniffing is unambiguous.
MAGIC = 0xEB

#: Frame types.  Responses mirror requests; CHUNK frames carry one slice of
#: a streaming blob upload and are never answered individually.
FRAME_REQUEST = 0x01
FRAME_RESPONSE = 0x02
FRAME_CHUNK = 0x03

_KNOWN_TYPES = (FRAME_REQUEST, FRAME_RESPONSE, FRAME_CHUNK)

#: Hard ceiling on one frame's payload.  Chunked uploads exist precisely so
#: nothing legitimate ever approaches this; anything larger is a corrupt or
#: malicious length and is rejected before allocation.
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: A varint longer than this many bytes cannot encode a sane length.
_MAX_VARINT_BYTES = 10


def encode_varint(value: int) -> bytes:
    """Base-128 varint (least-significant group first), as protobuf uses."""
    if value < 0:
        raise TransportError("frame varints must be non-negative")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def read_varint(stream: BinaryIO) -> int:
    """Read one varint from a byte stream; clean errors on truncation."""
    result = 0
    shift = 0
    for _ in range(_MAX_VARINT_BYTES):
        data = stream.read(1)
        if not data:
            raise TransportError("connection closed inside a frame varint")
        byte = data[0]
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result
        shift += 7
    raise TransportError("frame varint is too long (corrupt frame header)")


def _read_exact(stream: BinaryIO, length: int) -> bytes:
    """Read exactly ``length`` bytes or raise; never busy-loops on EOF."""
    chunks = []
    remaining = length
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            raise TransportError(
                f"connection closed mid-frame ({length - remaining} of "
                f"{length} payload bytes received)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return chunks[0] if len(chunks) == 1 else b"".join(chunks)


def encode_frame(frame_type: int, payload: bytes) -> bytes:
    """One complete frame as bytes (small frames; large ones use write_frame)."""
    if frame_type not in _KNOWN_TYPES:
        raise TransportError(f"unknown frame type {frame_type:#x}")
    if len(payload) > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )
    return bytes((MAGIC, frame_type)) + encode_varint(len(payload)) + payload


def write_frame(stream: BinaryIO, frame_type: int, *parts) -> int:
    """Write one frame whose payload is the concatenation of ``parts``.

    ``parts`` may be ``bytes``, ``bytearray``, or ``memoryview`` — the frame
    is written piecewise, so relaying a multi-megabyte blob slice never
    concatenates it into a fresh buffer.  Returns the total bytes written.
    """
    if frame_type not in _KNOWN_TYPES:
        raise TransportError(f"unknown frame type {frame_type:#x}")
    length = sum(len(part) for part in parts)
    if length > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame payload of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )
    header = bytes((MAGIC, frame_type)) + encode_varint(length)
    stream.write(header)
    for part in parts:
        stream.write(part)
    return len(header) + length


def read_frame(
    stream: BinaryIO, first_byte: Optional[int] = None
) -> Tuple[int, bytes, int]:
    """Read one frame; returns ``(frame_type, payload, wire_bytes)``.

    ``first_byte`` is the already-consumed magic byte when the caller sniffed
    the protocol itself (the usual case in a shared listener).  The declared
    length is validated against :data:`MAX_FRAME_BYTES` *before* any payload
    byte is read, so a hostile length can neither hang the reader nor make it
    allocate unboundedly.  ``wire_bytes`` is the frame's full on-wire size
    (header included), for byte-accounting telemetry.
    """
    if first_byte is None:
        data = stream.read(1)
        if not data:
            raise TransportError("connection closed before a frame")
        first_byte = data[0]
    if first_byte != MAGIC:
        raise TransportError(
            f"expected a binary frame (magic {MAGIC:#x}), got first byte "
            f"{first_byte:#x}"
        )
    type_byte = stream.read(1)
    if not type_byte:
        raise TransportError("connection closed after the frame magic byte")
    frame_type = type_byte[0]
    if frame_type not in _KNOWN_TYPES:
        raise TransportError(f"unknown frame type {frame_type:#x}")
    length = read_varint(stream)
    if length > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame declares a {length}-byte payload, above the "
            f"{MAX_FRAME_BYTES}-byte limit (corrupt or hostile header)"
        )
    payload = _read_exact(stream, length)
    header_bytes = 2 + len(encode_varint(length))
    return frame_type, payload, header_bytes + length
