"""Reproduction of EVA: an Encrypted Vector Arithmetic language and compiler.

The public API lives in :mod:`repro.api`, organized around the paper's
asymmetric deployment model (client encrypts, server evaluates, client
decrypts)::

    from repro.api import ClientKit, CompiledProgram, ServerRuntime, eva_program

The package is organized as follows:

* :mod:`repro.api` — the public client/server API: ``CompiledProgram``,
  ``ClientKit``, ``ServerRuntime``, cipher bundles, and the ``@eva_program``
  tracing decorator.
* :mod:`repro.core` — the EVA language (term-graph IR), the optimizing
  compiler (rescale / modswitch / relinearize insertion, scale matching,
  validation, parameter and rotation-key selection), executors, and a
  scheduling simulator.
* :mod:`repro.ckks` — a from-scratch RNS-CKKS implementation standing in for
  Microsoft SEAL.
* :mod:`repro.backend` — the HISA backend interface, the metadata-exact mock
  simulator, and the real CKKS backend.
* :mod:`repro.frontend` — PyEVA, the Python-embedded DSL.
* :mod:`repro.nn` — the CHET-style tensor compiler for DNN inference on
  encrypted images.
* :mod:`repro.apps` — the arithmetic, statistical-ML, and image-processing
  applications evaluated in the paper.
* :mod:`repro.serving` — the serving subsystem: program registry, per-client
  session cache, slot batching, async job engine, and a TCP front-end that
  accepts pre-encrypted input bundles (client-held keys).

Importing the old one-shot names from the top level (``repro.Executor`` and
friends) still works but emits a :class:`DeprecationWarning`; import them
from :mod:`repro.api` (or their home modules) instead.
"""

from __future__ import annotations

import warnings
from typing import Any

from .frontend import EvaProgram, Expr

__version__ = "1.1.0"

#: Legacy top-level names, lazily resolved with a deprecation warning.  The
#: same names imported from their home modules (repro.core, repro.api) stay
#: warning-free.
_DEPRECATED_EXPORTS = {
    "CompilationResult": "repro.core",
    "CompilerOptions": "repro.core",
    "EvaCompiler": "repro.core",
    "Executor": "repro.core",
    "Program": "repro.core",
    "ReferenceExecutor": "repro.core",
    "compile_program": "repro.core",
    "execute_reference": "repro.core",
}

__all__ = [
    "EvaProgram",
    "Expr",
    "api",
    "__version__",
    *sorted(_DEPRECATED_EXPORTS),
]


def __getattr__(name: str) -> Any:
    if name == "api":
        import importlib

        return importlib.import_module("repro.api")
    home = _DEPRECATED_EXPORTS.get(name)
    if home is not None:
        warnings.warn(
            f"importing {name!r} from the top-level 'repro' namespace is "
            f"deprecated; import it from 'repro.api' (or {home!r}) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        import importlib

        return getattr(importlib.import_module(home), name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
