"""Reproduction of EVA: an Encrypted Vector Arithmetic language and compiler.

The package is organized as follows:

* :mod:`repro.core` — the EVA language (term-graph IR), the optimizing
  compiler (rescale / modswitch / relinearize insertion, scale matching,
  validation, parameter and rotation-key selection), executors, and a
  scheduling simulator.
* :mod:`repro.ckks` — a from-scratch RNS-CKKS implementation standing in for
  Microsoft SEAL.
* :mod:`repro.backend` — the HISA backend interface, the metadata-exact mock
  simulator, and the real CKKS backend.
* :mod:`repro.frontend` — PyEVA, the Python-embedded DSL.
* :mod:`repro.nn` — the CHET-style tensor compiler for DNN inference on
  encrypted images.
* :mod:`repro.apps` — the arithmetic, statistical-ML, and image-processing
  applications evaluated in the paper.
* :mod:`repro.serving` — the serving subsystem: program registry, per-client
  session cache, slot batching, async job engine, and a TCP front-end.
"""

from .core import (
    CompilationResult,
    CompilerOptions,
    EvaCompiler,
    Executor,
    Program,
    ReferenceExecutor,
    compile_program,
    execute_reference,
)
from .frontend import EvaProgram, Expr

__version__ = "1.0.0"

__all__ = [
    "CompilationResult",
    "CompilerOptions",
    "EvaCompiler",
    "Executor",
    "Program",
    "ReferenceExecutor",
    "compile_program",
    "execute_reference",
    "EvaProgram",
    "Expr",
    "__version__",
]
