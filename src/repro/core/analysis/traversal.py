"""Graph traversal framework (Section 6.1).

A forward traversal visits a node only after all its parents (arguments) have
been visited; a backward traversal visits a node only after all its children
(consumers) have been visited.  A single pass suffices for forward or backward
data-flow analyses because programs are acyclic.  Traversals never modify the
graph structure; they thread a per-node state dictionary instead.
"""

from __future__ import annotations

from typing import Callable, Dict, TypeVar

from ..ir import Program, Term

S = TypeVar("S")

#: Signature of a forward visitor: ``visit(term, state) -> value`` where
#: ``state`` maps already-visited term ids to their values.
ForwardVisitor = Callable[[Term, Dict[int, S]], S]

#: Signature of a backward visitor: ``visit(term, consumers, state) -> value``.
BackwardVisitor = Callable[[Term, "list[Term]", Dict[int, S]], S]


def forward_traversal(program: Program, visit: ForwardVisitor) -> Dict[int, S]:
    """Visit every reachable term in topological (parents-first) order.

    Returns the per-term state computed by ``visit``.
    """
    state: Dict[int, S] = {}
    for term in program.terms():
        state[term.id] = visit(term, state)
    return state


def backward_traversal(program: Program, visit: BackwardVisitor) -> Dict[int, S]:
    """Visit every reachable term in reverse topological (children-first) order.

    ``visit`` receives the list of consumers of the term in addition to the
    state of already-visited terms.
    """
    state: Dict[int, S] = {}
    uses = program.uses()
    for term in reversed(program.terms()):
        state[term.id] = visit(term, uses.get(term.id, []), state)
    return state
