"""Validation passes for the constraints of Section 4.2.

The validator re-checks, at compile time, every restriction the RNS-CKKS
scheme (and SEAL) would otherwise enforce with a runtime exception:

* **Constraint 1** — the ciphertext operands of ADD/SUB/MULTIPLY must have the
  same coefficient modulus (equal conforming rescale chains).
* **Constraint 2** — the ciphertext operands of ADD/SUB must have the same
  scale.
* **Constraint 3** — the ciphertext operands of MULTIPLY must consist of
  exactly two polynomials.
* **Constraint 4** — no RESCALE may divide by more than the maximum rescale
  value ``s_f``.

A failed check raises :class:`~repro.errors.ValidationError`; a successfully
validated program can be executed on a backend without any FHE runtime
exception, which is the guarantee the paper's compiler provides.
"""

from __future__ import annotations

from typing import Dict

from ...errors import ValidationError
from ..ir import Program, Term
from ..types import DEFAULT_MAX_RESCALE_BITS, Op, ValueType
from .levels import compute_rescale_chains
from .scales import compute_scales
from .traversal import forward_traversal

#: Tolerance (in bits) when comparing scales of additive operands.
SCALE_TOLERANCE_BITS = 1e-6


def compute_polynomial_counts(program: Program) -> Dict[int, int]:
    """Number of polynomials of the ciphertext produced by each term.

    Fresh ciphertexts have two polynomials; multiplying two ciphertexts with
    ``k`` and ``l`` polynomials yields one with ``k + l - 1``; RELINEARIZE
    brings the count back to two.  Plaintext-valued terms report zero.
    """

    def visit(term: Term, state: Dict[int, int]) -> int:
        if term.value_type is not ValueType.CIPHER:
            return 0
        if term.is_root:
            return 2
        cipher_counts = [
            state[a.id] for a in term.args if a.value_type is ValueType.CIPHER
        ]
        if term.op is Op.MULTIPLY and len(cipher_counts) == 2:
            return cipher_counts[0] + cipher_counts[1] - 1
        if term.op is Op.RELINEARIZE:
            return 2
        return max(cipher_counts) if cipher_counts else 2

    return forward_traversal(program, visit)


def validate(
    program: Program,
    max_rescale_bits: float = DEFAULT_MAX_RESCALE_BITS,
    check_scale_positive: bool = True,
) -> None:
    """Validate a compiled program against Constraints 1-4.

    Parameters
    ----------
    program:
        The (transformed) program to check.
    max_rescale_bits:
        ``log2 s_f``; every RESCALE value must be at most this (Constraint 4).
    check_scale_positive:
        Additionally require every ciphertext scale to stay strictly positive,
        which guards against rescaling below the fixed-point representation.
    """
    program.check_structure(frontend_only=False)

    # Constraint 1: conforming, equal rescale chains (raises on violation).
    compute_rescale_chains(program, strict=True)

    scales = compute_scales(program)
    polys = compute_polynomial_counts(program)

    for term in program.terms():
        cipher_args = [a for a in term.args if a.value_type is ValueType.CIPHER]

        if term.op.is_additive and len(cipher_args) == 2:
            s0, s1 = scales[cipher_args[0].id], scales[cipher_args[1].id]
            if abs(s0 - s1) > SCALE_TOLERANCE_BITS:
                raise ValidationError(
                    f"Constraint 2 violated at {term.op.name} (term {term.id}): "
                    f"operand scales 2^{s0:g} and 2^{s1:g} differ"
                )

        if term.op is Op.MULTIPLY:
            for arg in cipher_args:
                if polys[arg.id] != 2:
                    raise ValidationError(
                        f"Constraint 3 violated at MULTIPLY (term {term.id}): "
                        f"operand term {arg.id} has {polys[arg.id]} polynomials "
                        "(needs a RELINEARIZE)"
                    )

        if term.op is Op.RESCALE:
            if term.rescale_value > max_rescale_bits + SCALE_TOLERANCE_BITS:
                raise ValidationError(
                    f"Constraint 4 violated at RESCALE (term {term.id}): "
                    f"rescale value 2^{term.rescale_value:g} exceeds the maximum "
                    f"2^{max_rescale_bits:g}"
                )
            if term.rescale_value <= 0:
                raise ValidationError(
                    f"RESCALE (term {term.id}) has non-positive rescale value"
                )

        if (
            check_scale_positive
            and term.value_type is ValueType.CIPHER
            and scales[term.id] <= 0
        ):
            raise ValidationError(
                f"term {term.id} ({term.op.name}) has non-positive scale "
                f"2^{scales[term.id]:g}; the message would be destroyed"
            )
