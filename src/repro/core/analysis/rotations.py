"""Rotation-key selection pass (Section 6.2).

Collects the set of distinct rotation step counts used by ROTATE_LEFT and
ROTATE_RIGHT instructions in a program.  Each distinct step requires its own
Galois key, so the executor only generates keys for this set.

Steps are normalized to *left* rotations: a right rotation by ``k`` on a
vector of size ``M`` equals a left rotation by ``M - k`` (EVA replicates
shorter inputs to fill all slots, so vectors are periodic with period
``vec_size`` and the identity holds for the full slot vector as well).
"""

from __future__ import annotations

from typing import List, Set

from ..ir import Program
from ..types import Op


def normalize_step(op: Op, step: int, vec_size: int) -> int:
    """Normalize a rotation to an equivalent left-rotation step in ``[0, vec_size)``."""
    step = int(step) % vec_size
    if op is Op.ROTATE_RIGHT:
        step = (vec_size - step) % vec_size
    return step


def select_rotation_steps(program: Program) -> List[int]:
    """Return the sorted set of left-rotation steps needing Galois keys."""
    steps: Set[int] = set()
    for term in program.terms():
        if term.op.is_rotation:
            step = normalize_step(term.op, term.rotation, program.vec_size)
            if step != 0:
                steps.add(step)
    return sorted(steps)
