"""Rotation-step analysis: key selection, hoisting support, BSGS planning.

Collects the set of distinct rotation step counts used by ROTATE_LEFT and
ROTATE_RIGHT instructions in a program.  Each distinct step requires its own
Galois key, so the executor only generates keys for this set.

Steps are normalized to *left* rotations: a right rotation by ``k`` on a
vector of size ``M`` equals a left rotation by ``M - k`` (EVA replicates
shorter inputs to fill all slots, so vectors are periodic with period
``vec_size`` and the identity holds for the full slot vector as well).

Beyond key selection this module carries the dataflow analysis behind the two
rotation-cost optimizations:

* **Hoisting** (:class:`~repro.core.rewrite.hoisting.RotationHoistingPass`):
  :func:`additive_tree_roots` / :func:`flatten_additive_tree` /
  :func:`decompose_addend` factor a ciphertext sum into *atoms* of the form
  ``c_1 * ... * c_m * core`` where every ``c_i`` is a plaintext constant and
  ``core`` is either a rotation of some source or an opaque subterm.  The
  decomposition only ever peels through ADD and MULTIPLY nodes, so by
  construction no atom crosses a RESCALE, MOD_SWITCH or RELINEARIZE boundary:
  all members of one tree live at the same scale/level context, which is what
  makes ``sum_j c_j * rot_s(y_j) == rot_s(sum_j roll(c_j, s) * y_j)`` a safe
  rewrite.  (The hoisting pass runs before the scale-management passes insert
  any rescales, and the guard keeps it correct even if that ordering changes.)

* **BSGS** (:class:`~repro.core.rewrite.bsgs.BsgsRotationPass`):
  :func:`plan_rotation_steps` decomposes a step set baby-step/giant-step.  For
  a base ``B``, a step ``s = g + b`` with giant ``g = B * (s // B)`` and baby
  ``b = s % B`` lowers ``rot(s)`` to ``rot_b(rot_g(x))``; ``k`` distinct steps
  then need only the union of babies and giants — ``O(sqrt(k))`` Galois keys
  when the steps are dense — at the price of one extra rotation per giant that
  is not already computed as a direct step.  Stencil programs (Sobel/Harris)
  are the best case: their row strides *are* the giants, so the decomposition
  is rotation-neutral while shrinking the key set severalfold.

Lane lowering (:class:`~repro.core.rewrite.lane.LaneLoweringPass`) rewrites a
lane-local rotation by ``k`` into global rotations; see
:func:`lane_lowered_step_pair` (legacy mask-pair form, two steps per ``k``)
and :func:`lane_wrap_step` (hoisted form, all wrap branches share the single
step ``vec_size - w``).  :func:`lane_rotation_profile` maps a solo program's
step set to the lowered set without compiling the variant — the width picker
uses it to cost candidate lane widths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..ir import Program, Term
from ..types import Op, ValueType


def normalize_step(op: Op, step: int, vec_size: int) -> int:
    """Normalize a rotation to an equivalent left-rotation step in ``[0, vec_size)``."""
    step = int(step) % vec_size
    if op is Op.ROTATE_RIGHT:
        step = (vec_size - step) % vec_size
    return step


def lane_lowered_step_pair(step: int, lane_width: int, vec_size: int) -> Tuple[int, int]:
    """The two normalized left steps realizing ``lane_rot(step)`` at width ``w``.

    ``step`` is the lane-local left-rotation amount in ``(0, lane_width)``.
    The in-lane branch is a global left rotation by ``step``; the wrap branch
    is a global rotation by ``step - lane_width`` (negative, i.e. rightward),
    normalized here to the left step ``(step - lane_width) mod vec_size``.

    This is the *legacy* lowering: each distinct lane step contributes its own
    wrap step ``vec_size - w + step``, so ``k`` lane steps need ``2k`` Galois
    keys.  The default hoisted form (:func:`lane_wrap_step`) reaches the wrap
    branch as ``rot(vec_size - w)`` *composed after* the in-lane rotation, so
    every wrap shares one step.
    """
    step = int(step)
    if not 0 < step < lane_width:
        raise ValueError(
            f"lane step must be in (0, {lane_width}), got {step}"
        )
    return step, (step - int(lane_width)) % int(vec_size)


def lane_wrap_step(lane_width: int, vec_size: int) -> int:
    """The shared wrap step of the hoisted lane lowering.

    ``rot(k - w)(x) == rot(vec_size - w)(rot(k)(x))``: composing the in-lane
    rotation with a left rotation by ``vec_size - w`` realizes the negative
    branch, so *every* lane step reuses the one step ``vec_size - w``.
    """
    return (int(vec_size) - int(lane_width)) % int(vec_size)


def select_rotation_steps(program: Program) -> List[int]:
    """Return the sorted set of left-rotation steps needing Galois keys."""
    steps: Set[int] = set()
    for term in program.terms():
        if term.op.is_rotation:
            step = normalize_step(term.op, term.rotation, program.vec_size)
            if step != 0:
                steps.add(step)
    return sorted(steps)


def merge_rotation_steps(*step_sets: Iterable[int]) -> List[int]:
    """Sorted union of normalized step sets (zero steps dropped).

    Keygen for a client covering several compiled variants of one program
    (solo + lane-lowered, or several lane widths) must generate each Galois
    key once: the union of the per-variant step sets, not their concatenation.
    """
    merged: Set[int] = set()
    for steps in step_sets:
        for step in steps:
            step = int(step)
            if step != 0:
                merged.add(step)
    return sorted(merged)


def lane_rotation_profile(
    steps: Iterable[int], lane_width: int, vec_size: int
) -> List[int]:
    """The step set of the hoisted lane-lowered variant, without compiling it.

    Every solo step ``k`` becomes the in-lane step ``k mod w`` (dropped when
    zero — lane-multiple shifts degenerate into doublings), and any surviving
    step adds the one shared wrap step ``vec_size - w``.
    """
    width = int(lane_width)
    in_steps = {int(s) % width for s in steps} - {0}
    if not in_steps:
        return []
    return sorted(in_steps | {lane_wrap_step(width, vec_size)})


# ---------------------------------------------------------------------------
# Additive-tree decomposition (hoisting analysis)
# ---------------------------------------------------------------------------


@dataclass
class AdditiveAtom:
    """One summand of a flattened ciphertext sum: ``prod(constants) * core``.

    When ``step`` is not ``None`` the atom is a *rotation atom*: ``core`` is a
    single-consumer ROTATE term and ``source`` its operand, so the atom's
    value is ``prod(constants) * rot_step(source)`` and it is a candidate for
    hoisting.  Otherwise the atom is opaque (``source is None``).

    ``constants`` are recorded outermost-first, exactly as peeled; rebuilding
    the atom as a chain of multiplies in reverse order reproduces the original
    scale structure without any constant folding.
    """

    constants: Tuple[Term, ...]
    core: Term
    source: Optional[Term] = None
    step: Optional[int] = None

    @property
    def hoistable(self) -> bool:
        return self.step is not None


def is_lane_combine(term: Term) -> bool:
    """True for the ``mask_in*rot + mask_wrap*rot`` ADD emitted by lane lowering.

    These nodes are shared between consumer trees (e.g. Sobel's horizontal and
    vertical gradients both read every lowered tap), so the single-consumer
    guard would normally stop the decomposition at them.  Distributing a
    multiplication over them is still profitable — the distributed constants
    multiply *plaintext* masks, so the ciphertext multiply count is unchanged
    — and the pass therefore treats them as transparent.
    """
    if term.op is not Op.ADD or len(term.args) != 2:
        return False
    for arg in term.args:
        if arg.op is not Op.MULTIPLY:
            return False
        if not any(a.is_constant and a.attributes.get("lane_mask") for a in arg.args):
            return False
    return True


def additive_tree_roots(
    program: Program, uses: Dict[int, int], output_ids: Set[int]
) -> List[Term]:
    """Maximal ciphertext ADD trees: ADD nodes not absorbed by a parent ADD.

    An ADD is absorbed (an interior node of a larger tree) when its single
    consumer is itself a ciphertext ADD; outputs and shared nodes always start
    their own tree.
    """
    parents: Dict[int, List[Term]] = {}
    terms = program.terms()
    for term in terms:
        for arg in term.args:
            parents.setdefault(arg.id, []).append(term)
    roots: List[Term] = []
    for term in terms:
        if term.op is not Op.ADD or term.value_type is not ValueType.CIPHER:
            continue
        if term.id not in output_ids and uses.get(term.id, 0) == 1:
            parent = parents[term.id][0]
            if parent.op is Op.ADD and parent.value_type is ValueType.CIPHER:
                continue  # absorbed into the parent's tree
        roots.append(term)
    return roots


def flatten_additive_tree(
    root: Term, uses: Dict[int, int], output_ids: Set[int]
) -> List[Term]:
    """The addends of ``root``'s maximal ADD tree, single-consumer interior
    ADDs absorbed.  Shared subtrees and outputs stay opaque addends (they are
    live outside this tree and must not be dismantled)."""
    addends: List[Term] = []
    stack = list(root.args)
    while stack:
        node = stack.pop()
        if (
            node.op is Op.ADD
            and node.value_type is ValueType.CIPHER
            and node.id not in output_ids
            and uses.get(node.id, 0) == 1
        ):
            stack.extend(node.args)
        else:
            addends.append(node)
    return addends


def decompose_addend(
    addend: Term,
    uses: Dict[int, int],
    output_ids: Set[int],
    vec_size: int,
) -> List[AdditiveAtom]:
    """Decompose one addend into :class:`AdditiveAtom` summands.

    Peels single-consumer constant multiplications (collecting the constants),
    distributes over single-consumer ADDs and over shared lane-combine ADDs
    (see :func:`is_lane_combine`), and bottoms out at rotation atoms or opaque
    cores.  Only ADD and MULTIPLY are ever traversed, so no atom crosses a
    RESCALE/MOD_SWITCH/RELINEARIZE boundary — every atom provably lives at the
    same level context as the tree root.
    """

    def expand(node: Term, constants: Tuple[Term, ...]) -> List[AdditiveAtom]:
        transparent = (
            node.op is Op.ADD
            and node.value_type is ValueType.CIPHER
            and node.id not in output_ids
            and len(node.args) == 2
            and (uses.get(node.id, 0) == 1 or is_lane_combine(node))
        )
        if transparent:
            return expand(node.args[0], constants) + expand(node.args[1], constants)
        if (
            node.op is Op.MULTIPLY
            and node.value_type is ValueType.CIPHER
            and node.id not in output_ids
            and uses.get(node.id, 0) == 1
            and len(node.args) == 2
        ):
            plain = [a for a in node.args if a.is_constant]
            cipher = [a for a in node.args if not a.is_constant]
            if len(plain) == 1 and len(cipher) == 1:
                return expand(cipher[0], constants + (plain[0],))
        if (
            node.op is Op.ROTATE_LEFT
            and node.value_type is ValueType.CIPHER
            and node.id not in output_ids
            and uses.get(node.id, 0) == 1
        ):
            step = normalize_step(node.op, node.rotation, vec_size)
            if step != 0:
                return [
                    AdditiveAtom(
                        constants=constants,
                        core=node,
                        source=node.args[0],
                        step=step,
                    )
                ]
        return [AdditiveAtom(constants=constants, core=node)]

    return expand(addend, ())


# ---------------------------------------------------------------------------
# Baby-step/giant-step key planning
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RotationPlan:
    """A BSGS decomposition of a rotation-step set.

    ``baby_base`` is the base ``B`` (``None`` means no decomposition: every
    step keeps its direct key).  ``decompositions`` maps each decomposed step
    ``s`` to its ``(giant, baby)`` pair with ``s == giant + baby``;
    ``key_steps`` is the Galois key set the plan needs, and
    ``extra_rotations`` the estimated number of giant rotations that are not
    already computed as direct steps of the program (the runtime price of the
    key savings — zero for stencils whose row strides are the giants).
    """

    steps: Tuple[int, ...]
    baby_base: Optional[int] = None
    decompositions: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    key_steps: Tuple[int, ...] = ()
    extra_rotations: int = 0

    @property
    def decomposed(self) -> bool:
        return bool(self.decompositions)

    def summary(self) -> Dict[str, object]:
        return {
            "baby_base": self.baby_base,
            "steps": len(self.steps),
            "key_steps": len(self.key_steps),
            "extra_rotations": self.extra_rotations,
        }


def _plan_for_base(steps: Sequence[int], base: int, vec_size: int) -> RotationPlan:
    decompositions: Dict[int, Tuple[int, int]] = {}
    keys: Set[int] = set()
    for step in steps:
        giant = (step // base) * base
        baby = step % base
        if giant == 0 or baby == 0:
            keys.add(step)  # pure baby or pure giant: keep the direct key
        else:
            decompositions[step] = (giant, baby)
            keys.add(giant)
            keys.add(baby)
    direct = set(steps) - set(decompositions)
    extra = {giant for giant, _ in decompositions.values()} - direct
    return RotationPlan(
        steps=tuple(steps),
        baby_base=base,
        decompositions=decompositions,
        key_steps=tuple(sorted(keys)),
        extra_rotations=len(extra),
    )


def plan_rotation_steps(
    steps: Iterable[int],
    vec_size: int,
    mode: str = "auto",
    cost_model=None,
    poly_degree: Optional[int] = None,
    levels: int = 3,
) -> RotationPlan:
    """Pick a BSGS decomposition for a normalized step set.

    ``mode`` is one of ``"off"`` (always direct), ``"always"`` (the candidate
    with the fewest keys, ties broken toward fewer extra rotations and a
    smaller base), or ``"auto"`` (the candidate minimizing the cost model's
    amortized per-session seconds — key generation + upload bytes once per
    session versus extra giant rotations on every evaluation; direct wins
    ties).  Candidate bases are the powers of two in ``[2, vec_size / 2]``.
    """
    normalized = sorted({int(s) % int(vec_size) for s in steps} - {0})
    direct = RotationPlan(steps=tuple(normalized), key_steps=tuple(normalized))
    if mode == "off" or len(normalized) < 2:
        return direct
    if mode not in ("auto", "always"):
        raise ValueError(f"unknown BSGS mode {mode!r}")
    candidates: List[RotationPlan] = []
    base = 2
    while base <= int(vec_size) // 2:
        plan = _plan_for_base(normalized, base, int(vec_size))
        if plan.decomposed:
            candidates.append(plan)
        base *= 2
    if not candidates:
        return direct
    if mode == "always":
        best = min(
            candidates,
            key=lambda p: (len(p.key_steps), p.extra_rotations, p.baby_base),
        )
        return best if len(best.key_steps) < len(direct.key_steps) else direct
    if cost_model is None:
        from ...backend.cost_model import DEFAULT_COST_MODEL

        cost_model = DEFAULT_COST_MODEL
    poly = int(poly_degree) if poly_degree else 2 * int(vec_size)

    def plan_cost(plan: RotationPlan) -> float:
        return cost_model.rotation_plan_seconds(
            len(plan.key_steps), plan.extra_rotations, poly, levels
        )

    best = min(candidates, key=lambda p: (plan_cost(p), p.extra_rotations, p.baby_base))
    return best if plan_cost(best) < plan_cost(direct) else direct
