"""Rotation-key selection pass (Section 6.2).

Collects the set of distinct rotation step counts used by ROTATE_LEFT and
ROTATE_RIGHT instructions in a program.  Each distinct step requires its own
Galois key, so the executor only generates keys for this set.

Steps are normalized to *left* rotations: a right rotation by ``k`` on a
vector of size ``M`` equals a left rotation by ``M - k`` (EVA replicates
shorter inputs to fill all slots, so vectors are periodic with period
``vec_size`` and the identity holds for the full slot vector as well).

Lane lowering (:class:`~repro.core.rewrite.lane.LaneLoweringPass`) rewrites a
lane-local rotation by ``k`` into two global rotations, by ``k`` and by the
*negative* step ``k - w``; :func:`lane_lowered_step_pair` normalizes that pair
into the ``[0, vec_size)`` left-step domain this module (and Galois key
generation) works in, so the key set collected from a lowered program is
exactly the set the executor will request.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from ..ir import Program
from ..types import Op


def normalize_step(op: Op, step: int, vec_size: int) -> int:
    """Normalize a rotation to an equivalent left-rotation step in ``[0, vec_size)``."""
    step = int(step) % vec_size
    if op is Op.ROTATE_RIGHT:
        step = (vec_size - step) % vec_size
    return step


def lane_lowered_step_pair(step: int, lane_width: int, vec_size: int) -> Tuple[int, int]:
    """The two normalized left steps realizing ``lane_rot(step)`` at width ``w``.

    ``step`` is the lane-local left-rotation amount in ``(0, lane_width)``.
    The in-lane branch is a global left rotation by ``step``; the wrap branch
    is a global rotation by ``step - lane_width`` (negative, i.e. rightward),
    normalized here to the left step ``(step - lane_width) mod vec_size``.
    """
    step = int(step)
    if not 0 < step < lane_width:
        raise ValueError(
            f"lane step must be in (0, {lane_width}), got {step}"
        )
    return step, (step - int(lane_width)) % int(vec_size)


def select_rotation_steps(program: Program) -> List[int]:
    """Return the sorted set of left-rotation steps needing Galois keys."""
    steps: Set[int] = set()
    for term in program.terms():
        if term.op.is_rotation:
            step = normalize_step(term.op, term.rotation, program.vec_size)
            if step != 0:
                steps.add(step)
    return sorted(steps)
