"""Graph traversal framework and analysis passes (Section 6 of the paper)."""

from .traversal import forward_traversal, backward_traversal
from .scales import compute_scales
from .levels import compute_levels, compute_rescale_chains
from .validation import validate
from .parameters import EncryptionParameters, select_parameters
from .rotations import lane_lowered_step_pair, normalize_step, select_rotation_steps

__all__ = [
    "lane_lowered_step_pair",
    "normalize_step",
    "forward_traversal",
    "backward_traversal",
    "compute_scales",
    "compute_levels",
    "compute_rescale_chains",
    "validate",
    "EncryptionParameters",
    "select_parameters",
    "select_rotation_steps",
]
