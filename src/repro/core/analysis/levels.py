"""Level and rescale-chain analysis (Definitions 1-3 of the paper).

The *level* of a term is the number of RESCALE / MOD_SWITCH operations on any
path from a root to the term — equivalently, how many elements of the
coefficient-modulus chain have been consumed to produce it.  The *rescale
chain* of a term records, per consumed element, the rescale value in bits
(or ``None`` for a MOD_SWITCH, the paper's ``∞``, meaning "whatever prime sits
at that position").

A term's chain is *conforming* when every root-to-term path yields the same
chain (allowing ``None`` to match anything).  Constraint 1 requires the
conforming chains of the ciphertext operands of ADD/SUB/MULTIPLY to be equal.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...errors import ValidationError
from ..ir import Program, Term
from ..types import Op, ValueType
from .traversal import forward_traversal

#: A rescale chain: one entry per consumed modulus, rescale bits or None (∞).
Chain = Tuple[Optional[float], ...]


def compute_levels(program: Program) -> Dict[int, int]:
    """Return a map from term id to its level (consumed modulus count).

    For binary operations whose operands are at different levels (i.e. before
    MOD_SWITCH insertion) the maximum operand level is used, which is the
    level the operation must execute at once the compiler has fixed it up.
    """

    def visit(term: Term, state: Dict[int, int]) -> int:
        if term.is_root:
            return 0
        level = max((state[a.id] for a in term.args), default=0)
        if term.op.changes_modulus:
            level += 1
        return level

    return forward_traversal(program, visit)


def merge_chains(a: Chain, b: Chain) -> Optional[Chain]:
    """Merge two rescale chains; return None if they cannot conform.

    Chains conform when they have equal length and agree element-wise, where a
    ``None`` (MOD_SWITCH / ∞) entry matches any value.
    """
    if len(a) != len(b):
        return None
    merged: List[Optional[float]] = []
    for x, y in zip(a, b):
        if x is None:
            merged.append(y)
        elif y is None or x == y:
            merged.append(x)
        else:
            return None
    return tuple(merged)


def compute_rescale_chains(
    program: Program, strict: bool = True
) -> Dict[int, Chain]:
    """Compute the conforming rescale chain of every term.

    With ``strict=True`` a :class:`ValidationError` is raised as soon as the
    chains of the ciphertext operands of a binary arithmetic instruction do
    not conform (Constraint 1).  With ``strict=False`` the longest operand
    chain is propagated instead, which is useful for analysing intermediate
    (not yet fixed up) programs.
    """

    def visit(term: Term, state: Dict[int, Chain]) -> Chain:
        if term.is_root:
            return ()
        cipher_args = [a for a in term.args if a.value_type is ValueType.CIPHER]
        if not cipher_args:
            chain: Chain = ()
        elif len(cipher_args) == 1 or not term.op.is_binary_arith:
            chain = state[cipher_args[0].id]
        else:
            chain = state[cipher_args[0].id]
            for other in cipher_args[1:]:
                merged = merge_chains(chain, state[other.id])
                if merged is None:
                    if strict:
                        raise ValidationError(
                            f"operands of {term.op.name} (term {term.id}) have "
                            f"non-conforming rescale chains: "
                            f"{chain} vs {state[other.id]}"
                        )
                    longer = max(
                        (state[a.id] for a in cipher_args), key=len
                    )
                    merged = longer
                chain = merged
        if term.op is Op.RESCALE:
            chain = chain + (float(term.rescale_value),)
        elif term.op is Op.MOD_SWITCH:
            chain = chain + (None,)
        return chain

    return forward_traversal(program, visit)


def output_chains(program: Program, strict: bool = True) -> Dict[str, Chain]:
    """Return the conforming rescale chain of each named output."""
    chains = compute_rescale_chains(program, strict=strict)
    return {name: chains[term.id] for name, term in program.outputs.items()}
