"""Encryption-parameter selection pass (Section 6.2).

Given a validated program, desired output scales, and the maximum rescale
value ``s_f``, this pass computes:

* the vector of coefficient-modulus *bit sizes* that must be used to generate
  the encryption parameters (one entry per RNS prime), and
* the polynomial modulus degree ``N``, chosen as the smallest power of two
  that (a) offers at least ``vec_size`` slots and (b) keeps the total
  coefficient modulus within the homomorphic encryption security standard's
  bound for the requested security level.

The bit-size vector is laid out as::

    [ chain_0, chain_1, ..., chain_{L-1},  factor_0, ..., factor_{k-1},  s_f ]

where the ``chain_i`` entries are consumed (front to back) by the RESCALE and
MOD_SWITCH instructions of the program, the ``factor_j`` entries provide room
for the final message (output scale times desired output scale), and the
trailing ``s_f`` entry is the special prime used only during key switching
(it is consumed at encryption in the paper's accounting, hence the ``1 +`` in
the modulus-length formula).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...errors import CompilationError, SecurityError
from ..ir import Program
from ..types import DEFAULT_MAX_RESCALE_BITS, DEFAULT_SECURITY_LEVEL
from .levels import Chain, output_chains
from .scales import compute_scales

#: Maximum total coefficient modulus bits allowed by the HE security standard
#: (Albrecht et al., HomomorphicEncryption.org 2018) for each polynomial
#: modulus degree, per security level.
SECURITY_MAX_COEFF_MODULUS_BITS: Dict[int, Dict[int, int]] = {
    128: {1024: 27, 2048: 54, 4096: 109, 8192: 218, 16384: 438, 32768: 881, 65536: 1782},
    192: {1024: 19, 2048: 37, 4096: 75, 8192: 152, 16384: 305, 32768: 611, 65536: 1229},
    256: {1024: 14, 2048: 29, 4096: 58, 8192: 118, 16384: 237, 32768: 476, 65536: 954},
}

#: Largest polynomial modulus degree in the standard's table.
MAX_POLY_MODULUS_DEGREE = 65536


@dataclass
class EncryptionParameters:
    """Encryption parameters produced by the selection pass.

    Attributes
    ----------
    poly_modulus_degree:
        The ring dimension ``N``.
    coeff_modulus_bits:
        Bit size of each prime in the coefficient modulus (chain order,
        special prime last).
    security_level:
        The security level (bits) the parameters were validated against.
    rotation_steps:
        Rotation step counts for which Galois keys must be generated.
    """

    poly_modulus_degree: int
    coeff_modulus_bits: List[int]
    security_level: int = DEFAULT_SECURITY_LEVEL
    rotation_steps: List[int] = field(default_factory=list)

    @property
    def slots(self) -> int:
        """Number of plaintext slots (``N / 2``)."""
        return self.poly_modulus_degree // 2

    @property
    def total_coeff_modulus_bits(self) -> int:
        """``log2 Q`` including the special prime."""
        return int(sum(self.coeff_modulus_bits))

    @property
    def modulus_count(self) -> int:
        """The modulus-chain length ``r`` (including the special prime)."""
        return len(self.coeff_modulus_bits)

    def summary(self) -> Dict[str, int]:
        """Compact summary used by the benchmark tables (Table 6)."""
        return {
            "log_n": int(math.log2(self.poly_modulus_degree)),
            "log_q": self.total_coeff_modulus_bits,
            "r": self.modulus_count,
        }


def max_modulus_bits(poly_modulus_degree: int, security_level: int) -> int:
    """Upper bound on ``log2 Q`` for the given ``N`` and security level."""
    table = SECURITY_MAX_COEFF_MODULUS_BITS.get(security_level)
    if table is None:
        raise SecurityError(f"unsupported security level {security_level}")
    bound = table.get(poly_modulus_degree)
    if bound is None:
        raise SecurityError(
            f"unsupported polynomial modulus degree {poly_modulus_degree}"
        )
    return bound


def _chain_bits(chain: Chain, max_rescale_bits: float) -> List[int]:
    """Convert a rescale chain into concrete prime bit sizes.

    MOD_SWITCH entries (``None``) consume whatever prime sits at that
    position; positions determined only by MOD_SWITCH default to ``s_f``.
    """
    return [
        int(math.ceil(value if value is not None else max_rescale_bits))
        for value in chain
    ]


def _output_factors(total_bits: float, max_rescale_bits: float) -> List[int]:
    """Factorize the residual output scale into primes of at most ``s_f`` bits."""
    total = max(float(total_bits), 1.0)
    factors: List[int] = []
    while total > max_rescale_bits:
        factors.append(int(max_rescale_bits))
        total -= max_rescale_bits
    factors.append(int(math.ceil(total)))
    return factors


def select_parameters(
    program: Program,
    desired_output_scales: Optional[Dict[str, float]] = None,
    max_rescale_bits: float = DEFAULT_MAX_RESCALE_BITS,
    security_level: int = DEFAULT_SECURITY_LEVEL,
    rotation_steps: Optional[Sequence[int]] = None,
) -> EncryptionParameters:
    """Select encryption parameters for a compiled program.

    ``desired_output_scales`` maps output names to the desired scale (bits) of
    the decrypted result; missing outputs default to the program's recorded
    ``output_scales`` and finally to 0 bits.
    """
    desired = dict(program.output_scales)
    if desired_output_scales:
        desired.update(desired_output_scales)

    scales = compute_scales(program)
    chains = output_chains(program, strict=True)

    best_bits: Optional[List[int]] = None
    best_key: Tuple[int, float] = (-1, -1.0)
    for name, term in program.outputs.items():
        chain_bits = _chain_bits(chains[name], max_rescale_bits)
        residual = scales[term.id] + desired.get(name, 0.0)
        factors = _output_factors(residual, max_rescale_bits)
        key = (len(chain_bits) + len(factors), float(sum(chain_bits) + sum(factors)))
        if key > best_key:
            best_key = key
            best_bits = chain_bits + factors
    if best_bits is None:
        raise CompilationError("program has no outputs to select parameters for")

    coeff_modulus_bits = best_bits + [int(max_rescale_bits)]

    total_bits = sum(coeff_modulus_bits)
    table = SECURITY_MAX_COEFF_MODULUS_BITS[security_level]
    poly_modulus_degree = max(2 * program.vec_size, min(table))
    while (
        poly_modulus_degree in table
        and table[poly_modulus_degree] < total_bits
    ):
        poly_modulus_degree *= 2
    if poly_modulus_degree not in table:
        if poly_modulus_degree > MAX_POLY_MODULUS_DEGREE:
            raise SecurityError(
                f"no polynomial modulus degree up to {MAX_POLY_MODULUS_DEGREE} can "
                f"accommodate log2 Q = {total_bits} bits at {security_level}-bit security"
            )
        raise SecurityError(
            f"polynomial modulus degree {poly_modulus_degree} is not covered by "
            "the security standard table"
        )

    return EncryptionParameters(
        poly_modulus_degree=poly_modulus_degree,
        coeff_modulus_bits=[int(b) for b in coeff_modulus_bits],
        security_level=security_level,
        rotation_steps=sorted(set(rotation_steps)) if rotation_steps else [],
    )
