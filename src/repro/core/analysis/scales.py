"""Fixed-point scale analysis.

Computes the scale (in bits, i.e. ``log2`` of the fixed-point scaling factor)
of every term in a program, following the semantics of RNS-CKKS:

* inputs and constants carry their declared scale;
* MULTIPLY adds the scales of its operands;
* RESCALE subtracts its rescale value from the operand scale;
* ADD/SUB require equal scales between ciphertext operands and produce that
  scale (for analysis purposes, the maximum of the ciphertext operand scales
  is used so that pre-MATCH-SCALE programs can still be analysed);
* every other instruction preserves the scale of its (ciphertext) operand.
"""

from __future__ import annotations

from typing import Dict

from ..ir import Program, Term
from ..types import Op, ValueType
from .traversal import forward_traversal


def _scale_of(term: Term, state: Dict[int, float]) -> float:
    if term.is_root:
        scale = term.scale
        return float(scale) if scale is not None else 0.0

    arg_scales = [state[a.id] for a in term.args]
    cipher_scales = [
        state[a.id] for a in term.args if a.value_type is ValueType.CIPHER
    ]

    if term.op is Op.MULTIPLY:
        return float(sum(arg_scales))
    if term.op is Op.RESCALE:
        return float(arg_scales[0] - term.rescale_value)
    if term.op.is_additive:
        # ADD/SUB of a ciphertext and a plaintext: the plaintext is encoded at
        # the ciphertext's scale by the executor, so the result scale is the
        # ciphertext scale.  For cipher-cipher the scales must match; use the
        # maximum so the analysis is defined on not-yet-matched programs too.
        if cipher_scales:
            return float(max(cipher_scales))
        return float(max(arg_scales))
    # NEGATE, COPY, SUM, ROTATE_*, RELINEARIZE, MOD_SWITCH, NORMALIZE_SCALE.
    return float(arg_scales[0])


def compute_scales(program: Program) -> Dict[int, float]:
    """Return a map from term id to its scale in bits."""
    return forward_traversal(program, _scale_of)
