"""Core EVA language, compiler, and executor."""

from .types import Op, ValueType, DEFAULT_MAX_RESCALE_BITS, DEFAULT_SECURITY_LEVEL
from .ir import Program, Term, GraphEditor
from .compiler import (
    CompilerOptions,
    CompilationResult,
    EvaCompiler,
    compile_program,
    program_signature,
)
from .executor import (
    EvaluationEngine,
    ExecutionResult,
    ExecutionStats,
    Executor,
    ReferenceExecutor,
    execute_reference,
)
from .scheduling import simulate_schedule, ScheduleResult
from .analysis.parameters import EncryptionParameters

__all__ = [
    "Op",
    "ValueType",
    "DEFAULT_MAX_RESCALE_BITS",
    "DEFAULT_SECURITY_LEVEL",
    "Program",
    "Term",
    "GraphEditor",
    "CompilerOptions",
    "CompilationResult",
    "EvaCompiler",
    "compile_program",
    "program_signature",
    "Executor",
    "EvaluationEngine",
    "ReferenceExecutor",
    "ExecutionResult",
    "ExecutionStats",
    "execute_reference",
    "simulate_schedule",
    "ScheduleResult",
    "EncryptionParameters",
]
