"""Executors for EVA programs (Section 6.1).

Three layers are provided, mirroring the paper's asymmetric deployment model
(the client owns the keys and data, the server owns the compiled program):

* :class:`ReferenceExecutor` runs a program under the *identity scheme* of
  Section 3's execution semantics: Cipher values are ordinary vectors and the
  FHE-specific instructions are identities.  It defines the reference output
  every backend execution is compared against.
* :class:`EvaluationEngine` is the server half of execution: it schedules the
  instruction DAG of a *compiled* program over ciphertext handles, encoding
  plaintext operands at the level and scale their consumers require and
  recycling ciphertext memory as soon as a value is dead (retired).  It never
  encrypts and never decrypts — it only needs a backend context holding
  evaluation keys (see :meth:`repro.backend.hisa.BackendContext.evaluation_context`).
* :class:`Executor` is the one-process convenience wrapper kept for
  compatibility: ``execute(inputs)`` performs keygen, encryption, evaluation,
  and decryption in one call by pairing the client-side duties with an
  :class:`EvaluationEngine`.  New code targeting the client/server split
  should use :class:`repro.api.ClientKit` and :class:`repro.api.ServerRuntime`
  instead.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..backend.hisa import BackendContext, HomomorphicBackend
from ..errors import ExecutionError
from .analysis.scales import compute_scales
from .compiler import CompilationResult
from .ir import Program, Term
from .types import Op, ValueType


def _reference_op(term: Term, args: List[np.ndarray], vec_size: int) -> np.ndarray:
    """Evaluate one instruction under the identity scheme."""
    if term.op is Op.NEGATE:
        return -args[0]
    if term.op is Op.ADD:
        return args[0] + args[1]
    if term.op is Op.SUB:
        return args[0] - args[1]
    if term.op is Op.MULTIPLY:
        return args[0] * args[1]
    if term.op is Op.ROTATE_LEFT:
        return np.roll(args[0], -term.rotation)
    if term.op is Op.ROTATE_RIGHT:
        return np.roll(args[0], term.rotation)
    if term.op is Op.SUM:
        return np.full(vec_size, float(np.sum(args[0])))
    if term.op in (Op.COPY, Op.RELINEARIZE, Op.MOD_SWITCH, Op.RESCALE, Op.NORMALIZE_SCALE):
        return args[0]
    raise ExecutionError(f"unsupported opcode {term.op.name}")


def _broadcast(value: Any, vec_size: int) -> np.ndarray:
    array = np.atleast_1d(np.asarray(value, dtype=np.float64)).ravel()
    if array.size == vec_size:
        return array.astype(np.float64)
    if array.size == 1:
        return np.full(vec_size, float(array[0]))
    if vec_size % array.size != 0:
        raise ExecutionError(
            f"value of size {array.size} cannot fill a vector of size {vec_size}"
        )
    return np.tile(array, vec_size // array.size)


class ReferenceExecutor:
    """Execute a program under the identity scheme (plaintext reference)."""

    def __init__(self, program: Program) -> None:
        self.program = program

    def execute(self, inputs: Dict[str, Any]) -> Dict[str, np.ndarray]:
        vec_size = self.program.vec_size
        values: Dict[int, np.ndarray] = {}
        for term in self.program.terms():
            if term.is_input:
                if term.name not in inputs:
                    raise ExecutionError(f"missing value for input {term.name!r}")
                values[term.id] = _broadcast(inputs[term.name], vec_size)
            elif term.is_constant:
                values[term.id] = _broadcast(term.value, vec_size)
            else:
                args = [values[a.id] for a in term.args]
                values[term.id] = _reference_op(term, args, vec_size)
        return {name: values[t.id].copy() for name, t in self.program.outputs.items()}


@dataclass
class ExecutionStats:
    """Measurements collected during a backend execution."""

    wall_seconds: float = 0.0
    context_seconds: float = 0.0
    encrypt_seconds: float = 0.0
    evaluate_seconds: float = 0.0
    decrypt_seconds: float = 0.0
    op_count: int = 0
    peak_live_ciphertexts: int = 0
    threads: int = 1


@dataclass
class ExecutionResult:
    """Decrypted outputs plus execution statistics."""

    outputs: Dict[str, np.ndarray]
    stats: ExecutionStats = field(default_factory=ExecutionStats)

    def __getitem__(self, name: str) -> np.ndarray:
        return self.outputs[name]


class EvaluationEngine:
    """Schedule a compiled program's DAG over ciphertext handles.

    The engine holds everything evaluation needs that is *independent of key
    material*: the compiled program, the per-term scale analysis, and the
    thread count.  Ciphertext inputs arrive as backend handles keyed by input
    name; the engine returns output handles without ever touching a secret
    key, which is what lets a server evaluate on data it cannot read.
    """

    def __init__(
        self,
        compilation: CompilationResult,
        backend: Optional[HomomorphicBackend] = None,
        threads: int = 1,
        retire_inputs: bool = True,
    ) -> None:
        if backend is None:
            from ..backend.mock_backend import MockBackend

            backend = MockBackend()
        self.compilation = compilation
        self.backend = backend
        self.threads = max(int(threads), 1)
        #: Whether input ciphertexts may be released after their last use.
        #: A server evaluating a client's bundle does not own those handles
        #: (the client may re-submit or re-serialize them), so it keeps them.
        self.retire_inputs = retire_inputs
        self.program = compilation.program
        self._scales = compute_scales(self.program)

    # -- public API -------------------------------------------------------------
    # Input classification walks terms() rather than the inputs dict: an
    # input that became unreachable (dead) during compilation is absent from
    # the traversal, has no scale assignment, and needs no value.
    def input_scales(self) -> Dict[str, float]:
        """Scale (bits) at which each live Cipher input must be encrypted (level 0)."""
        return {
            term.name: float(self._scales[term.id])
            for term in self.program.terms()
            if term.is_input and term.value_type is ValueType.CIPHER
        }

    def cipher_input_names(self) -> List[str]:
        return [
            term.name
            for term in self.program.terms()
            if term.is_input and term.value_type is ValueType.CIPHER
        ]

    def plain_input_names(self) -> List[str]:
        return [
            term.name
            for term in self.program.terms()
            if term.is_input and term.value_type is not ValueType.CIPHER
        ]

    def encrypt_inputs(
        self, context: BackendContext, inputs: Dict[str, Any]
    ) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        """The client duty: split ``inputs`` into encrypted handles and plain vectors.

        Cipher inputs are encrypted at the scale the compiled program requires
        (level 0); Vector inputs are broadcast unencrypted.  A missing live
        input raises; extra names — including declared-but-dead inputs the
        compiler pruned — are ignored.  This is the single implementation both
        the compat :class:`Executor` and :class:`repro.api.ClientKit` use.
        """
        cipher_inputs: Dict[str, Any] = {}
        plain_inputs: Dict[str, np.ndarray] = {}
        vec_size = self.program.vec_size
        scales = self.input_scales()
        for name in self.cipher_input_names():
            if name not in inputs:
                raise ExecutionError(f"missing value for input {name!r}")
            cipher_inputs[name] = context.encrypt(
                _broadcast(inputs[name], vec_size), scales[name], level=0
            )
        for name in self.plain_input_names():
            if name not in inputs:
                raise ExecutionError(f"missing value for input {name!r}")
            plain_inputs[name] = _broadcast(inputs[name], vec_size)
        return cipher_inputs, plain_inputs

    def evaluate(
        self,
        context: BackendContext,
        cipher_inputs: Dict[str, Any],
        plain_inputs: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Evaluate the DAG; returns output name -> ciphertext handle.

        ``cipher_inputs`` maps Cipher input names to backend ciphertext
        handles (already encrypted by the data owner); ``plain_inputs`` maps
        the program's unencrypted vector inputs to plain values.
        """
        plain_inputs = plain_inputs or {}
        cipher_values: Dict[int, Any] = {}
        plain_values: Dict[int, np.ndarray] = {}
        vec_size = self.program.vec_size
        for term in self.program.terms():
            if term.is_input:
                if term.value_type is ValueType.CIPHER:
                    if term.name not in cipher_inputs:
                        raise ExecutionError(
                            f"missing ciphertext for encrypted input {term.name!r}"
                        )
                    cipher_values[term.id] = cipher_inputs[term.name]
                else:
                    if term.name not in plain_inputs:
                        raise ExecutionError(
                            f"missing value for plaintext input {term.name!r}"
                        )
                    plain_values[term.id] = _broadcast(plain_inputs[term.name], vec_size)
            elif term.is_constant:
                plain_values[term.id] = _broadcast(term.value, vec_size)
        return self._evaluate(context, cipher_values, plain_values)

    # -- internals ---------------------------------------------------------------
    def _evaluate(
        self,
        context: BackendContext,
        cipher_values: Dict[int, Any],
        plain_values: Dict[int, np.ndarray],
    ) -> Dict[str, Any]:
        program = self.program
        uses = program.uses()
        remaining_uses = {tid: len(consumers) for tid, consumers in uses.items()}
        output_ids = {t.id for t in program.outputs.values()}
        terms = program.terms()

        if self.threads == 1:
            for term in terms:
                if term.is_root:
                    continue
                self._execute_term(context, term, cipher_values, plain_values)
                self._retire_args(context, term, remaining_uses, output_ids, cipher_values)
        else:
            self._evaluate_parallel(
                context, terms, cipher_values, plain_values, remaining_uses, output_ids
            )

        handles = {}
        for name, term in program.outputs.items():
            if term.id in cipher_values:
                handles[name] = cipher_values[term.id]
            else:
                raise ExecutionError(f"output {name!r} did not produce a ciphertext")
        return handles

    def _evaluate_parallel(
        self,
        context: BackendContext,
        terms: List[Term],
        cipher_values: Dict[int, Any],
        plain_values: Dict[int, np.ndarray],
        remaining_uses: Dict[int, int],
        output_ids: set,
    ) -> None:
        """Dependency-driven parallel evaluation of the instruction DAG.

        Active (ready) instructions are dispatched to a thread pool as soon as
        all their parents have produced values, mirroring the asynchronous
        scheduling of the paper's Galois-based executor.

        Once any instruction fails, no newly-ready consumers are dispatched;
        already-dispatched instructions (which never depend on the failed one)
        drain, and the error of the topologically-earliest *recorded* failure
        is re-raised.  When a single instruction can fail this makes the
        surfaced exception independent of thread interleaving; with several
        independently-failing instructions the winner is biased to (but not
        guaranteed to be) the earliest, since a failure may suppress dispatch
        of another failing instruction entirely.
        """
        import threading

        lock = threading.Lock()
        terms_by_id = {t.id: t for t in terms}
        order = {t.id: i for i, t in enumerate(terms)}
        pending_args: Dict[int, int] = {}
        consumers: Dict[int, List[int]] = {t.id: [] for t in terms}
        for term in terms:
            if term.is_root:
                continue
            pending_args[term.id] = sum(1 for a in term.args if a.is_instruction)
            for arg in term.args:
                if arg.is_instruction:
                    consumers[arg.id].append(term.id)

        ready = [
            t
            for t in terms
            if t.is_instruction and pending_args[t.id] == 0
        ]
        done_count = 0
        inflight = 0
        total = sum(1 for t in terms if t.is_instruction)
        done_event = threading.Event()
        errors: List[Tuple[int, BaseException]] = []

        def run_term(term: Term) -> None:
            nonlocal done_count, inflight
            try:
                self._execute_term(context, term, cipher_values, plain_values)
            except BaseException as exc:  # propagate to the caller
                with lock:
                    errors.append((order[term.id], exc))
                    inflight -= 1
                    if inflight == 0:
                        done_event.set()
                return
            newly_ready: List[Term] = []
            with lock:
                self._retire_args(context, term, remaining_uses, output_ids, cipher_values)
                done_count += 1
                inflight -= 1
                if not errors:
                    for consumer_id in consumers[term.id]:
                        pending_args[consumer_id] -= 1
                        if pending_args[consumer_id] == 0:
                            newly_ready.append(terms_by_id[consumer_id])
                    inflight += len(newly_ready)
                if done_count == total or inflight == 0:
                    done_event.set()
            for nxt in newly_ready:
                pool.submit(run_term, nxt)

        with ThreadPoolExecutor(max_workers=self.threads) as pool:
            if total == 0:
                return
            with lock:
                inflight = len(ready)
            for term in ready:
                pool.submit(run_term, term)
            done_event.wait()
        if errors:
            raise min(errors, key=lambda entry: entry[0])[1]

    def _execute_term(
        self,
        context: BackendContext,
        term: Term,
        cipher_values: Dict[int, Any],
        plain_values: Dict[int, np.ndarray],
    ) -> None:
        if term.value_type is not ValueType.CIPHER:
            args = [plain_values[a.id] for a in term.args]
            plain_values[term.id] = _reference_op(term, args, self.program.vec_size)
            return
        cipher_values[term.id] = self._execute_cipher_term(
            context, term, cipher_values, plain_values
        )

    def _execute_cipher_term(
        self,
        context: BackendContext,
        term: Term,
        cipher_values: Dict[int, Any],
        plain_values: Dict[int, np.ndarray],
    ) -> Any:
        op = term.op
        args = term.args

        def cipher(i: int) -> Any:
            return cipher_values[args[i].id]

        def is_cipher(i: int) -> bool:
            return args[i].value_type is ValueType.CIPHER

        if op is Op.NEGATE:
            return context.negate(cipher(0))
        if op is Op.COPY:
            return cipher(0)
        if op is Op.RELINEARIZE:
            return context.relinearize(cipher(0))
        if op is Op.RESCALE:
            return context.rescale(cipher(0), term.rescale_value)
        if op is Op.MOD_SWITCH:
            return context.mod_switch(cipher(0))
        if op is Op.ROTATE_LEFT:
            return context.rotate(cipher(0), term.rotation)
        if op is Op.ROTATE_RIGHT:
            return context.rotate(cipher(0), -term.rotation)
        if op is Op.SUM:
            acc = cipher(0)
            shift = 1
            while shift < self.program.vec_size:
                acc = context.add(acc, context.rotate(acc, shift))
                shift *= 2
            return acc
        if op is Op.MULTIPLY:
            if is_cipher(0) and is_cipher(1):
                return context.multiply(cipher(0), cipher(1))
            cipher_idx, plain_idx = (0, 1) if is_cipher(0) else (1, 0)
            handle = cipher_values[args[cipher_idx].id]
            plain = context.encode(
                plain_values[args[plain_idx].id],
                self._scales[args[plain_idx].id],
                level=context.level(handle),
            )
            return context.multiply_plain(handle, plain)
        if op in (Op.ADD, Op.SUB):
            if is_cipher(0) and is_cipher(1):
                return context.add(cipher(0), cipher(1)) if op is Op.ADD else context.sub(
                    cipher(0), cipher(1)
                )
            cipher_idx, plain_idx = (0, 1) if is_cipher(0) else (1, 0)
            handle = cipher_values[args[cipher_idx].id]
            plain = context.encode(
                plain_values[args[plain_idx].id],
                context.scale_bits(handle),
                level=context.level(handle),
            )
            if op is Op.ADD:
                return context.add_plain(handle, plain)
            return context.sub_plain(handle, plain, reverse=(plain_idx == 0))
        raise ExecutionError(f"unsupported ciphertext opcode {op.name}")

    def _retire_args(
        self,
        context: BackendContext,
        term: Term,
        remaining_uses: Dict[int, int],
        output_ids: set,
        cipher_values: Dict[int, Any],
    ) -> None:
        """Release ciphertexts whose last consumer has executed (memory reuse)."""
        for arg in term.args:
            if arg.id not in remaining_uses:
                continue
            remaining_uses[arg.id] -= 1
            if (
                remaining_uses[arg.id] <= 0
                and arg.id in cipher_values
                and arg.id not in output_ids
                and (self.retire_inputs or not arg.is_input)
            ):
                context.release(cipher_values[arg.id])


class Executor:
    """One-process compatibility wrapper: encrypt, evaluate, decrypt.

    This is the pre-split API: a single ``execute(inputs)`` call performs the
    client duties (keygen, encoding, encryption, decryption) *and* the server
    duty (homomorphic evaluation) in one process.  It remains fully supported
    for examples, benchmarks, and tests, but code that needs the paper's
    trust boundary — the server never sees plaintext inputs or the secret
    key — should use :class:`repro.api.ClientKit` plus
    :class:`repro.api.ServerRuntime`, which share the same
    :class:`EvaluationEngine` underneath.
    """

    def __init__(
        self,
        compilation: CompilationResult,
        backend: Optional[HomomorphicBackend] = None,
        threads: int = 1,
    ) -> None:
        self.engine = EvaluationEngine(compilation, backend=backend, threads=threads)
        self.compilation = compilation
        self.backend = self.engine.backend
        self.program = self.engine.program
        self._scales = self.engine._scales

    @property
    def threads(self) -> int:
        return self.engine.threads

    # -- public API -------------------------------------------------------------
    def create_context(self) -> BackendContext:
        """Build a backend context (with keys) for this compilation.

        The returned context can be passed to :meth:`execute` repeatedly so a
        serving layer amortizes context creation and key generation across
        requests instead of paying them on every call.
        """
        context = self.backend.create_context(self.compilation.parameters)
        context.generate_keys()
        return context

    def execute(
        self, inputs: Dict[str, Any], context: Optional[BackendContext] = None
    ) -> ExecutionResult:
        """Encrypt ``inputs``, evaluate the program, and decrypt the outputs.

        When ``context`` is given it must come from :meth:`create_context` (or
        an equivalent backend context with keys already generated); context
        creation and key generation are then skipped entirely and
        ``stats.context_seconds`` stays zero.
        """
        stats = ExecutionStats(threads=self.threads)
        start_all = time.perf_counter()

        if context is None:
            t0 = time.perf_counter()
            context = self.create_context()
            stats.context_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        cipher_inputs, plain_inputs = self.engine.encrypt_inputs(context, inputs)
        stats.encrypt_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        output_handles = self.engine.evaluate(context, cipher_inputs, plain_inputs)
        stats.evaluate_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        outputs = {}
        for name, handle in output_handles.items():
            decoded = context.decrypt(handle)
            outputs[name] = decoded[: self.program.vec_size].copy()
        stats.decrypt_seconds = time.perf_counter() - t0

        stats.wall_seconds = time.perf_counter() - start_all
        stats.op_count = getattr(context, "op_count", 0)
        stats.peak_live_ciphertexts = getattr(context, "peak_live_ciphertexts", 0)
        return ExecutionResult(outputs=outputs, stats=stats)


def execute_reference(program: Program, inputs: Dict[str, Any]) -> Dict[str, np.ndarray]:
    """Convenience wrapper around :class:`ReferenceExecutor`."""
    return ReferenceExecutor(program).execute(inputs)
