"""Core enumerations and constants of the EVA language.

The opcodes and object types mirror the Protocol Buffers schema of Figure 1 in
the paper; the enum values equal the proto field numbers so that the
serialization layer can round-trip programs without a translation table.
"""

from __future__ import annotations

import enum

#: Maximum allowed rescale value in bits (`log2 s_f`).  SEAL limits coefficient
#: modulus primes to 60 bits, which is what the paper uses throughout.
DEFAULT_MAX_RESCALE_BITS = 60

#: Default security level (bits) used when selecting encryption parameters.
DEFAULT_SECURITY_LEVEL = 128


class Op(enum.IntEnum):
    """Instruction opcodes of the EVA language (Figure 1 / Table 2).

    The first group may appear in input programs written by frontends; the
    FHE-specific group (RELINEARIZE, MOD_SWITCH, RESCALE) is inserted by the
    compiler only (Table 2, "Restrictions" column).
    """

    UNDEFINED = 0
    NEGATE = 1
    ADD = 2
    SUB = 3
    MULTIPLY = 4
    SUM = 5
    COPY = 6
    ROTATE_LEFT = 7
    ROTATE_RIGHT = 8
    RELINEARIZE = 9
    MOD_SWITCH = 10
    RESCALE = 11
    NORMALIZE_SCALE = 12
    # Root pseudo-opcodes (not instructions): used for graph uniformity.
    INPUT = 100
    CONSTANT = 101

    @property
    def is_instruction(self) -> bool:
        """True for opcodes that compute a value from parameters."""
        return self not in (Op.INPUT, Op.CONSTANT, Op.UNDEFINED)

    @property
    def is_fhe_specific(self) -> bool:
        """True for opcodes only the compiler may insert (Table 2)."""
        return self in (Op.RELINEARIZE, Op.MOD_SWITCH, Op.RESCALE, Op.NORMALIZE_SCALE)

    @property
    def is_frontend(self) -> bool:
        """True for opcodes a frontend may emit in an input program."""
        return self.is_instruction and not self.is_fhe_specific

    @property
    def is_rotation(self) -> bool:
        return self in (Op.ROTATE_LEFT, Op.ROTATE_RIGHT)

    @property
    def is_additive(self) -> bool:
        """ADD/SUB: the ops subject to Constraint 2 (equal scales)."""
        return self in (Op.ADD, Op.SUB)

    @property
    def is_binary_arith(self) -> bool:
        """ADD/SUB/MULTIPLY: the ops subject to Constraint 1 (equal moduli)."""
        return self in (Op.ADD, Op.SUB, Op.MULTIPLY)

    @property
    def changes_modulus(self) -> bool:
        """True for the ops that consume an element of the modulus chain."""
        return self in (Op.RESCALE, Op.MOD_SWITCH)


class ValueType(enum.IntEnum):
    """Types of values in EVA programs (Table 1).

    ``CIPHER`` is an encrypted vector of fixed-point values, ``VECTOR`` an
    unencrypted vector of doubles, ``SCALAR`` a double, and ``INTEGER`` a
    32-bit signed integer (used only for rotation step counts).
    """

    CIPHER = 1
    VECTOR = 2
    SCALAR = 3
    INTEGER = 4

    @property
    def is_encrypted(self) -> bool:
        return self is ValueType.CIPHER

    @property
    def is_vector(self) -> bool:
        return self in (ValueType.CIPHER, ValueType.VECTOR)


class ObjectType(enum.IntEnum):
    """Serialized object types, matching the proto schema of Figure 1."""

    UNDEFINED_TYPE = 0
    SCALAR_CONST = 1
    SCALAR_PLAIN = 2
    SCALAR_CIPHER = 3
    VECTOR_CONST = 4
    VECTOR_PLAIN = 5
    VECTOR_CIPHER = 6


def object_type_for(value_type: ValueType, is_constant: bool) -> ObjectType:
    """Map an in-memory :class:`ValueType` to its serialized :class:`ObjectType`."""
    if value_type is ValueType.CIPHER:
        return ObjectType.VECTOR_CIPHER
    if value_type is ValueType.VECTOR:
        return ObjectType.VECTOR_CONST if is_constant else ObjectType.VECTOR_PLAIN
    if value_type in (ValueType.SCALAR, ValueType.INTEGER):
        return ObjectType.SCALAR_CONST if is_constant else ObjectType.SCALAR_PLAIN
    return ObjectType.UNDEFINED_TYPE


def value_type_for(object_type: ObjectType) -> ValueType:
    """Map a serialized :class:`ObjectType` back to a :class:`ValueType`."""
    if object_type in (ObjectType.VECTOR_CIPHER, ObjectType.SCALAR_CIPHER):
        return ValueType.CIPHER
    if object_type in (ObjectType.VECTOR_CONST, ObjectType.VECTOR_PLAIN):
        return ValueType.VECTOR
    return ValueType.SCALAR


def result_type(op: Op, arg_types: "list[ValueType]") -> ValueType:
    """Infer the result type of an instruction from its argument types.

    An operation touching at least one ``CIPHER`` operand produces a
    ``CIPHER``; otherwise it produces a ``VECTOR`` (EVA instructions always
    operate element-wise over vectors).
    """
    if any(t is ValueType.CIPHER for t in arg_types):
        return ValueType.CIPHER
    return ValueType.VECTOR


def is_power_of_two(n: int) -> bool:
    """Return True if ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0
