"""MOD_SWITCH insertion passes (Section 5.3, Figure 4).

After RESCALE insertion, the ciphertext operands of an ADD/SUB/MULTIPLY may
sit at different levels (have consumed different numbers of coefficient-
modulus primes), violating Constraint 1.  MOD_SWITCH brings a ciphertext down
a level without changing its scale.

* :class:`LazyModSwitchPass` inserts the missing MOD_SWITCH operations
  immediately before the consuming instruction, on the deficient operand edge.
* :class:`EagerModSwitchPass` inserts them at the earliest feasible point —
  directly after the producing term — and shares one switch chain among all
  consumers, so subsequent operations (including the consuming ADD itself in
  the paper's x²+x+x example) execute under the smaller modulus and the total
  number of MOD_SWITCH operations is minimized.
"""

from __future__ import annotations

from typing import Dict, List

from ..ir import GraphEditor, Program, Term
from ..types import Op, ValueType
from ..analysis.levels import compute_levels
from .framework import PassContext, RewritePass


def _required_level(consumer: Term, levels: Dict[int, int]) -> int:
    """Level at which ``consumer`` needs its ciphertext operands."""
    level = levels[consumer.id]
    if consumer.op.changes_modulus:
        level -= 1
    return level


def _make_switch_chain(start: Term, length: int, levels: Dict[int, int]) -> List[Term]:
    """Build a chain of ``length`` MOD_SWITCH nodes hanging off ``start``."""
    chain: List[Term] = []
    prev = start
    for i in range(length):
        node = Term(Op.MOD_SWITCH, [prev], ValueType.CIPHER)
        if start.kernel is not None:
            node.attributes["kernel"] = start.kernel
        levels[node.id] = levels[start.id] + i + 1
        chain.append(node)
        prev = node
    return chain


class EagerModSwitchPass(RewritePass):
    """Insert MOD_SWITCH chains as early as possible (EAGER-MODSWITCH).

    For every ciphertext term whose consumers require it at deeper levels than
    it is produced at, a single shared chain of MOD_SWITCH nodes is created
    right after the term, and each consumer is rewired to the chain position
    matching its required level.
    """

    name = "eager-modswitch"
    direction = "backward"

    def run(self, program: Program, context: PassContext) -> int:
        levels = compute_levels(program)
        editor = GraphEditor(program)
        rewrites = 0
        for term in program.terms():
            if term.value_type is not ValueType.CIPHER:
                continue
            consumers = editor.consumers(term)
            if not consumers:
                continue
            deficits: Dict[int, int] = {}
            for consumer in consumers:
                if consumer.id not in levels:
                    continue
                if not consumer.op.is_binary_arith and not consumer.op.changes_modulus:
                    # Unary ops execute at whatever level their operand has;
                    # only binary arithmetic imposes Constraint 1.
                    deficit = 0
                else:
                    deficit = _required_level(consumer, levels) - levels[term.id]
                deficits[consumer.id] = max(deficit, 0)
            max_deficit = max(deficits.values(), default=0)
            if max_deficit <= 0:
                continue
            chain = _make_switch_chain(term, max_deficit, levels)
            editor.uses.setdefault(term.id, []).append(chain[0])
            for i, node in enumerate(chain):
                editor.uses.setdefault(node.id, [])
                if i > 0:
                    editor.uses[chain[i - 1].id].append(node)
            for consumer in consumers:
                deficit = deficits.get(consumer.id, 0)
                if deficit > 0:
                    editor.replace_arg(consumer, term, chain[deficit - 1])
            rewrites += max_deficit
        return rewrites


class LazyModSwitchPass(RewritePass):
    """Insert MOD_SWITCH chains right before the consuming instruction (LAZY-MODSWITCH)."""

    name = "lazy-modswitch"
    direction = "forward"

    def run(self, program: Program, context: PassContext) -> int:
        levels = compute_levels(program)
        editor = GraphEditor(program)
        rewrites = 0
        for term in program.terms():
            if not term.op.is_binary_arith:
                continue
            cipher_args = [a for a in term.args if a.value_type is ValueType.CIPHER]
            if len(cipher_args) < 2:
                continue
            target = levels[term.id]
            for arg in list(dict.fromkeys(cipher_args)):
                deficit = target - levels[arg.id]
                if deficit <= 0:
                    continue
                chain = _make_switch_chain(arg, deficit, levels)
                editor.uses.setdefault(arg.id, []).append(chain[0])
                for i, node in enumerate(chain):
                    editor.uses.setdefault(node.id, [])
                    if i > 0:
                        editor.uses[chain[i - 1].id].append(node)
                editor.replace_arg(term, arg, chain[-1])
                rewrites += deficit
        return rewrites
