"""Graph rewriting framework and transformation passes (Section 5 of the paper)."""

from .framework import RewritePass, PassManager, PassReport
from .rescale import AlwaysRescalePass, WaterlineRescalePass
from .modswitch import LazyModSwitchPass, EagerModSwitchPass
from .matchscale import MatchScalePass
from .relinearize import RelinearizePass
from .kernel_alignment import ChetKernelAlignmentPass
from .lowering import ExpandSumPass, RemoveCopyPass
from .lane import LaneLoweringPass
from .hoisting import RotationHoistingPass
from .bsgs import BsgsRotationPass
from .folding import ConstantFoldingPass, CommonSubexpressionEliminationPass, DeadCodeEliminationPass

__all__ = [
    "RewritePass",
    "PassManager",
    "PassReport",
    "AlwaysRescalePass",
    "WaterlineRescalePass",
    "LazyModSwitchPass",
    "EagerModSwitchPass",
    "MatchScalePass",
    "RelinearizePass",
    "ChetKernelAlignmentPass",
    "ExpandSumPass",
    "RemoveCopyPass",
    "LaneLoweringPass",
    "RotationHoistingPass",
    "BsgsRotationPass",
    "ConstantFoldingPass",
    "CommonSubexpressionEliminationPass",
    "DeadCodeEliminationPass",
]
