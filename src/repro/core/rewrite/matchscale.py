"""MATCH-SCALE pass (Section 5.3, Figure 4).

ADD and SUB require their ciphertext operands to be encoded at the same scale
(Constraint 2).  Rather than introducing additional RESCALE or MOD_SWITCH
operations — which would lengthen the modulus chain — the pass multiplies the
smaller-scale operand by the constant 1 encoded at exactly the scale
difference, so both operands reach the larger scale (the paper's x²+x example,
Figure 3c).
"""

from __future__ import annotations

from typing import Dict

from ..ir import GraphEditor, Program, Term
from ..types import Op, ValueType
from .framework import PassContext, RewritePass

_EPS = 1e-9


class MatchScalePass(RewritePass):
    """Equalize the scales of ciphertext operands of ADD/SUB."""

    name = "match-scale"
    direction = "forward"

    def run(self, program: Program, context: PassContext) -> int:
        editor = GraphEditor(program)
        scales: Dict[int, float] = {}
        rewrites = 0
        for term in program.terms():
            scales[term.id] = self._scale_of(term, scales)
            if not term.op.is_additive:
                continue
            cipher_args = [a for a in term.args if a.value_type is ValueType.CIPHER]
            if len(cipher_args) < 2:
                continue
            a, b = cipher_args[0], cipher_args[1]
            sa, sb = scales[a.id], scales[b.id]
            if abs(sa - sb) <= _EPS:
                continue
            small, large = (a, b) if sa < sb else (b, a)
            diff = abs(sa - sb)
            one = program.constant(1.0, scale=diff, value_type=ValueType.SCALAR)
            scales[one.id] = diff
            boost = Term(Op.MULTIPLY, [small, one], ValueType.CIPHER)
            if term.kernel is not None:
                boost.attributes["kernel"] = term.kernel
            scales[boost.id] = scales[small.id] + diff
            editor.replace_arg(term, small, boost)
            scales[term.id] = max(scales[a.id], scales[b.id], scales[boost.id])
            rewrites += 1
        return rewrites

    @staticmethod
    def _scale_of(term: Term, scales: Dict[int, float]) -> float:
        if term.is_root:
            return float(term.scale) if term.scale is not None else 0.0
        args = [scales[a.id] for a in term.args]
        if term.op is Op.MULTIPLY:
            return float(sum(args))
        if term.op is Op.RESCALE:
            return float(args[0] - term.rescale_value)
        if term.op.is_additive:
            cipher = [scales[a.id] for a in term.args if a.value_type is ValueType.CIPHER]
            return float(max(cipher)) if cipher else float(max(args))
        return float(args[0])
