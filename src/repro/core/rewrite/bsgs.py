"""Baby-step/giant-step rotation lowering: O(sqrt(k)) Galois keys for k steps.

Each distinct rotation step needs its own Galois key, and PR 7 made painfully
concrete what that costs: the keys are the multi-MB blobs dominating session
setup.  For a base ``B``, any step ``s`` splits as ``s = g + b`` with giant
``g = B * (s // B)`` and baby ``b = s % B``, and ``rot_s(x) ==
rot_b(rot_g(x))`` — so the program only needs keys for the babies and giants
it actually uses, not for every composite step.

The step-set planning lives in
:func:`repro.core.analysis.rotations.plan_rotation_steps`; this pass applies
the chosen plan to the graph.  Giant rotations are cached per ``(source,
giant)`` — and pre-populated with the program's *existing* rotation terms, so
a stencil whose row strides are already computed (Sobel's ``rot(8)`` /
``rot(16)`` taps) pays **zero** extra rotations for the decomposition: only
the baby hop on top of a term the program evaluates anyway.

The pass runs after the cleanup passes (CSE has merged duplicate rotations,
so the cache sees one term per (source, step)) and before scale management —
rotations neither change scales nor consume levels, so chaining two of them
is transparent to the waterline bookkeeping.  Downstream, rotation-key
selection walks the *final* graph and therefore automatically collects the
reduced set; it flows unchanged through ``CompilationResult`` into client
keygen, key export, and the serving session manager.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..analysis.rotations import normalize_step, plan_rotation_steps, select_rotation_steps
from ..ir import GraphEditor, Program, Term
from ..types import Op
from .framework import PassContext, RewritePass


class BsgsRotationPass(RewritePass):
    """Lower decomposed rotations to ``rot_baby(rot_giant(x))`` chains.

    ``mode`` mirrors :func:`plan_rotation_steps`: ``"auto"`` (cost-model
    arbitration between key savings and extra giant rotations), ``"always"``
    (fewest keys), or ``"off"`` (identity).
    """

    name = "bsgs-rotations"
    direction = "forward"

    def __init__(self, mode: str = "auto", cost_model=None) -> None:
        self.mode = mode
        self.cost_model = cost_model

    def run(self, program: Program, context: PassContext) -> int:
        if self.mode == "off":
            return 0
        vec_size = program.vec_size
        steps = select_rotation_steps(program)
        plan = plan_rotation_steps(
            steps,
            vec_size,
            mode=self.mode,
            cost_model=self.cost_model,
            poly_degree=2 * vec_size,
            levels=program.multiplicative_depth() + 2,
        )
        context.extra["rotation_plan"] = plan
        if not plan.decomposed:
            return 0
        terms = program.terms()
        # Share giants per (source, giant step), seeded with the rotations the
        # program already computes directly: a decomposition whose giants are
        # existing taps adds no rotations at all.
        giants: Dict[Tuple[int, int], Term] = {}
        for term in terms:
            if not term.op.is_rotation:
                continue
            step = normalize_step(term.op, term.rotation, vec_size)
            if step != 0 and step not in plan.decompositions:
                giants.setdefault((term.args[0].id, step), term)
        editor = GraphEditor(program)
        rewrites = 0
        for term in terms:
            if not term.op.is_rotation:
                continue
            step = normalize_step(term.op, term.rotation, vec_size)
            pair = plan.decompositions.get(step)
            if pair is None:
                continue
            giant_step, baby_step = pair
            source = term.args[0]
            giant = giants.get((source.id, giant_step))
            if giant is None:
                giant = Term(
                    Op.ROTATE_LEFT, [source], source.value_type, rotation=giant_step
                )
                if term.kernel is not None:
                    giant.attributes["kernel"] = term.kernel
                giants[(source.id, giant_step)] = giant
            baby = Term(
                Op.ROTATE_LEFT, [giant], giant.value_type, rotation=baby_step
            )
            if term.kernel is not None:
                baby.attributes["kernel"] = term.kernel
            editor.replace_term(term, baby)
            rewrites += 1
        return rewrites
