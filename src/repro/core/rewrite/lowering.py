"""Lowering passes: expansion of high-level opcodes into core opcodes.

These passes run before the FHE-specific insertion passes so that the latter
(and the validator, parameter selection, and rotation-key selection) only ever
see the core opcode set of Table 2.
"""

from __future__ import annotations

from ..ir import GraphEditor, Program, Term
from ..types import Op
from .framework import PassContext, RewritePass


class ExpandSumPass(RewritePass):
    """Expand SUM into a logarithmic rotate-and-add tree.

    ``SUM(x)`` places the sum of all ``vec_size`` elements of ``x`` into every
    slot.  The standard batching idiom is ``log2(vec_size)`` rounds of
    ``x = x + rotate_left(x, 2^i)``, which is what this pass emits; the
    resulting rotations then participate in rotation-key selection.
    """

    name = "expand-sum"
    direction = "forward"

    def run(self, program: Program, context: PassContext) -> int:
        editor = GraphEditor(program)
        rewrites = 0
        for term in program.terms():
            if term.op is not Op.SUM:
                continue
            acc = term.args[0]
            shift = 1
            while shift < program.vec_size:
                rotated = Term(
                    Op.ROTATE_LEFT, [acc], acc.value_type, rotation=shift
                )
                acc = Term(Op.ADD, [acc, rotated], acc.value_type)
                if term.kernel is not None:
                    rotated.attributes["kernel"] = term.kernel
                    acc.attributes["kernel"] = term.kernel
                shift *= 2
            editor.replace_term(term, acc)
            rewrites += 1
        return rewrites


class RemoveCopyPass(RewritePass):
    """Remove COPY and zero-step rotations; they are identities."""

    name = "remove-copy"
    direction = "forward"

    def run(self, program: Program, context: PassContext) -> int:
        editor = GraphEditor(program)
        rewrites = 0
        for term in program.terms():
            is_copy = term.op is Op.COPY
            is_null_rotation = term.op.is_rotation and (
                term.rotation % program.vec_size == 0
            )
            if not (is_copy or is_null_rotation):
                continue
            editor.replace_term(term, term.args[0])
            rewrites += 1
        return rewrites
