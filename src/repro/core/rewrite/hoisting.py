"""Rotation hoisting: factor same-step rotations out of additive trees.

Stencil programs (Sobel/Harris) and lane-lowered graphs repeatedly rotate one
source and immediately sum the scaled results.  Rotation commutes with
slotwise plaintext multiplication up to a cyclic shift of the constant::

    sum_j c_j * rot_s(y_j)  ==  rot_s( sum_j roll(c_j, s) * y_j )

(``roll(c, s)[i] = c[(i - s) mod N]``; for a constant of period ``L`` the
roll is by ``s mod L``, which is a no-op for the lane masks whose period
divides every step the lane lowering emits).  The left side pays one
key-switched rotation *per summand*; the right side pays one per *group*.

This pass finds maximal ciphertext ADD trees, decomposes their addends into
``constants x core`` atoms (:mod:`repro.core.analysis.rotations` carries the
decomposition and its safety argument: atoms only ever peel through ADD and
MULTIPLY, so no atom crosses a rescale/modswitch boundary), groups the
single-consumer rotation atoms by step, and rewrites every group of two or
more through the hoisted form.  The dominant win is the lane wrap branch:
after :class:`~repro.core.rewrite.lane.LaneLoweringPass` emits wrap rotations
in composed form, *all* of them share the step ``vec_size - w`` and collapse
to one hoisted rotation per tree.

While a tree is being rebuilt the pass also drops atoms whose constant
product is identically zero (stencil taps with a zero coefficient, e.g. the
cross positions of the Sobel kernel's zero column) — re-forming the linear
combination is the natural place to elide dead members, and it removes their
rotations and multiplies from the lowered graph.

Caveat: when a shared subtree (e.g. a lane-combine node read by two gradient
trees) is distributed into several trees, the original rotations only die
once *every* consuming tree rewrites; a tree left untouched keeps them alive.
In the symmetric stencil programs this pass targets, sibling trees rewrite
together, so the count bound holds.

The pass runs after lane lowering and before the scale-management passes;
rotations are scale- and level-transparent, so the rewrite preserves the
waterline bookkeeping downstream passes compute.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..analysis.rotations import (
    AdditiveAtom,
    additive_tree_roots,
    decompose_addend,
    flatten_additive_tree,
)
from ..ir import GraphEditor, Program, Term
from ..types import Op
from .framework import PassContext, RewritePass


def _is_zero_constant(term: Term) -> bool:
    return bool(np.all(np.asarray(term.value, dtype=np.float64) == 0.0))


class RotationHoistingPass(RewritePass):
    """Rewrite ``sum c_j * rot_s(y_j)`` into ``rot_s(sum roll(c_j) * y_j)``."""

    name = "hoist-rotations"
    direction = "forward"

    def run(self, program: Program, context: PassContext) -> int:
        terms = program.terms()
        uses: Dict[int, int] = {}
        for term in terms:
            for arg in term.args:
                uses[arg.id] = uses.get(arg.id, 0) + 1
        output_ids = {term.id for term in program.outputs.values()}
        editor = GraphEditor(program)
        self._rolled: Dict[Tuple[int, int], Term] = {}
        rewrites = 0
        for root in additive_tree_roots(program, uses, output_ids):
            rewrites += self._hoist_tree(program, editor, root, uses, output_ids)
        return rewrites

    # -- per-tree rewrite ---------------------------------------------------

    def _hoist_tree(
        self,
        program: Program,
        editor: GraphEditor,
        root: Term,
        uses: Dict[int, int],
        output_ids,
    ) -> int:
        addends = flatten_additive_tree(root, uses, output_ids)
        per_addend: List[Tuple[Term, List[AdditiveAtom]]] = [
            (addend, decompose_addend(addend, uses, output_ids, program.vec_size))
            for addend in addends
        ]
        # Group the non-zero hoistable atoms by step; only groups of two or
        # more save a rotation, and a tree without such a group is left
        # completely untouched (no zero-dropping either, so an unprofitable
        # program keeps its original graph bit for bit).
        groups: Dict[int, List[AdditiveAtom]] = {}
        for _, atoms in per_addend:
            for atom in atoms:
                if atom.hoistable and not self._zero_atom(atom):
                    groups.setdefault(atom.step, []).append(atom)
        hoisted_steps = {step for step, members in groups.items() if len(members) >= 2}
        if not hoisted_steps:
            return 0

        hoisted_ids = {
            id(atom) for step in hoisted_steps for atom in groups[step]
        }
        new_addends: List[Term] = []
        for addend, atoms in per_addend:
            touched = any(
                id(atom) in hoisted_ids or self._zero_atom(atom) for atom in atoms
            )
            if not touched:
                new_addends.append(addend)
                continue
            for atom in atoms:
                if id(atom) in hoisted_ids or self._zero_atom(atom):
                    continue
                new_addends.append(self._rebuild_atom(program, atom, roll_step=0))
        for step in sorted(hoisted_steps):
            members = [
                self._rebuild_atom(program, atom, roll_step=step)
                for atom in groups[step]
            ]
            inner = self._chain_add(program, members, root)
            hoisted = Term(Op.ROTATE_LEFT, [inner], inner.value_type, rotation=step)
            self._tag(hoisted, root)
            new_addends.append(hoisted)

        if not new_addends:
            return 0
        new_root = self._chain_add(program, new_addends, root)
        if new_root is root:
            return 0
        editor.replace_term(root, new_root)
        return len(hoisted_steps)

    # -- atom rebuilding ----------------------------------------------------

    def _zero_atom(self, atom: AdditiveAtom) -> bool:
        return any(_is_zero_constant(const) for const in atom.constants)

    def _rebuild_atom(self, program: Program, atom: AdditiveAtom, roll_step: int) -> Term:
        """Re-form ``prod(constants) * core`` as a chain of multiplies.

        For a group member (``roll_step`` = the hoisted step ``s``) the chain
        applies to the rotation's *source* and every constant is rolled by
        ``s`` — ``c * rot_s(y) == rot_s(roll(c, s) * y)`` member-wise.  The
        chain mirrors the original peel order, so scales and the plaintext
        multiply count are exactly those of the graph being replaced.
        """
        node = atom.source if roll_step else atom.core
        for const in reversed(atom.constants):
            factor = self._roll_constant(program, const, roll_step)
            node = program.make_term(Op.MULTIPLY, [node, factor])
            self._tag(node, atom.core)
        return node

    def _roll_constant(self, program: Program, const: Term, step: int) -> Term:
        """``roll(c, s)``: the constant seen *before* a hoisted left rotation.

        ``rot_s(c' * y) == c * rot_s(y)`` requires ``c'[(i + s) mod N] ==
        c[i]``, i.e. ``c' = np.roll(c, s)`` on the constant's own period.
        Scalars and constants whose period divides the step (every lane mask
        under the shared wrap step) are returned unchanged.
        """
        values = np.atleast_1d(np.asarray(const.value, dtype=np.float64))
        length = int(values.size)
        offset = int(step) % length if length else 0
        if offset == 0:
            return const
        key = (const.id, offset)
        rolled = self._rolled.get(key)
        if rolled is None:
            rolled = program.constant(
                np.roll(values, offset), scale=const.scale, value_type=const.value_type
            )
            if const.attributes.get("lane_mask"):
                rolled.attributes["lane_mask"] = True
            self._rolled[key] = rolled
        return rolled

    def _chain_add(self, program: Program, terms: List[Term], origin: Term) -> Term:
        node = terms[0]
        for term in terms[1:]:
            node = program.make_term(Op.ADD, [node, term])
            self._tag(node, origin)
        return node

    def _tag(self, node: Term, origin: Term) -> None:
        if origin.kernel is not None and node is not origin:
            node.attributes["kernel"] = origin.kernel
