"""Lane-aware rotation lowering: make rotation-bearing programs slot-batchable.

A CKKS ciphertext carries ``vec_size`` slots but most requests use far fewer;
the serving layer amortizes a homomorphic evaluation by packing independent
requests into *lanes* of a power-of-two width ``w``.  Packing is trivially
sound for slotwise programs, but ROTATE and SUM move data across lane
boundaries, which is exactly what excludes the rotation-heavy Sobel / Harris /
DNN workloads of Section 8 from batching.

This pass rewrites every rotation into a *lane-safe* form.  For a left
rotation by ``k`` (normalized to ``k' = k mod w``), the identity is::

    lane_rot(k') = mask_in * global_rot(k') + mask_wrap * global_rot(k' - w)

where ``mask_in`` is the plaintext 0/1 vector selecting the slots whose source
stays inside the lane (lane offsets ``[0, w - k')``) and ``mask_wrap`` the
complement (offsets that wrap around the lane boundary).

The wrap branch is emitted in *composed* form: since ``rot(k' - w) ==
rot(vec_size - w) . rot(k')``, the pass reuses the in-lane rotation and
applies one further left rotation by ``vec_size - w`` — a step shared by
*every* lane step of the program.  ``k`` distinct lane steps therefore need
``k + 1`` Galois keys instead of the ``2k`` of the legacy form (one fresh step
``vec_size - w + k'`` per rotation), and the shared-source wrap rotations are
exactly what :class:`~repro.core.rewrite.hoisting.RotationHoistingPass` later
collapses into a single hoisted rotation per additive tree.  The legacy
mask-pair form is kept behind ``hoisted=False`` as the PR 7 baseline for the
rotation-cost benchmark.

The pass runs *after* :class:`~repro.core.rewrite.lowering.ExpandSumPass`:
SUM is first expanded into the standard log-depth rotate-and-add tree, and
lowering each of those rotations yields a lane-local reduction (shifts that
are multiples of ``w`` degenerate into plain doublings).  The result computes,
in every lane, exactly what the original program computes on a ``w``-periodic
(replicated) input — so a batched lane matches a solo run of the same request
bit-for-bit up to CKKS noise.

The masks cost one extra plaintext multiply per rotation; their scales are
managed by the ordinary downstream passes (WATERLINE-RESCALE inserts rescales
where the products exceed the waterline, MATCH-SCALE equalizes the branches of
mixed-scale additions), so Constraints 1-4 keep holding on lowered programs
without any scale bookkeeping here.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ...errors import CompilationError
from ..analysis.rotations import lane_lowered_step_pair, lane_wrap_step, normalize_step
from ..ir import GraphEditor, Program, Term
from ..types import Op, ValueType
from .framework import PassContext, RewritePass, waterline_of


def _constant_width(value) -> int:
    return int(np.atleast_1d(np.asarray(value, dtype=np.float64)).size)


class LaneLoweringPass(RewritePass):
    """Rewrite rotations into the masked lane-local form (see module docs).

    ``lane_width`` must be a power of two dividing the program's ``vec_size``;
    when it equals ``vec_size`` the pass is the identity (a single full-width
    lane *is* the whole ciphertext).
    """

    name = "lane-lowering"
    direction = "forward"

    def __init__(self, lane_width: int, hoisted: bool = True) -> None:
        self.lane_width = int(lane_width)
        #: Emit the wrap branch as a composition sharing the single step
        #: ``vec_size - w`` (default); ``False`` restores the legacy
        #: mask-pair form with a distinct wrap step per rotation.
        self.hoisted = bool(hoisted)

    def run(self, program: Program, context: PassContext) -> int:
        width = self.lane_width
        vec_size = program.vec_size
        if width >= vec_size:
            return 0
        if vec_size % width:
            raise CompilationError(
                f"lane width {width} does not divide the vector size {vec_size}"
            )
        # Lane uniformity: a constant tiles with its own period during
        # encoding, so every lane sees the same constant only if each
        # constant's length divides the lane width.
        for term in program.terms():
            if term.is_constant:
                length = _constant_width(term.value)
                if width % length:
                    raise CompilationError(
                        f"constant of length {length} does not divide the lane "
                        f"width {width}; the program cannot be lane-lowered at "
                        f"this width"
                    )
            elif term.op is Op.SUM:
                raise CompilationError(
                    "lane lowering requires SUM to be expanded first; compile "
                    "with lower_sum=True"
                )

        # The masks are 0/1 selectors; encode them like any other program
        # constant, at the waterline, and let the downstream scale passes do
        # the bookkeeping.
        mask_scale = max(
            context.waterline_bits
            if context.waterline_bits is not None
            else waterline_of(program),
            1.0,
        )
        editor = GraphEditor(program)
        masks: Dict[Tuple[int, bool], Term] = {}
        rewrites = 0
        for term in program.terms():
            if not term.op.is_rotation:
                continue
            rewrites += 1
            step = normalize_step(term.op, term.rotation, vec_size) % width
            if step == 0:
                # Rotations by a multiple of the lane width are lane-local
                # identities (this includes the >= w shifts of an expanded
                # SUM, which thereby degenerate into doublings).
                editor.replace_term(term, term.args[0])
                continue
            step_in, step_wrap = lane_lowered_step_pair(step, width, vec_size)
            source = term.args[0]
            rot_in = Term(Op.ROTATE_LEFT, [source], source.value_type, rotation=step_in)
            if self.hoisted:
                # rot(k - w) == rot(vec_size - w) . rot(k): reuse the in-lane
                # rotation so every wrap branch shares one Galois key step.
                rot_wrap = Term(
                    Op.ROTATE_LEFT,
                    [rot_in],
                    rot_in.value_type,
                    rotation=lane_wrap_step(width, vec_size),
                )
            else:
                rot_wrap = Term(
                    Op.ROTATE_LEFT, [source], source.value_type, rotation=step_wrap
                )
            kept_in = program.make_term(
                Op.MULTIPLY, [rot_in, self._mask(program, masks, step, mask_scale, wrap=False)]
            )
            kept_wrap = program.make_term(
                Op.MULTIPLY, [rot_wrap, self._mask(program, masks, step, mask_scale, wrap=True)]
            )
            combined = program.make_term(Op.ADD, [kept_in, kept_wrap])
            if term.kernel is not None:
                for node in (rot_in, rot_wrap, kept_in, kept_wrap, combined):
                    node.attributes["kernel"] = term.kernel
            editor.replace_term(term, combined)
        return rewrites

    def _mask(
        self,
        program: Program,
        cache: Dict[Tuple[int, bool], Term],
        step: int,
        scale: float,
        wrap: bool,
    ) -> Term:
        """The 0/1 selector constant for one lane step (shared per step)."""
        key = (step, wrap)
        term = cache.get(key)
        if term is None:
            width = self.lane_width
            values = np.zeros(width, dtype=np.float64)
            if wrap:
                values[width - step :] = 1.0
            else:
                values[: width - step] = 1.0
            term = program.constant(values, scale=scale, value_type=ValueType.VECTOR)
            # Masks are compiler plumbing, not program semantics: the batcher
            # must not let their width (always = lane_width) inflate the
            # output period it reports for the program's real constants.
            term.attributes["lane_mask"] = True
            cache[key] = term
        return term
