"""RESCALE insertion passes (Section 5.3, Figure 4).

Two policies are provided:

* :class:`AlwaysRescalePass` — the naive policy: insert a RESCALE after every
  MULTIPLY, dividing by the smaller operand scale.  Defined in the paper for
  exposition and used here as the CHET-like baseline policy.
* :class:`WaterlineRescalePass` — the paper's policy: rescale always by the
  maximum allowed value ``s_f`` and only when the resulting scale stays at or
  above the waterline ``s_w`` (the maximum scale of any program root).  This
  minimizes the number of RESCALE operations on any path and hence the
  modulus-chain length (the paper's optimality argument).
"""

from __future__ import annotations

from typing import Dict

from ..ir import GraphEditor, Program, Term
from ..types import Op, ValueType
from .framework import PassContext, RewritePass, waterline_of

#: Numerical slack (bits) when comparing scales.
_EPS = 1e-9


def _root_scale(term: Term) -> float:
    return float(term.scale) if term.scale is not None else 0.0


class _RescaleInsertionBase(RewritePass):
    """Shared machinery: forward sweep with incremental scale tracking."""

    direction = "forward"

    def run(self, program: Program, context: PassContext) -> int:
        editor = GraphEditor(program)
        scales: Dict[int, float] = {}
        rewrites = 0
        for term in program.terms():
            scales[term.id] = self._scale_of(term, scales)
            if term.op is Op.MULTIPLY and term.value_type is ValueType.CIPHER:
                rewrites += self._maybe_rescale(program, editor, term, scales, context)
        return rewrites

    def _scale_of(self, term: Term, scales: Dict[int, float]) -> float:
        if term.is_root:
            return _root_scale(term)
        args = [scales[a.id] for a in term.args]
        if term.op is Op.MULTIPLY:
            return float(sum(args))
        if term.op is Op.RESCALE:
            return float(args[0] - term.rescale_value)
        if term.op.is_additive:
            cipher = [scales[a.id] for a in term.args if a.value_type is ValueType.CIPHER]
            return float(max(cipher)) if cipher else float(max(args))
        return float(args[0])

    def _insert_rescale(
        self,
        program: Program,
        editor: GraphEditor,
        term: Term,
        scales: Dict[int, float],
        rescale_bits: float,
    ) -> Term:
        node = Term(Op.RESCALE, [term], ValueType.CIPHER, rescale_value=float(rescale_bits))
        if term.kernel is not None:
            node.attributes["kernel"] = term.kernel
        editor.insert_after(term, node)
        scales[node.id] = scales[term.id] - float(rescale_bits)
        return node

    def _maybe_rescale(
        self,
        program: Program,
        editor: GraphEditor,
        term: Term,
        scales: Dict[int, float],
        context: PassContext,
    ) -> int:
        raise NotImplementedError


class AlwaysRescalePass(_RescaleInsertionBase):
    """Insert a RESCALE after every ciphertext MULTIPLY (Figure 4, ALWAYS-RESCALE).

    The rescale value is the minimum of the operand scales, which brings the
    result back to the larger operand's scale.  This is the per-multiply
    policy expert-written kernels (and the CHET baseline) use.
    """

    name = "always-rescale"

    def _maybe_rescale(self, program, editor, term, scales, context) -> int:
        rescale_bits = min(
            self._scale_of_arg(arg, scales) for arg in term.args
        )
        rescale_bits = min(rescale_bits, context.max_rescale_bits)
        if rescale_bits <= _EPS:
            return 0
        self._insert_rescale(program, editor, term, scales, rescale_bits)
        return 1

    @staticmethod
    def _scale_of_arg(arg: Term, scales: Dict[int, float]) -> float:
        return scales[arg.id]


class WaterlineRescalePass(_RescaleInsertionBase):
    """Insert RESCALE by ``s_f`` only while the result stays above the waterline.

    Figure 4, WATERLINE-RESCALE: for a MULTIPLY whose result scale ``s_n``
    satisfies ``s_n - s_f >= s_w``, insert a RESCALE by ``s_f``.  The rule is
    applied repeatedly (the inserted RESCALE's result may itself still exceed
    ``s_w + s_f`` for very large operand scales).
    """

    name = "waterline-rescale"

    def _maybe_rescale(self, program, editor, term, scales, context) -> int:
        waterline = (
            context.waterline_bits
            if context.waterline_bits is not None
            else waterline_of(program)
        )
        rescale_bits = context.effective_rescale_bits()
        rewrites = 0
        current = term
        while scales[current.id] - rescale_bits >= waterline - _EPS:
            current = self._insert_rescale(program, editor, current, scales, rescale_bits)
            rewrites += 1
        return rewrites
