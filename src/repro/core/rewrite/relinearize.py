"""RELINEARIZE insertion pass (Section 5.2, Figure 4).

Multiplying two ciphertexts (each with two polynomials) produces a ciphertext
with three polynomials.  To satisfy Constraint 3 — every MULTIPLY operand must
have exactly two polynomials — a RELINEARIZE is inserted directly after every
ciphertext-ciphertext MULTIPLY, before any of its consumers.  This simple
policy guarantees a single relinearization key suffices for the whole program;
optimal placement is NP-hard and left as future work in the paper.
"""

from __future__ import annotations

from ..ir import GraphEditor, Program, Term
from ..types import Op, ValueType
from .framework import PassContext, RewritePass


class RelinearizePass(RewritePass):
    """Insert RELINEARIZE after every ciphertext-ciphertext MULTIPLY."""

    name = "relinearize"
    direction = "forward"

    def run(self, program: Program, context: PassContext) -> int:
        editor = GraphEditor(program)
        rewrites = 0
        for term in program.terms():
            if term.op is not Op.MULTIPLY:
                continue
            if any(a.value_type is not ValueType.CIPHER for a in term.args):
                continue
            if any(c.op is Op.RELINEARIZE for c in editor.consumers(term)):
                continue  # already relinearized (idempotence)
            node = Term(Op.RELINEARIZE, [term], ValueType.CIPHER)
            if term.kernel is not None:
                node.attributes["kernel"] = term.kernel
            editor.insert_after(term, node)
            rewrites += 1
        return rewrites
