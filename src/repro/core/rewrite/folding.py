"""Cleanup passes: constant folding, common-subexpression elimination, DCE.

These are not described in the paper but are standard compiler hygiene that
keeps frontend-generated programs (especially the tensor-kernel generated DNN
programs) small before the FHE-specific passes run.  They operate purely on
plaintext-valued subgraphs and structural redundancy, so they never change the
program's reference semantics.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..ir import GraphEditor, Program, Term
from ..types import Op, ValueType
from .framework import PassContext, RewritePass


def _tile_common(a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Tile two periodic plaintext vectors to their common (lcm) length.

    Constants of different lengths denote the same value replicated at
    different periods (Section 3's input replication); a binary operation on
    them is well-defined on the common period.  Lane masks (length = lane
    width) meeting shorter constants is the common case.
    """
    a = np.atleast_1d(a)
    b = np.atleast_1d(b)
    if a.size == b.size:
        return a, b
    target = int(np.lcm(a.size, b.size))
    return np.tile(a, target // a.size), np.tile(b, target // b.size)


def _evaluate_plain(term: Term, values: Dict[int, np.ndarray]) -> np.ndarray:
    """Evaluate a plaintext instruction on the numeric values of its arguments."""
    args = [values[a.id] for a in term.args]
    if term.op is Op.NEGATE:
        return -args[0]
    if term.op is Op.ADD:
        return np.add(*_tile_common(args[0], args[1]))
    if term.op is Op.SUB:
        return np.subtract(*_tile_common(args[0], args[1]))
    if term.op is Op.MULTIPLY:
        return np.multiply(*_tile_common(args[0], args[1]))
    if term.op is Op.COPY:
        return args[0]
    if term.op is Op.SUM:
        return np.full_like(np.atleast_1d(args[0]), np.sum(args[0]), dtype=np.float64)
    if term.op is Op.ROTATE_LEFT:
        return np.roll(np.atleast_1d(args[0]), -term.rotation)
    if term.op is Op.ROTATE_RIGHT:
        return np.roll(np.atleast_1d(args[0]), term.rotation)
    raise ValueError(f"cannot fold opcode {term.op.name}")


_FOLDABLE = {
    Op.NEGATE,
    Op.ADD,
    Op.SUB,
    Op.MULTIPLY,
    Op.COPY,
    Op.SUM,
    Op.ROTATE_LEFT,
    Op.ROTATE_RIGHT,
}


class ConstantFoldingPass(RewritePass):
    """Replace plaintext instructions whose arguments are all constants."""

    name = "constant-folding"
    direction = "forward"

    def run(self, program: Program, context: PassContext) -> int:
        editor = GraphEditor(program)
        values: Dict[int, np.ndarray] = {}
        scales: Dict[int, float] = {}
        rewrites = 0
        for term in program.terms():
            if term.is_constant:
                values[term.id] = np.asarray(term.value, dtype=np.float64)
                scales[term.id] = float(term.scale or 0.0)
                continue
            if (
                term.is_instruction
                and term.op in _FOLDABLE
                and term.value_type is not ValueType.CIPHER
                and all(a.id in values for a in term.args)
            ):
                value = _evaluate_plain(term, values)
                if term.op is Op.MULTIPLY:
                    scale = sum(scales[a.id] for a in term.args)
                else:
                    scale = max(scales[a.id] for a in term.args)
                folded = program.constant(value, scale=scale)
                values[folded.id] = np.asarray(value, dtype=np.float64)
                scales[folded.id] = scale
                editor.replace_term(term, folded)
                rewrites += 1
        return rewrites


def _structural_key(term: Term) -> Tuple:
    """Hashable key identifying structurally identical instructions."""
    attrs: Tuple = ()
    if term.op.is_rotation:
        attrs = ("rot", term.rotation)
    elif term.op is Op.RESCALE:
        attrs = ("rescale", term.rescale_value)
    return (term.op, tuple(a.id for a in term.args), attrs)


class CommonSubexpressionEliminationPass(RewritePass):
    """Deduplicate structurally identical instructions (same op, args, attrs)."""

    name = "cse"
    direction = "forward"
    until_quiescence = True

    def run(self, program: Program, context: PassContext) -> int:
        editor = GraphEditor(program)
        seen: Dict[Tuple, Term] = {}
        rewrites = 0
        for term in program.terms():
            if not term.is_instruction:
                continue
            key = _structural_key(term)
            existing = seen.get(key)
            if existing is None:
                seen[key] = term
            elif existing is not term:
                editor.replace_term(term, existing)
                rewrites += 1
        return rewrites


class DeadCodeEliminationPass(RewritePass):
    """Report how many declared inputs are unreachable from the outputs.

    The in-memory representation only ever materializes terms reachable from
    the outputs, so structural dead code cannot exist; this pass exists to
    surface inputs that were declared but never used (a frequent frontend
    mistake the compiler warns about).
    """

    name = "dce"
    direction = "backward"

    def run(self, program: Program, context: PassContext) -> int:
        reachable = {t.id for t in program.terms()}
        unused = [name for name, term in program.inputs.items() if term.id not in reachable]
        context.extra.setdefault("unused_inputs", []).extend(unused)
        return 0
