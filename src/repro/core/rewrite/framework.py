"""Graph rewriting framework (Section 5.1).

Each transformation of the compiler is a :class:`RewritePass`.  A pass walks
the program graph in a forward (roots-to-leaves) or backward (leaves-to-roots)
schedule and applies a local rewrite rule at each node; the framework supplies
the schedule, a :class:`~repro.core.ir.GraphEditor` for structural edits, and
repetition until quiescence for passes that need multiple sweeps.

The :class:`PassManager` chains passes, records per-pass statistics, and is
what the compiler driver (Algorithm 1's ``Transform`` step) runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from ..ir import Program


@dataclass
class PassReport:
    """Statistics for one executed pass."""

    name: str
    changed: bool
    rewrites: int
    seconds: float


@dataclass
class PassContext:
    """Options and shared state threaded through the passes of one compilation."""

    max_rescale_bits: float = 60.0
    #: Minimum post-rescale scale in bits (the waterline ``s_w``); filled in by
    #: the compiler from the maximum root scale when left as ``None``.
    waterline_bits: Optional[float] = None
    #: Fixed rescale value (bits) used by the rescale passes; defaults to
    #: ``max_rescale_bits`` (the paper's second key insight).
    rescale_bits: Optional[float] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    def effective_rescale_bits(self) -> float:
        return self.rescale_bits if self.rescale_bits is not None else self.max_rescale_bits


class RewritePass:
    """Base class for graph transformation passes.

    Subclasses implement :meth:`run`, which may freely restructure the program
    using a :class:`GraphEditor`, and return the number of rewrites applied.
    ``direction`` is informational ("forward" or "backward") and documents the
    schedule the pass uses, matching the paper's description of each rule.
    """

    name: str = "rewrite"
    direction: str = "forward"
    #: When True the pass manager re-runs the pass until it reports no rewrites.
    until_quiescence: bool = False

    def run(self, program: Program, context: PassContext) -> int:
        raise NotImplementedError

    def __call__(self, program: Program, context: PassContext) -> int:
        return self.run(program, context)


class PassManager:
    """Runs an ordered list of passes over a program and records reports."""

    def __init__(self, passes: Iterable[RewritePass]):
        self.passes: List[RewritePass] = list(passes)
        self.reports: List[PassReport] = []

    def run(self, program: Program, context: Optional[PassContext] = None) -> List[PassReport]:
        context = context or PassContext()
        self.reports = []
        for pass_ in self.passes:
            start = time.perf_counter()
            total = 0
            while True:
                rewrites = pass_.run(program, context)
                total += rewrites
                if not pass_.until_quiescence or rewrites == 0:
                    break
            elapsed = time.perf_counter() - start
            self.reports.append(
                PassReport(pass_.name, changed=total > 0, rewrites=total, seconds=elapsed)
            )
        return self.reports


def waterline_of(program: Program) -> float:
    """The waterline ``s_w``: the maximum scale among all inputs and constants."""
    scales = [
        float(t.scale)
        for t in program.terms()
        if t.is_root and t.scale is not None
    ]
    return max(scales) if scales else 0.0
