"""Kernel-boundary level alignment (CHET baseline modelling).

CHET relies on an expert-written library of homomorphic tensor kernels.  Each
kernel manages rescaling and level alignment locally: to stay composable with
any downstream kernel, a kernel that consumed scale (performed a
ciphertext-ciphertext multiplication) conservatively drops its outputs one
additional level before handing them to the next kernel.  Globally this wastes
coefficient-modulus budget — which is precisely the inefficiency EVA's
whole-program analysis removes (Section 8.2, Table 6).

This pass reproduces that behaviour for the ``chet`` compiler policy: for
every kernel group containing at least one ciphertext-ciphertext MULTIPLY, a
MOD_SWITCH is inserted on each edge leaving the group.  Programs without
kernel labels (hand-written PyEVA programs) are unaffected.
"""

from __future__ import annotations

from typing import Set

from ..ir import GraphEditor, Program, Term
from ..types import Op, ValueType
from .framework import PassContext, RewritePass


class ChetKernelAlignmentPass(RewritePass):
    """Insert a conservative MOD_SWITCH at the exit of multiplying kernels."""

    name = "chet-kernel-alignment"
    direction = "forward"

    def run(self, program: Program, context: PassContext) -> int:
        editor = GraphEditor(program)
        kernels_with_cipher_multiply: Set[str] = set()
        for term in program.terms():
            if (
                term.op is Op.MULTIPLY
                and term.kernel is not None
                and all(a.value_type is ValueType.CIPHER for a in term.args)
            ):
                kernels_with_cipher_multiply.add(term.kernel)
        if not kernels_with_cipher_multiply:
            return 0

        rewrites = 0
        for term in program.terms():
            kernel = term.kernel
            if (
                kernel is None
                or kernel not in kernels_with_cipher_multiply
                or term.value_type is not ValueType.CIPHER
                or not term.is_instruction
            ):
                continue
            leaving = [
                consumer
                for consumer in editor.consumers(term)
                if consumer.kernel != kernel and consumer.op is not Op.MOD_SWITCH
            ]
            is_output = any(out is term for out in program.outputs.values())
            if not leaving and not is_output:
                continue
            switch = Term(Op.MOD_SWITCH, [term], ValueType.CIPHER, kernel=kernel)
            editor.insert_after(term, switch, only_consumers=leaving)
            editor.uses.setdefault(term.id, []).append(switch)
            if is_output:
                for name, out in program.outputs.items():
                    if out is term:
                        program.outputs[name] = switch
            rewrites += 1
        return rewrites
