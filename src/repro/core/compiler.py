"""The EVA compiler driver (Algorithm 1 of the paper).

Compilation takes an input program (frontend opcodes only), the scales of its
inputs, and the desired scales of its outputs, and produces:

* an executable program with RESCALE / MOD_SWITCH / RELINEARIZE inserted and
  all scales matched (the ``Transform`` step),
* a proof that the program satisfies Constraints 1-4 (the ``Validate`` step —
  a :class:`~repro.errors.ValidationError` is raised otherwise),
* the vector of coefficient-modulus bit sizes and the polynomial modulus
  degree (the ``DetermineParameters`` step), and
* the set of rotation steps requiring Galois keys (``DetermineRotationSteps``).

Two policy profiles are provided.  ``"eva"`` is the paper's policy
(WATERLINE-RESCALE with the maximum rescale value, EAGER-MODSWITCH,
MATCH-SCALE); ``"chet"`` is the baseline policy modelling CHET's expert
kernels (ALWAYS-RESCALE after every multiplication, LAZY-MODSWITCH), used by
the benchmark harness to reproduce the CHET-vs-EVA comparisons of Section 8.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, List, Optional

from ..errors import CompilationError
from .analysis import select_parameters, select_rotation_steps, validate
from .analysis.parameters import EncryptionParameters
from .ir import Program
from .rewrite import (
    BsgsRotationPass,
    ChetKernelAlignmentPass,
    CommonSubexpressionEliminationPass,
    ConstantFoldingPass,
    DeadCodeEliminationPass,
    EagerModSwitchPass,
    ExpandSumPass,
    LaneLoweringPass,
    LazyModSwitchPass,
    MatchScalePass,
    PassManager,
    RelinearizePass,
    RemoveCopyPass,
    RotationHoistingPass,
    WaterlineRescalePass,
)
from .rewrite.framework import PassContext, PassReport, waterline_of
from .types import DEFAULT_MAX_RESCALE_BITS, DEFAULT_SECURITY_LEVEL


@dataclass
class CompilerOptions:
    """Knobs of the EVA compiler.

    Attributes
    ----------
    policy:
        ``"eva"`` (paper policy) or ``"chet"`` (baseline policy).
    max_rescale_bits:
        ``log2 s_f`` — both the largest rescale value and the largest prime
        bit size (60 in SEAL).
    rescale_bits:
        Fixed rescale value used by WATERLINE-RESCALE; defaults to
        ``max_rescale_bits``.
    security_level:
        Security level in bits for parameter selection (128 by default).
    lower_sum / remove_copies / cleanup:
        Enable the lowering and cleanup passes.
    lane_width:
        When set, run :class:`~repro.core.rewrite.LaneLoweringPass` at this
        power-of-two lane width: every rotation (and expanded SUM) is
        rewritten into its lane-local masked form, making the compiled
        program provably slot-batchable at ``vec_size // lane_width``
        requests per ciphertext.  Must divide the program's vector size.
    hoist_rotations:
        Run :class:`~repro.core.rewrite.RotationHoistingPass`: same-step
        rotations summed together (stencil taps, the shared wrap branch of
        lane lowering) are factored through one hoisted rotation.  On by
        default; disable to reproduce the PR 7 lane-lowered baseline.
    bsgs_rotations:
        Baby-step/giant-step rotation-key decomposition mode: ``"auto"``
        (default — decompose when the cost model says the key savings beat
        the extra rotations), ``"always"`` (fewest keys), or ``"off"``.
    """

    policy: str = "eva"
    max_rescale_bits: float = DEFAULT_MAX_RESCALE_BITS
    rescale_bits: Optional[float] = None
    waterline_bits: Optional[float] = None
    security_level: int = DEFAULT_SECURITY_LEVEL
    lower_sum: bool = True
    remove_copies: bool = True
    cleanup: bool = True
    lane_width: Optional[int] = None
    hoist_rotations: bool = True
    bsgs_rotations: str = "auto"

    def __post_init__(self) -> None:
        if self.policy not in ("eva", "chet"):
            raise CompilationError(f"unknown compiler policy {self.policy!r}")
        if self.bsgs_rotations not in ("auto", "always", "off"):
            raise CompilationError(
                f"bsgs_rotations must be 'auto', 'always' or 'off', "
                f"got {self.bsgs_rotations!r}"
            )
        if self.lane_width is not None:
            from .types import is_power_of_two

            width = int(self.lane_width)
            if width < 1 or not is_power_of_two(width):
                raise CompilationError(
                    f"lane width must be a positive power of two, got {self.lane_width!r}"
                )
            self.lane_width = width

    def to_dict(self) -> Dict[str, Any]:
        """All option fields as a JSON-able dict (signature and artifact use)."""
        data = asdict(self)
        # Back-compat: an unset lane width serializes to the pre-lane layout,
        # so signatures of (and artifacts for) programs compiled without lane
        # lowering are unchanged by the option's existence.
        if data.get("lane_width") is None:
            data.pop("lane_width", None)
        # Same for the rotation optimizations: at their defaults they drop out
        # of the serialized form, so pre-existing signatures stay stable.
        if data.get("hoist_rotations") is True:
            data.pop("hoist_rotations", None)
        if data.get("bsgs_rotations") == "auto":
            data.pop("bsgs_rotations", None)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CompilerOptions":
        """Inverse of :meth:`to_dict`; unknown keys are rejected, missing ones default."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise CompilationError(f"unknown compiler options: {sorted(unknown)}")
        return cls(**data)


@dataclass
class CompilationResult:
    """Everything the executor needs to run a compiled program."""

    program: Program
    parameters: EncryptionParameters
    rotation_steps: List[int]
    options: CompilerOptions
    input_scales: Dict[str, float]
    output_scales: Dict[str, float]
    pass_reports: List[PassReport] = field(default_factory=list)
    compile_seconds: float = 0.0
    #: Content hash of the *source* (pre-transform) program plus the options
    #: and scale overrides it was compiled with — the same value
    #: :func:`program_signature` yields for those arguments, so every party
    #: that compiled the same source agrees on it.  ``None`` only for results
    #: assembled by hand (e.g. reloaded from an already-compiled graph).
    signature: Optional[str] = None

    @property
    def poly_modulus_degree(self) -> int:
        return self.parameters.poly_modulus_degree

    @property
    def coeff_modulus_bits(self) -> List[int]:
        return self.parameters.coeff_modulus_bits

    # -- batchability metadata ---------------------------------------------------
    @property
    def lane_width(self) -> Optional[int]:
        """The compiler-enforced lane width, or None when not lane-lowered.

        A non-None value is a *guarantee*: every instruction of the compiled
        program stays inside lanes of this width, so the serving layer may
        pack one independent request per lane without inspecting opcodes.
        """
        return self.options.lane_width

    @property
    def lane_capacity(self) -> int:
        """Requests one ciphertext carries under the compiled lane width (>= 1)."""
        width = self.options.lane_width
        if not width or width >= self.program.vec_size:
            return 1
        return self.program.vec_size // width

    def summary(self) -> Dict[str, object]:
        """Compact description used in logs and benchmark tables."""
        return {
            "policy": self.options.policy,
            "terms": len(self.program),
            "log_n": self.parameters.summary()["log_n"],
            "log_q": self.parameters.summary()["log_q"],
            "r": self.parameters.summary()["r"],
            "rotations": len(self.rotation_steps),
            "lane_width": self.lane_width,
            "compile_seconds": self.compile_seconds,
        }


def program_signature(
    program: Program,
    options: Optional[CompilerOptions] = None,
    input_scales: Optional[Dict[str, float]] = None,
    output_scales: Optional[Dict[str, float]] = None,
) -> str:
    """Stable content hash of a (program, compilation policy) pair.

    Two programs with identical graphs, compiler options, and scale overrides
    produce the same signature even across processes, so the signature can key
    a compilation cache (see :class:`repro.serving.ProgramRegistry`).  The
    program name is deliberately excluded: renaming a program does not change
    what the compiler produces.
    """
    from .serialization.json_format import program_to_dict

    payload = program_to_dict(program)
    payload.pop("name", None)
    options = options or CompilerOptions()
    payload["options"] = options.to_dict()
    payload["input_scales"] = {
        k: float(v) for k, v in sorted((input_scales or {}).items())
    }
    payload["output_scales"] = {
        k: float(v) for k, v in sorted((output_scales or {}).items())
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class EvaCompiler:
    """Compile EVA input programs into executable EVA programs."""

    def __init__(self, options: Optional[CompilerOptions] = None) -> None:
        self.options = options or CompilerOptions()

    def _build_passes(self) -> List:
        options = self.options
        passes: List = []
        if options.remove_copies:
            passes.append(RemoveCopyPass())
        if options.lower_sum:
            passes.append(ExpandSumPass())
        if options.lane_width is not None:
            # After SUM expansion so the reduction tree's rotations are lane-
            # lowered too, before cleanup so CSE deduplicates the masked pairs.
            passes.append(
                LaneLoweringPass(options.lane_width, hoisted=options.hoist_rotations)
            )
        if options.hoist_rotations:
            # After lane lowering (its shared wrap rotations are the main
            # hoisting target), before cleanup so CSE/DCE tidy the rebuilt
            # trees and collect the originals.
            passes.append(RotationHoistingPass())
        if options.cleanup:
            passes.append(ConstantFoldingPass())
            passes.append(CommonSubexpressionEliminationPass())
            passes.append(DeadCodeEliminationPass())
        if options.bsgs_rotations != "off":
            # After CSE so the giant cache sees one rotation term per
            # (source, step); before scale management — chained rotations are
            # scale- and level-transparent.
            passes.append(BsgsRotationPass(mode=options.bsgs_rotations))
        if options.policy == "eva":
            passes.append(WaterlineRescalePass())
            passes.append(EagerModSwitchPass())
        else:
            # The CHET baseline: per-multiply rescaling (waterline-sized
            # rescale value, set by the driver), conservative per-kernel level
            # alignment, and lazy modulus switching.
            passes.append(WaterlineRescalePass())
            passes.append(ChetKernelAlignmentPass())
            passes.append(LazyModSwitchPass())
        passes.append(MatchScalePass())
        passes.append(RelinearizePass())
        return passes

    def compile(
        self,
        program: Program,
        input_scales: Optional[Dict[str, float]] = None,
        output_scales: Optional[Dict[str, float]] = None,
    ) -> CompilationResult:
        """Run Algorithm 1 on ``program`` and return the compilation result.

        ``input_scales`` overrides the scales declared on input terms;
        ``output_scales`` provides the desired scales of the outputs (missing
        entries default to the program's recorded ``output_scales``, then 0).
        """
        start = time.perf_counter()
        program.check_structure(frontend_only=True)
        if self.options.lane_width is not None:
            from .types import Op

            width = self.options.lane_width
            if width > program.vec_size:
                raise CompilationError(
                    f"lane width {width} exceeds the vector size {program.vec_size}"
                )
            if not self.options.lower_sum and width < program.vec_size and any(
                term.op is Op.SUM for term in program.terms()
            ):
                raise CompilationError(
                    "lane lowering needs SUM expanded into rotations; compile "
                    "with lower_sum=True"
                )
        signature = program_signature(program, self.options, input_scales, output_scales)

        working = program.clone()
        if input_scales:
            for name, bits in input_scales.items():
                if name not in working.inputs:
                    raise CompilationError(f"unknown input {name!r} in input_scales")
                working.inputs[name].scale = float(bits)
        resolved_outputs = dict(working.output_scales)
        if output_scales:
            resolved_outputs.update({k: float(v) for k, v in output_scales.items()})
        for name in working.outputs:
            resolved_outputs.setdefault(name, 0.0)
        unknown = set(resolved_outputs) - set(working.outputs)
        if unknown:
            raise CompilationError(f"unknown outputs in output_scales: {sorted(unknown)}")
        working.output_scales = resolved_outputs

        waterline = (
            self.options.waterline_bits
            if self.options.waterline_bits is not None
            else waterline_of(working)
        )
        rescale_bits = self.options.rescale_bits
        if rescale_bits is None and self.options.policy == "chet":
            # The CHET baseline rescales by (roughly) the input scale after
            # every multiplicative level, the way expert-written kernels do,
            # instead of EVA's maximal 2^60 rescales.  Using the waterline as
            # the fixed rescale value keeps every chain entry identical so the
            # per-kernel policy still produces conforming chains.
            rescale_bits = max(waterline, 1.0)
        context = PassContext(
            max_rescale_bits=self.options.max_rescale_bits,
            waterline_bits=waterline,
            rescale_bits=rescale_bits,
        )
        manager = PassManager(self._build_passes())
        reports = manager.run(working, context)

        validate(working, max_rescale_bits=self.options.max_rescale_bits)

        rotation_steps = select_rotation_steps(working)
        parameters = select_parameters(
            working,
            desired_output_scales=resolved_outputs,
            max_rescale_bits=self.options.max_rescale_bits,
            security_level=self.options.security_level,
            rotation_steps=rotation_steps,
        )
        elapsed = time.perf_counter() - start
        return CompilationResult(
            program=working,
            parameters=parameters,
            rotation_steps=rotation_steps,
            options=self.options,
            input_scales={
                name: float(term.scale or 0.0) for name, term in working.inputs.items()
            },
            output_scales=resolved_outputs,
            pass_reports=reports,
            compile_seconds=elapsed,
            signature=signature,
        )


def compile_program(
    program: Program,
    input_scales: Optional[Dict[str, float]] = None,
    output_scales: Optional[Dict[str, float]] = None,
    options: Optional[CompilerOptions] = None,
) -> CompilationResult:
    """Convenience wrapper: compile ``program`` with the given options."""
    return EvaCompiler(options).compile(program, input_scales, output_scales)
