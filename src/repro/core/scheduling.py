"""Parallel-execution simulation for latency and strong-scaling studies.

The paper evaluates latency on a 56-core machine where EVA's executor
schedules the whole instruction DAG asynchronously while CHET parallelizes
only inside each tensor kernel with a bulk-synchronous (OpenMP) schedule.
This module reproduces that comparison analytically: it assigns every
instruction a latency from the :class:`~repro.backend.cost_model.CostModel`
(a function of the polynomial degree and the operand's remaining modulus
length) and list-schedules the DAG onto ``p`` workers.

Two scheduling disciplines are provided:

* ``"dag"`` — EVA's discipline: any ready instruction may run on any free
  worker.
* ``"kernel"`` — CHET's discipline: instructions are grouped by the
  ``kernel`` attribute their frontend attached; groups execute one after
  another with a barrier in between, and only instructions of the current
  group may run concurrently.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List

from ..backend.cost_model import CostModel, DEFAULT_COST_MODEL
from .analysis.levels import compute_levels
from .compiler import CompilationResult
from .ir import Program, Term
from .types import ValueType


@dataclass
class ScheduleResult:
    """Outcome of a simulated schedule."""

    makespan_seconds: float
    total_work_seconds: float
    critical_path_seconds: float
    threads: int
    discipline: str

    @property
    def parallel_efficiency(self) -> float:
        """Work / (makespan * threads); 1.0 means perfect scaling."""
        if self.makespan_seconds <= 0:
            return 1.0
        return self.total_work_seconds / (self.makespan_seconds * self.threads)


def term_costs(
    compilation: CompilationResult, cost_model: CostModel = DEFAULT_COST_MODEL
) -> Dict[int, float]:
    """Latency of every ciphertext instruction in the compiled program."""
    program = compilation.program
    levels = compute_levels(program)
    total_primes = len(compilation.parameters.coeff_modulus_bits) - 1
    poly_degree = compilation.parameters.poly_modulus_degree
    costs: Dict[int, float] = {}
    for term in program.terms():
        if not term.is_instruction or term.value_type is not ValueType.CIPHER:
            continue
        cipher_operands = sum(
            1 for a in term.args if a.value_type is ValueType.CIPHER
        )
        kind = cost_model.term_kind(term.op, cipher_operands)
        operand_level = max(
            (levels[a.id] for a in term.args if a.value_type is ValueType.CIPHER),
            default=levels[term.id],
        )
        remaining = max(total_primes - operand_level, 1)
        costs[term.id] = cost_model.op_seconds(kind, poly_degree, remaining)
    return costs


def _kernel_groups(program: Program) -> List[List[Term]]:
    """Group instructions by their kernel label, in first-appearance order."""
    groups: Dict[str, List[Term]] = {}
    order: List[str] = []
    counter = 0
    for term in program.terms():
        if not term.is_instruction:
            continue
        label = term.kernel
        if label is None:
            label = f"__anon_{counter}"
            counter += 1
        if label not in groups:
            groups[label] = []
            order.append(label)
        groups[label].append(term)
    return [groups[label] for label in order]


def _list_schedule(
    terms: List[Term],
    costs: Dict[int, float],
    threads: int,
    ready_floor: Dict[int, float],
    start_floor: float = 0.0,
) -> Dict[int, float]:
    """Greedy list scheduling of ``terms`` onto ``threads`` workers.

    ``ready_floor`` holds the finish times of terms scheduled in earlier
    groups (and is updated with the finish times of this group).  Returns the
    finish time of every scheduled term.
    """
    indegree: Dict[int, int] = {}
    consumers: Dict[int, List[Term]] = {}
    term_ids = {t.id for t in terms}
    for term in terms:
        deps = [a for a in term.args if a.id in term_ids]
        indegree[term.id] = len(deps)
        for dep in deps:
            consumers.setdefault(dep.id, []).append(term)

    def ready_time(term: Term) -> float:
        times = [ready_floor.get(a.id, 0.0) for a in term.args]
        return max(times) if times else 0.0

    # Priority queue of (ready_time, sequence, term) for ready instructions.
    heap: List = []
    seq = 0
    for term in terms:
        if indegree[term.id] == 0:
            heapq.heappush(heap, (ready_time(term), seq, term))
            seq += 1

    workers = [0.0] * max(threads, 1)
    finish: Dict[int, float] = {}
    while heap:
        ready_at, _, term = heapq.heappop(heap)
        worker = min(range(len(workers)), key=lambda i: workers[i])
        start = max(workers[worker], ready_at, start_floor)
        end = start + costs.get(term.id, 0.0)
        workers[worker] = end
        finish[term.id] = end
        ready_floor[term.id] = end
        for consumer in consumers.get(term.id, ()):  # newly ready instructions
            indegree[consumer.id] -= 1
            if indegree[consumer.id] == 0:
                heapq.heappush(heap, (ready_time(consumer), seq, consumer))
                seq += 1
    return finish


def simulate_schedule(
    compilation: CompilationResult,
    threads: int = 1,
    discipline: str = "dag",
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> ScheduleResult:
    """Simulate executing the compiled program on ``threads`` workers."""
    if discipline not in ("dag", "kernel"):
        raise ValueError(f"unknown scheduling discipline {discipline!r}")
    program = compilation.program
    costs = term_costs(compilation, cost_model)
    instructions = [
        t
        for t in program.terms()
        if t.is_instruction and t.value_type is ValueType.CIPHER
    ]
    total_work = sum(costs.get(t.id, 0.0) for t in instructions)

    # Critical path (infinite workers).
    finish_inf: Dict[int, float] = {}
    for term in program.terms():
        if term.id not in costs:
            finish_inf[term.id] = max(
                (finish_inf.get(a.id, 0.0) for a in term.args), default=0.0
            )
            continue
        start = max((finish_inf.get(a.id, 0.0) for a in term.args), default=0.0)
        finish_inf[term.id] = start + costs[term.id]
    critical_path = max(finish_inf.values(), default=0.0)

    ready_floor: Dict[int, float] = {}
    if discipline == "dag":
        finish = _list_schedule(instructions, costs, threads, ready_floor)
        makespan = max(finish.values(), default=0.0)
    else:
        makespan = 0.0
        barrier = 0.0
        for group in _kernel_groups(program):
            group = [t for t in group if t.value_type is ValueType.CIPHER]
            if not group:
                continue
            floor = {tid: barrier for tid in ready_floor}
            finish = _list_schedule(group, costs, threads, floor, start_floor=barrier)
            group_end = max(finish.values(), default=barrier)
            for tid, value in finish.items():
                ready_floor[tid] = value
            barrier = max(barrier, group_end)
            for tid in ready_floor:
                ready_floor[tid] = max(ready_floor[tid], 0.0)
            makespan = barrier
    return ScheduleResult(
        makespan_seconds=makespan,
        total_work_seconds=total_work,
        critical_path_seconds=critical_path,
        threads=threads,
        discipline=discipline,
    )
