"""JSON text format for EVA programs.

The binary proto format (:mod:`repro.core.serialization.proto`) is the
interchange format of the paper; the JSON format is a human-readable
companion that additionally preserves implementation-side metadata such as
kernel labels.  Both round-trip through the same in-memory graph.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

import numpy as np

from ...errors import SerializationError
from ..ir import Program, Term
from ..types import Op, ValueType


def program_to_dict(program: Program) -> Dict[str, Any]:
    """Convert a program into a JSON-serializable dictionary."""
    ids: Dict[int, int] = {}
    nodes: List[Dict[str, Any]] = []
    for index, term in enumerate(program.terms()):
        ids[term.id] = index
        node: Dict[str, Any] = {
            "id": index,
            "op": term.op.name,
            "type": term.value_type.name,
            "args": [ids[a.id] for a in term.args],
        }
        if term.is_input:
            node["name"] = term.name
            node["scale"] = float(term.scale or 0.0)
        elif term.is_constant:
            value = np.atleast_1d(np.asarray(term.value, dtype=np.float64)).ravel()
            node["value"] = [float(v) for v in value]
            node["scale"] = float(term.scale or 0.0)
            if term.attributes.get("lane_mask"):
                node["lane_mask"] = True
        if term.op.is_rotation:
            node["rotation"] = term.rotation
        if term.op is Op.RESCALE:
            node["rescale_value"] = term.rescale_value
        if term.kernel is not None:
            node["kernel"] = term.kernel
        nodes.append(node)
    return {
        "name": program.name,
        "vec_size": program.vec_size,
        "nodes": nodes,
        "outputs": [
            {
                "name": name,
                "id": ids[term.id],
                "scale": float(program.output_scales.get(name, 0.0)),
            }
            for name, term in program.outputs.items()
        ],
    }


def dict_to_program(data: Dict[str, Any]) -> Program:
    """Reconstruct a program from its dictionary form."""
    try:
        program = Program(data.get("name", "program"), vec_size=int(data["vec_size"]))
        terms: Dict[int, Term] = {}
        for node in data["nodes"]:
            op = Op[node["op"]]
            value_type = ValueType[node["type"]]
            if op is Op.INPUT:
                term = program.input(node["name"], value_type, scale=node.get("scale", 0.0))
            elif op is Op.CONSTANT:
                raw = node.get("value", [0.0])
                value = raw[0] if value_type is ValueType.SCALAR and len(raw) == 1 else np.asarray(raw)
                term = program.constant(value, scale=node.get("scale", 0.0), value_type=value_type)
                if node.get("lane_mask"):
                    term.attributes["lane_mask"] = True
            else:
                args = [terms[i] for i in node["args"]]
                attrs: Dict[str, Any] = {}
                if "rotation" in node:
                    attrs["rotation"] = int(node["rotation"])
                if "rescale_value" in node:
                    attrs["rescale_value"] = float(node["rescale_value"])
                if "kernel" in node:
                    attrs["kernel"] = node["kernel"]
                term = program.make_term(op, args, **attrs)
            terms[node["id"]] = term
        for out in data["outputs"]:
            program.set_output(out["name"], terms[out["id"]], scale=out.get("scale", 0.0))
        return program
    except (KeyError, ValueError, TypeError) as exc:
        raise SerializationError(f"malformed program dictionary: {exc}") from exc


def dumps(program: Program, indent: int = None) -> str:
    """Serialize a program to a JSON string."""
    return json.dumps(program_to_dict(program), indent=indent)


def loads(text: str) -> Program:
    """Deserialize a program from a JSON string."""
    return dict_to_program(json.loads(text))
