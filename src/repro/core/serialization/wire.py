"""Minimal Protocol Buffers (proto3) wire-format primitives.

The EVA language has a serialized format defined with Protocol Buffers
(Figure 1 of the paper).  To avoid an external dependency this module
implements the subset of the proto3 wire format the schema needs: varints,
64-bit doubles, length-delimited fields (strings, sub-messages, packed
repeated doubles), and tag encoding/decoding with skipping of unknown fields.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Tuple

from ...errors import SerializationError

#: Proto3 wire types.
WIRETYPE_VARINT = 0
WIRETYPE_FIXED64 = 1
WIRETYPE_LENGTH_DELIMITED = 2
WIRETYPE_FIXED32 = 5


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as a base-128 varint."""
    if value < 0:
        raise SerializationError("varints must be non-negative")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int) -> Tuple[int, int]:
    """Decode a varint starting at ``offset``; return (value, next_offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise SerializationError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 70:
            raise SerializationError("varint too long")


def encode_tag(field_number: int, wire_type: int) -> bytes:
    return encode_varint((field_number << 3) | wire_type)


def encode_double_field(field_number: int, value: float) -> bytes:
    return encode_tag(field_number, WIRETYPE_FIXED64) + struct.pack("<d", float(value))


def encode_varint_field(field_number: int, value: int) -> bytes:
    return encode_tag(field_number, WIRETYPE_VARINT) + encode_varint(int(value))


def encode_bytes_field(field_number: int, payload: bytes) -> bytes:
    return (
        encode_tag(field_number, WIRETYPE_LENGTH_DELIMITED)
        + encode_varint(len(payload))
        + payload
    )


def encode_string_field(field_number: int, value: str) -> bytes:
    return encode_bytes_field(field_number, value.encode("utf-8"))


def encode_packed_doubles(field_number: int, values: "List[float]") -> bytes:
    payload = b"".join(struct.pack("<d", float(v)) for v in values)
    return encode_bytes_field(field_number, payload)


def decode_double(data: bytes, offset: int) -> Tuple[float, int]:
    if offset + 8 > len(data):
        raise SerializationError("truncated double")
    (value,) = struct.unpack_from("<d", data, offset)
    return value, offset + 8


def iter_fields(data: bytes) -> Iterator[Tuple[int, int, object]]:
    """Iterate over (field_number, wire_type, raw_value) triples of a message.

    Varint fields yield ints, fixed64 fields yield 8-byte buffers, and
    length-delimited fields yield byte strings.  Unknown wire types raise.
    """
    offset = 0
    while offset < len(data):
        tag, offset = decode_varint(data, offset)
        field_number = tag >> 3
        wire_type = tag & 0x7
        if wire_type == WIRETYPE_VARINT:
            value, offset = decode_varint(data, offset)
            yield field_number, wire_type, value
        elif wire_type == WIRETYPE_FIXED64:
            if offset + 8 > len(data):
                raise SerializationError("truncated fixed64 field")
            yield field_number, wire_type, data[offset : offset + 8]
            offset += 8
        elif wire_type == WIRETYPE_LENGTH_DELIMITED:
            length, offset = decode_varint(data, offset)
            if offset + length > len(data):
                raise SerializationError("truncated length-delimited field")
            yield field_number, wire_type, data[offset : offset + length]
            offset += length
        elif wire_type == WIRETYPE_FIXED32:
            if offset + 4 > len(data):
                raise SerializationError("truncated fixed32 field")
            yield field_number, wire_type, data[offset : offset + 4]
            offset += 4
        else:
            raise SerializationError(f"unsupported wire type {wire_type}")


def unpack_doubles(payload: bytes) -> List[float]:
    if len(payload) % 8 != 0:
        raise SerializationError("packed double payload has invalid length")
    return [v[0] for v in struct.iter_unpack("<d", payload)]


def unpack_double(raw: object) -> float:
    if isinstance(raw, bytes):
        (value,) = struct.unpack("<d", raw)
        return value
    raise SerializationError("expected a fixed64 field")
