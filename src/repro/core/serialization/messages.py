"""JSON wire messages for the serving layer (request/response framing).

The program interchange formats (:mod:`.proto`, :mod:`.json_format`) describe
*programs*; this module describes the *requests and responses* exchanged
between a serving client and server.  Messages are JSON objects transported as
newline-delimited UTF-8 over a byte stream — the same human-readable wire the
JSON program format uses, so a request can be assembled with nothing more
than ``json.dumps`` on the client side.

A request looks like::

    {"op": "submit", "program": "squares", "inputs": {"x": [1.0, 2.0]},
     "client_id": "alice"}

and a response like::

    {"ok": true, "outputs": {"y": [1.0, 4.0]}, "stats": {...}}

Errors travel as ``{"ok": false, "error": "...", "kind": "ServingError"}``.

The encrypted-input path (client-held keys) adds two shapes.  A ``session``
request registers the client's exported evaluation keys::

    {"op": "session", "program": "squares", "client_id": "alice",
     "evaluation_keys": {...}}

and a ``submit`` may then carry a pre-encrypted cipher bundle instead of
plaintext inputs::

    {"op": "submit", "program": "squares", "client_id": "alice",
     "bundle": {"program_signature": "...", "ciphertexts": {...}, ...}}

to which the server replies ``{"ok": true, "encrypted_outputs": {...}}`` —
ciphertexts only the submitting client can decrypt.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

import numpy as np

from ...errors import SerializationError

#: Operations a client may request.  ``route`` (which shard a client
#: consistent-hashes to), ``drain`` (take a shard out of the ring without
#: stopping it), ``rejoin`` (return a shard to the ring, respawning it if
#: dead), and ``join`` (attach an already-running remote shard endpoint to
#: the ring by ``host``/``port``) are answered by cluster routers only;
#: single-process servers reject them with a ServingError reply.  ``health``
#: is answered by both.  The telemetry ops — ``metrics`` (registry snapshot,
#: optionally rendered as Prometheus text), ``trace`` (the recorded spans of
#: one trace id), and ``slow`` (recent slow requests) — are answered by
#: both, with the router aggregating across shards.
REQUEST_OPS = (
    "submit",
    "session",
    "stats",
    "list",
    "ping",
    "route",
    "health",
    "drain",
    "rejoin",
    "join",
    "metrics",
    "trace",
    "slow",
)

#: SLO classes a submit may carry.  ``tight`` requests are never held back
#: to fill a batch, ``relaxed`` ones always linger the full batch window,
#: ``standard`` ones linger only as much as their deadline slack allows.
SLO_CLASSES = ("tight", "standard", "relaxed")

#: Ops that address one shard and therefore require a ``shard`` index.
SHARD_OPS = ("drain", "rejoin")


def validate_shard(op: str, shard: Any) -> int:
    """The validated shard index of a shard-addressed op (router + decoder)."""
    if not isinstance(shard, int) or isinstance(shard, bool) or shard < 0:
        raise SerializationError(
            f"{op} requests need a non-negative integer 'shard', got {shard!r}"
        )
    return shard


def encode_values(values: Dict[str, Any]) -> Dict[str, list]:
    """Convert a name -> vector mapping into plain JSON-serializable lists."""
    encoded = {}
    for name, value in values.items():
        array = np.atleast_1d(np.asarray(value, dtype=np.float64)).ravel()
        encoded[str(name)] = [float(v) for v in array]
    return encoded


def decode_values(values: Dict[str, Any]) -> Dict[str, np.ndarray]:
    """Inverse of :func:`encode_values`.

    Accepts plain lists (the JSON wire) and packed-array records (the binary
    wire ships value vectors as blobs — base64 or raw form, both handled by
    :func:`~repro.core.serialization.packing.unpack_values`).
    """
    from .packing import unpack_values

    if not isinstance(values, dict):
        raise SerializationError("'inputs' must be an object mapping names to values")
    decoded = {}
    for name, value in values.items():
        try:
            if isinstance(value, dict):
                decoded[str(name)] = unpack_values(value)
            else:
                decoded[str(name)] = np.atleast_1d(
                    np.asarray(value, dtype=np.float64)
                ).ravel()
        except (TypeError, ValueError) as exc:
            raise SerializationError(f"input {name!r} is not numeric: {exc}") from exc
    return decoded


def build_request(
    op: str,
    program: Optional[str] = None,
    inputs: Optional[Dict[str, Any]] = None,
    client_id: str = "default",
    output_size: Optional[int] = None,
    bundle: Optional[Dict[str, Any]] = None,
    evaluation_keys: Optional[Dict[str, Any]] = None,
    shard: Optional[int] = None,
    trace_id: Optional[str] = None,
    trace: bool = False,
    fmt: Optional[str] = None,
    limit: Optional[int] = None,
    pack_inputs: bool = False,
    deadline_ms: Optional[float] = None,
    slo_class: Optional[str] = None,
    host: Optional[str] = None,
    port: Optional[int] = None,
) -> Dict[str, Any]:
    """Build one client request as a message dict (framing-agnostic).

    ``bundle`` (a wire-encoded cipher bundle) replaces ``inputs`` on the
    encrypted path; ``evaluation_keys`` accompanies a ``session`` request;
    ``shard`` addresses the cluster admin ops (``drain`` / ``rejoin``);
    ``host``/``port`` name the remote endpoint of a ``join`` op.

    ``trace_id`` propagates a distributed-trace id (a ``trace`` op *queries*
    one); ``trace=True`` additionally asks the server to echo the recorded
    spans in the reply.  ``fmt`` selects the exposition format of a
    ``metrics`` op (``"prometheus"``); ``limit`` caps a ``slow`` op's rows.
    ``pack_inputs`` encodes input vectors as packed arrays instead of float
    lists — the binary framing ships them as blob records.

    ``deadline_ms`` / ``slo_class`` annotate a submit with its latency SLO:
    the engine rejects requests whose modeled wait already exceeds the
    deadline (:class:`~repro.errors.DeadlineInfeasibleError` on the wire)
    and decides batch-vs-solo per request against it.
    """
    if op not in REQUEST_OPS:
        raise SerializationError(f"unknown request op {op!r}")
    if inputs is not None and bundle is not None:
        raise SerializationError("a request carries either inputs or a bundle, not both")
    if op in SHARD_OPS and shard is None:
        raise SerializationError(f"{op} requests need a 'shard' index")
    if op == "join" and (host is None or port is None):
        raise SerializationError("join requests need a 'host' and a 'port'")
    if op == "trace" and not trace_id:
        raise SerializationError("trace requests need a 'trace_id'")
    if slo_class is not None and slo_class not in SLO_CLASSES:
        raise SerializationError(
            f"unknown slo_class {slo_class!r}; expected one of {SLO_CLASSES}"
        )
    if deadline_ms is not None and float(deadline_ms) <= 0:
        raise SerializationError("'deadline_ms' must be a positive number")
    message: Dict[str, Any] = {"op": op}
    if program is not None:
        message["program"] = program
    if inputs is not None:
        if pack_inputs:
            from .packing import pack_values

            message["inputs"] = {
                str(name): pack_values(value) for name, value in inputs.items()
            }
        else:
            message["inputs"] = encode_values(inputs)
    if bundle is not None:
        message["bundle"] = bundle
    if evaluation_keys is not None:
        message["evaluation_keys"] = evaluation_keys
    if client_id != "default":
        message["client_id"] = client_id
    if output_size is not None:
        message["output_size"] = int(output_size)
    if shard is not None:
        message["shard"] = int(shard)
    if trace_id is not None:
        message["trace_id"] = str(trace_id)
    if trace:
        message["trace"] = True
    if fmt is not None:
        message["format"] = str(fmt)
    if limit is not None:
        message["limit"] = int(limit)
    if deadline_ms is not None:
        message["deadline_ms"] = float(deadline_ms)
    if slo_class is not None:
        message["slo_class"] = str(slo_class)
    if host is not None:
        message["host"] = str(host)
    if port is not None:
        message["port"] = int(port)
    return message


def encode_request(op: str, **fields: Any) -> str:
    """Build one JSON wire line for a client request (see :func:`build_request`)."""
    return json.dumps(build_request(op, **fields), separators=(",", ":")) + "\n"


def decode_request(line: str) -> Dict[str, Any]:
    """Parse and validate one JSON request line."""
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"malformed request JSON: {exc}") from exc
    return validate_request(message)


def validate_request(message: Any) -> Dict[str, Any]:
    """Validate one parsed request message (shared by both wire framings)."""
    if not isinstance(message, dict):
        raise SerializationError("request must be a JSON object")
    op = message.get("op")
    if op not in REQUEST_OPS:
        raise SerializationError(f"unknown request op {op!r}")
    if op == "submit":
        if not isinstance(message.get("program"), str):
            raise SerializationError("submit requests need a 'program' name")
        if "bundle" in message:
            if "inputs" in message:
                raise SerializationError(
                    "a submit carries either 'inputs' or a 'bundle', not both"
                )
            if not isinstance(message["bundle"], dict):
                raise SerializationError("'bundle' must be a JSON object")
        else:
            message["inputs"] = decode_values(message.get("inputs", {}))
        output_size = message.get("output_size")
        if output_size is not None:
            if not isinstance(output_size, int) or isinstance(output_size, bool) or output_size < 1:
                raise SerializationError(
                    f"'output_size' must be a positive integer, got {output_size!r}"
                )
        deadline_ms = message.get("deadline_ms")
        if deadline_ms is not None:
            if (
                not isinstance(deadline_ms, (int, float))
                or isinstance(deadline_ms, bool)
                or deadline_ms <= 0
            ):
                raise SerializationError(
                    f"'deadline_ms' must be a positive number, got {deadline_ms!r}"
                )
        slo_class = message.get("slo_class")
        if slo_class is not None and slo_class not in SLO_CLASSES:
            raise SerializationError(
                f"unknown slo_class {slo_class!r}; expected one of {SLO_CLASSES}"
            )
    if op == "join":
        if not isinstance(message.get("host"), str) or not message["host"]:
            raise SerializationError("join requests need a non-empty string 'host'")
        port = message.get("port")
        if not isinstance(port, int) or isinstance(port, bool) or not 0 < port < 65536:
            raise SerializationError(
                f"join requests need a TCP 'port' (1-65535), got {port!r}"
            )
    if op == "session":
        if not isinstance(message.get("program"), str):
            raise SerializationError("session requests need a 'program' name")
        if not isinstance(message.get("evaluation_keys"), dict):
            raise SerializationError(
                "session requests need an 'evaluation_keys' object"
            )
    if op in SHARD_OPS:
        validate_shard(op, message.get("shard"))
    if op == "trace" and not isinstance(message.get("trace_id"), str):
        raise SerializationError("trace requests need a string 'trace_id'")
    trace_id = message.get("trace_id")
    if trace_id is not None and not isinstance(trace_id, str):
        raise SerializationError("'trace_id' must be a string")
    message.setdefault("client_id", "default")
    return message


def build_response(
    outputs: Optional[Dict[str, Any]] = None,
    stats: Optional[Dict[str, Any]] = None,
    payload: Optional[Dict[str, Any]] = None,
    pack_outputs: bool = False,
) -> Dict[str, Any]:
    """Build one successful response as a message dict (framing-agnostic).

    ``pack_outputs`` encodes output vectors as packed arrays — the binary
    framing lifts them into blob records instead of JSON float lists.
    """
    message: Dict[str, Any] = {"ok": True}
    if outputs is not None:
        if pack_outputs:
            from .packing import pack_values

            message["outputs"] = {
                str(name): pack_values(value) for name, value in outputs.items()
            }
        else:
            message["outputs"] = encode_values(outputs)
    if stats is not None:
        message["stats"] = stats
    if payload is not None:
        message.update(payload)
    return message


def encode_response(
    outputs: Optional[Dict[str, Any]] = None,
    stats: Optional[Dict[str, Any]] = None,
    payload: Optional[Dict[str, Any]] = None,
) -> str:
    """Build one JSON wire line for a successful response."""
    return (
        json.dumps(build_response(outputs, stats, payload), separators=(",", ":"))
        + "\n"
    )


def build_error(error: BaseException, trace_id: Optional[str] = None) -> Dict[str, Any]:
    """Build one failed-request response as a message dict.

    Quota rejections (anything carrying a ``retry_after`` attribute) include
    it in the reply — the 429 ``Retry-After`` of this wire — so clients can
    back off precisely.  ``trace_id`` echoes the request's trace id so a
    failed request stays correlatable (``cluster trace <id>`` finds the spans
    recorded before the failure).
    """
    message: Dict[str, Any] = {
        "ok": False,
        "error": str(error),
        "kind": type(error).__name__,
    }
    retry_after = getattr(error, "retry_after", None)
    if retry_after is not None:
        message["retry_after"] = round(float(retry_after), 6)
    if trace_id is not None:
        message["trace_id"] = str(trace_id)
    return message


def encode_error(error: BaseException, trace_id: Optional[str] = None) -> str:
    """Build one JSON wire line reporting a failed request."""
    return json.dumps(build_error(error, trace_id), separators=(",", ":")) + "\n"


def splice_field(line: str, key: str, value: Any) -> str:
    """Insert one top-level field into an encoded wire line without reparsing.

    The cluster router forwards request/response lines *verbatim* — it never
    pays a decode/re-encode of a possibly multi-megabyte ciphertext payload.
    This keeps that property for telemetry: injecting a ``trace_id`` into a
    forwarded request (or attaching a ``trace`` object to a reply) is a
    string splice at the closing brace.  The line must be one encoded JSON
    object (as produced by the encode_* functions); behaviour on anything
    else is undefined.
    """
    stripped = line.rstrip("\n")
    end = stripped.rfind("}")
    if end < 0:
        raise SerializationError("cannot splice into a non-object wire line")
    body = stripped[:end].rstrip()
    separator = "" if body.endswith("{") else ","
    encoded = json.dumps({key: value}, separators=(",", ":"))[1:-1]
    return f"{body}{separator}{encoded}}}\n"


def decode_response(line: str) -> Dict[str, Any]:
    """Parse one JSON response line; outputs come back as numpy arrays."""
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"malformed response JSON: {exc}") from exc
    return finish_response(message)


def finish_response(message: Any) -> Dict[str, Any]:
    """Validate one parsed response message; decodes output vectors.

    Shared by both framings: the JSON path parses a line first, the binary
    path hands over a rehydrated frame envelope.
    """
    if not isinstance(message, dict) or "ok" not in message:
        raise SerializationError("response must be a JSON object with an 'ok' field")
    if message["ok"] and "outputs" in message:
        message["outputs"] = decode_values(message["outputs"])
    return message
