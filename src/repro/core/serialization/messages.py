"""JSON wire messages for the serving layer (request/response framing).

The program interchange formats (:mod:`.proto`, :mod:`.json_format`) describe
*programs*; this module describes the *requests and responses* exchanged
between a serving client and server.  Messages are JSON objects transported as
newline-delimited UTF-8 over a byte stream — the same human-readable wire the
JSON program format uses, so a request can be assembled with nothing more
than ``json.dumps`` on the client side.

A request looks like::

    {"op": "submit", "program": "squares", "inputs": {"x": [1.0, 2.0]},
     "client_id": "alice"}

and a response like::

    {"ok": true, "outputs": {"y": [1.0, 4.0]}, "stats": {...}}

Errors travel as ``{"ok": false, "error": "...", "kind": "ServingError"}``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

import numpy as np

from ...errors import SerializationError

#: Operations a client may request.
REQUEST_OPS = ("submit", "stats", "list", "ping")


def encode_values(values: Dict[str, Any]) -> Dict[str, list]:
    """Convert a name -> vector mapping into plain JSON-serializable lists."""
    encoded = {}
    for name, value in values.items():
        array = np.atleast_1d(np.asarray(value, dtype=np.float64)).ravel()
        encoded[str(name)] = [float(v) for v in array]
    return encoded


def decode_values(values: Dict[str, Any]) -> Dict[str, np.ndarray]:
    """Inverse of :func:`encode_values`."""
    if not isinstance(values, dict):
        raise SerializationError("'inputs' must be an object mapping names to values")
    decoded = {}
    for name, value in values.items():
        try:
            decoded[str(name)] = np.atleast_1d(
                np.asarray(value, dtype=np.float64)
            ).ravel()
        except (TypeError, ValueError) as exc:
            raise SerializationError(f"input {name!r} is not numeric: {exc}") from exc
    return decoded


def encode_request(
    op: str,
    program: Optional[str] = None,
    inputs: Optional[Dict[str, Any]] = None,
    client_id: str = "default",
    output_size: Optional[int] = None,
) -> str:
    """Build one wire line for a client request."""
    if op not in REQUEST_OPS:
        raise SerializationError(f"unknown request op {op!r}")
    message: Dict[str, Any] = {"op": op}
    if program is not None:
        message["program"] = program
    if inputs is not None:
        message["inputs"] = encode_values(inputs)
    if client_id != "default":
        message["client_id"] = client_id
    if output_size is not None:
        message["output_size"] = int(output_size)
    return json.dumps(message, separators=(",", ":")) + "\n"


def decode_request(line: str) -> Dict[str, Any]:
    """Parse and validate one request line."""
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"malformed request JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise SerializationError("request must be a JSON object")
    op = message.get("op")
    if op not in REQUEST_OPS:
        raise SerializationError(f"unknown request op {op!r}")
    if op == "submit":
        if not isinstance(message.get("program"), str):
            raise SerializationError("submit requests need a 'program' name")
        message["inputs"] = decode_values(message.get("inputs", {}))
        output_size = message.get("output_size")
        if output_size is not None:
            if not isinstance(output_size, int) or isinstance(output_size, bool) or output_size < 1:
                raise SerializationError(
                    f"'output_size' must be a positive integer, got {output_size!r}"
                )
    message.setdefault("client_id", "default")
    return message


def encode_response(
    outputs: Optional[Dict[str, Any]] = None,
    stats: Optional[Dict[str, Any]] = None,
    payload: Optional[Dict[str, Any]] = None,
) -> str:
    """Build one wire line for a successful response."""
    message: Dict[str, Any] = {"ok": True}
    if outputs is not None:
        message["outputs"] = encode_values(outputs)
    if stats is not None:
        message["stats"] = stats
    if payload is not None:
        message.update(payload)
    return json.dumps(message, separators=(",", ":")) + "\n"


def encode_error(error: BaseException) -> str:
    """Build one wire line reporting a failed request."""
    message = {"ok": False, "error": str(error), "kind": type(error).__name__}
    return json.dumps(message, separators=(",", ":")) + "\n"


def decode_response(line: str) -> Dict[str, Any]:
    """Parse one response line; outputs come back as numpy arrays."""
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"malformed response JSON: {exc}") from exc
    if not isinstance(message, dict) or "ok" not in message:
        raise SerializationError("response must be a JSON object with an 'ok' field")
    if message["ok"] and "outputs" in message:
        message["outputs"] = decode_values(message["outputs"])
    return message
