"""Serialization of EVA programs (binary proto3 wire format and JSON)."""

from __future__ import annotations

from pathlib import Path
from typing import Union

from ...errors import SerializationError
from ..ir import Program
from . import json_format, messages, packing, proto
from .proto import deserialize, serialize

__all__ = [
    "serialize",
    "deserialize",
    "save",
    "load",
    "proto",
    "json_format",
    "messages",
    "packing",
]


def save(program: Program, path: Union[str, Path]) -> None:
    """Save a program to disk; the format is chosen by file extension.

    ``.json`` files use the JSON text format; anything else uses the binary
    proto3 wire format of Figure 1.
    """
    path = Path(path)
    if path.suffix == ".json":
        path.write_text(json_format.dumps(program, indent=2))
    else:
        path.write_bytes(serialize(program))


def load(path: Union[str, Path]) -> Program:
    """Load a program saved with :func:`save`."""
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"no such program file: {path}")
    if path.suffix == ".json":
        return json_format.loads(path.read_text())
    return deserialize(path.read_bytes(), name=path.stem)
