"""EVA program serialization in the Protocol Buffers schema of Figure 1.

The message layout follows the paper's ``EVA.proto`` definition exactly
(field numbers included); two backward-compatible extension fields are added
so that round-tripping through the binary format is lossless for this
implementation:

* ``Input.name = 15`` and ``Output.name = 15`` carry the symbolic names the
  Python frontend uses (the original schema identifies inputs and outputs
  positionally).
* ``Constant.lane_mask = 15`` marks the 0/1 selector constants inserted by
  the lane-lowering pass (compiler plumbing the slot batcher must ignore
  when deriving the program's output period).

Rotation step counts and rescale divisors are represented as scalar-constant
arguments of their instructions, matching the instruction signatures of
Table 2 (``ROTATE: Cipher × Integer``, ``RESCALE: Cipher × Scalar``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ...errors import SerializationError
from ..ir import Program, Term
from ..types import ObjectType, Op, ValueType, object_type_for, value_type_for
from . import wire


@dataclass
class ConstantMessage:
    obj_id: int
    type: ObjectType
    scale: float
    elements: List[float]
    lane_mask: bool = False

    def to_bytes(self) -> bytes:
        payload = wire.encode_bytes_field(1, wire.encode_varint_field(1, self.obj_id))
        payload += wire.encode_varint_field(2, int(self.type))
        payload += wire.encode_double_field(3, self.scale)
        payload += wire.encode_bytes_field(4, wire.encode_packed_doubles(1, self.elements))
        if self.lane_mask:
            payload += wire.encode_varint_field(15, 1)
        return payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "ConstantMessage":
        obj_id, type_, scale, elements = 0, ObjectType.UNDEFINED_TYPE, 0.0, []
        lane_mask = False
        for number, _, raw in wire.iter_fields(data):
            if number == 1:
                obj_id = _decode_object(raw)
            elif number == 2:
                type_ = ObjectType(int(raw))
            elif number == 3:
                scale = wire.unpack_double(raw)
            elif number == 4:
                elements = _decode_vector(raw)
            elif number == 15:
                lane_mask = bool(int(raw))
        return cls(obj_id, type_, scale, elements, lane_mask)


@dataclass
class InputMessage:
    obj_id: int
    type: ObjectType
    scale: float
    name: str = ""

    def to_bytes(self) -> bytes:
        payload = wire.encode_bytes_field(1, wire.encode_varint_field(1, self.obj_id))
        payload += wire.encode_varint_field(2, int(self.type))
        payload += wire.encode_double_field(3, self.scale)
        if self.name:
            payload += wire.encode_string_field(15, self.name)
        return payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "InputMessage":
        obj_id, type_, scale, name = 0, ObjectType.UNDEFINED_TYPE, 0.0, ""
        for number, _, raw in wire.iter_fields(data):
            if number == 1:
                obj_id = _decode_object(raw)
            elif number == 2:
                type_ = ObjectType(int(raw))
            elif number == 3:
                scale = wire.unpack_double(raw)
            elif number == 15:
                name = bytes(raw).decode("utf-8")
        return cls(obj_id, type_, scale, name)


@dataclass
class OutputMessage:
    obj_id: int
    scale: float
    name: str = ""

    def to_bytes(self) -> bytes:
        payload = wire.encode_bytes_field(1, wire.encode_varint_field(1, self.obj_id))
        payload += wire.encode_double_field(2, self.scale)
        if self.name:
            payload += wire.encode_string_field(15, self.name)
        return payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "OutputMessage":
        obj_id, scale, name = 0, 0.0, ""
        for number, _, raw in wire.iter_fields(data):
            if number == 1:
                obj_id = _decode_object(raw)
            elif number == 2:
                scale = wire.unpack_double(raw)
            elif number == 15:
                name = bytes(raw).decode("utf-8")
        return cls(obj_id, scale, name)


@dataclass
class InstructionMessage:
    output_id: int
    op_code: Op
    arg_ids: List[int] = field(default_factory=list)

    def to_bytes(self) -> bytes:
        payload = wire.encode_bytes_field(1, wire.encode_varint_field(1, self.output_id))
        payload += wire.encode_varint_field(2, int(self.op_code))
        for arg in self.arg_ids:
            payload += wire.encode_bytes_field(3, wire.encode_varint_field(1, arg))
        return payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "InstructionMessage":
        output_id, op_code, args = 0, Op.UNDEFINED, []
        for number, _, raw in wire.iter_fields(data):
            if number == 1:
                output_id = _decode_object(raw)
            elif number == 2:
                op_code = Op(int(raw))
            elif number == 3:
                args.append(_decode_object(raw))
        return cls(output_id, op_code, args)


@dataclass
class ProgramMessage:
    vec_size: int
    constants: List[ConstantMessage] = field(default_factory=list)
    inputs: List[InputMessage] = field(default_factory=list)
    outputs: List[OutputMessage] = field(default_factory=list)
    instructions: List[InstructionMessage] = field(default_factory=list)

    def to_bytes(self) -> bytes:
        payload = wire.encode_varint_field(1, self.vec_size)
        for constant in self.constants:
            payload += wire.encode_bytes_field(2, constant.to_bytes())
        for inp in self.inputs:
            payload += wire.encode_bytes_field(3, inp.to_bytes())
        for out in self.outputs:
            payload += wire.encode_bytes_field(4, out.to_bytes())
        for inst in self.instructions:
            payload += wire.encode_bytes_field(5, inst.to_bytes())
        return payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "ProgramMessage":
        message = cls(vec_size=0)
        for number, _, raw in wire.iter_fields(data):
            if number == 1:
                message.vec_size = int(raw)
            elif number == 2:
                message.constants.append(ConstantMessage.from_bytes(raw))
            elif number == 3:
                message.inputs.append(InputMessage.from_bytes(raw))
            elif number == 4:
                message.outputs.append(OutputMessage.from_bytes(raw))
            elif number == 5:
                message.instructions.append(InstructionMessage.from_bytes(raw))
        return message


def _decode_object(raw: object) -> int:
    if not isinstance(raw, (bytes, bytearray)):
        raise SerializationError("expected an embedded Object message")
    for number, _, value in wire.iter_fields(bytes(raw)):
        if number == 1:
            return int(value)
    return 0


def _decode_vector(raw: object) -> List[float]:
    if not isinstance(raw, (bytes, bytearray)):
        raise SerializationError("expected an embedded Vector message")
    for number, _, value in wire.iter_fields(bytes(raw)):
        if number == 1 and isinstance(value, (bytes, bytearray)):
            return wire.unpack_doubles(bytes(value))
    return []


# ---------------------------------------------------------------------------
# Conversion between the in-memory graph and the proto message.
# ---------------------------------------------------------------------------

def program_to_message(program: Program) -> ProgramMessage:
    """Convert an in-memory :class:`Program` into a :class:`ProgramMessage`."""
    message = ProgramMessage(vec_size=program.vec_size)
    ids: Dict[int, int] = {}
    next_id = 1

    def assign(term: Term) -> int:
        nonlocal next_id
        if term.id not in ids:
            ids[term.id] = next_id
            next_id += 1
        return ids[term.id]

    terms = program.terms()
    for term in terms:
        obj_id = assign(term)
        if term.is_input:
            message.inputs.append(
                InputMessage(
                    obj_id,
                    object_type_for(term.value_type, is_constant=False),
                    float(term.scale or 0.0),
                    name=term.name or "",
                )
            )
        elif term.is_constant:
            value = np.atleast_1d(np.asarray(term.value, dtype=np.float64)).ravel()
            message.constants.append(
                ConstantMessage(
                    obj_id,
                    object_type_for(term.value_type, is_constant=True),
                    float(term.scale or 0.0),
                    [float(v) for v in value],
                    lane_mask=bool(term.attributes.get("lane_mask")),
                )
            )

    def scalar_constant(value: float) -> int:
        nonlocal next_id
        obj_id = next_id
        next_id += 1
        message.constants.append(
            ConstantMessage(obj_id, ObjectType.SCALAR_CONST, 0.0, [float(value)])
        )
        return obj_id

    for term in terms:
        if not term.is_instruction:
            continue
        arg_ids = [ids[a.id] for a in term.args]
        if term.op.is_rotation:
            arg_ids.append(scalar_constant(term.rotation))
        elif term.op is Op.RESCALE:
            arg_ids.append(scalar_constant(term.rescale_value))
        message.instructions.append(InstructionMessage(ids[term.id], term.op, arg_ids))

    for name, term in program.outputs.items():
        message.outputs.append(
            OutputMessage(ids[term.id], float(program.output_scales.get(name, 0.0)), name)
        )
    return message


def message_to_program(message: ProgramMessage, name: str = "program") -> Program:
    """Reconstruct an in-memory :class:`Program` from a :class:`ProgramMessage`."""
    if message.vec_size <= 0:
        raise SerializationError("program message has no vector size")
    program = Program(name, vec_size=message.vec_size)
    terms: Dict[int, Term] = {}
    scalar_values: Dict[int, float] = {}

    for index, inp in enumerate(message.inputs):
        input_name = inp.name or f"input_{index}"
        term = program.input(input_name, value_type_for(inp.type), scale=inp.scale)
        terms[inp.obj_id] = term
    for constant in message.constants:
        value_type = value_type_for(constant.type)
        if value_type is ValueType.SCALAR or len(constant.elements) == 1:
            value = float(constant.elements[0]) if constant.elements else 0.0
            scalar_values[constant.obj_id] = value
            term = program.constant(value, scale=constant.scale, value_type=ValueType.SCALAR)
        else:
            term = program.constant(
                np.asarray(constant.elements, dtype=np.float64),
                scale=constant.scale,
                value_type=ValueType.VECTOR,
            )
        if constant.lane_mask:
            term.attributes["lane_mask"] = True
        terms[constant.obj_id] = term

    for inst in message.instructions:
        if inst.op_code.is_rotation or inst.op_code is Op.RESCALE:
            if len(inst.arg_ids) < 2:
                raise SerializationError(
                    f"{inst.op_code.name} instruction is missing its scalar argument"
                )
            main_args = inst.arg_ids[:-1]
            scalar_id = inst.arg_ids[-1]
            scalar = scalar_values.get(scalar_id)
            if scalar is None:
                raise SerializationError(
                    f"{inst.op_code.name} refers to a non-scalar constant argument"
                )
            args = [_lookup(terms, i) for i in main_args]
            if inst.op_code.is_rotation:
                term = program.make_term(inst.op_code, args, rotation=int(scalar))
            else:
                term = program.make_term(inst.op_code, args, rescale_value=float(scalar))
        else:
            args = [_lookup(terms, i) for i in inst.arg_ids]
            term = program.make_term(inst.op_code, args)
        terms[inst.output_id] = term

    for index, out in enumerate(message.outputs):
        output_name = out.name or f"output_{index}"
        program.set_output(output_name, _lookup(terms, out.obj_id), scale=out.scale)
    return program


def _lookup(terms: Dict[int, Term], obj_id: int) -> Term:
    term = terms.get(obj_id)
    if term is None:
        raise SerializationError(f"instruction refers to unknown object id {obj_id}")
    return term


def serialize(program: Program) -> bytes:
    """Serialize a program to the binary proto3 wire format."""
    return program_to_message(program).to_bytes()


def deserialize(data: bytes, name: str = "program") -> Program:
    """Deserialize a program from the binary proto3 wire format."""
    return message_to_program(ProgramMessage.from_bytes(data), name=name)
