"""Base64 packing of numeric arrays for the JSON wire codecs.

The cipher and evaluation-key codecs originally serialized every RNS residue
polynomial as nested Python integer lists, which makes a CKKS evaluation-key
blob roughly an order of magnitude larger than the underlying data (each
residue costs ~10-20 JSON characters instead of 8 bytes).  This module packs
``int64`` / ``float64`` arrays as base64 strings with an explicit dtype and
shape, cutting the encoded size ~10x while staying plain JSON.

Decoding is backward compatible: :func:`unpack_array` accepts both the packed
form and the legacy (nested-)list form, so blobs produced by older builds
still round-trip.

Beside the base64 path sits a *binary fast path* for the binary wire
protocol (:mod:`repro.wire`): inside a :func:`raw_blobs` context,
:func:`pack_array` emits ``{"raw": <bytes>, "dtype", "shape"}`` — the raw
little-endian buffer, no base64 — which the wire codec lifts into a
length-delimited blob record.  :func:`unpack_array` accepts the raw form
unconditionally (including zero-copy ``memoryview`` slices of a received
frame), and :func:`jsonable_blobs` converts raw records back to base64 for
the places that must stay plain JSON (the session store on disk).
"""

from __future__ import annotations

import base64
import threading
from contextlib import contextmanager
from typing import Any, Sequence

import numpy as np

from ...errors import SerializationError

#: Wire dtype tags (explicitly little-endian on the wire).
_DTYPES = {
    "u1": np.uint8,
    "u2": np.uint16,
    "u4": np.uint32,
    "i8": np.int64,
    "f8": np.float64,
}


def _integer_tag(array: np.ndarray) -> str:
    """Smallest wire dtype holding every element of an integer array.

    RNS residues are non-negative and bounded by their prime, so 30-bit
    primes fit ``u4`` — half the bytes of ``i8`` on top of the base64 win.
    """
    if array.size == 0 or array.min() < 0:
        return "i8"
    peak = int(array.max())
    if peak < 1 << 8:
        return "u1"
    if peak < 1 << 16:
        return "u2"
    if peak < 1 << 32:
        return "u4"
    return "i8"


_RAW_MODE = threading.local()


@contextmanager
def raw_blobs():
    """Make :func:`pack_array` emit raw-bytes records in this thread.

    The binary wire path wraps message building in this context so packed
    arrays skip base64 entirely: ``{"raw": <bytes>, "dtype", "shape"}``
    instead of ``{"b64": <str>, ...}``.  Raw records are *not* JSON-able —
    they exist to be lifted into binary blob records by the wire codec (or
    converted back with :func:`jsonable_blobs`).
    """
    previous = getattr(_RAW_MODE, "active", False)
    _RAW_MODE.active = True
    try:
        yield
    finally:
        _RAW_MODE.active = previous


def pack_array(array: Any, dtype: Any = None) -> dict:
    """Encode an int/float array as ``{"b64", "dtype", "shape"}``.

    ``dtype`` forces the *semantic* dtype (integers vs floats); integers are
    stored at the smallest width that holds every element.  Inside a
    :func:`raw_blobs` context the payload is raw bytes under ``"raw"``
    instead of base64 under ``"b64"``.
    """
    array = np.asarray(array)
    if dtype is None:
        dtype = np.int64 if np.issubdtype(array.dtype, np.integer) else np.float64
    if np.dtype(dtype) == np.int64:
        array = np.ascontiguousarray(array, dtype=np.int64)
        tag = _integer_tag(array)
    else:
        tag = "f8"
    data = np.ascontiguousarray(array, dtype="<" + tag)
    record = {
        "dtype": tag,
        "shape": [int(dim) for dim in data.shape],
    }
    if getattr(_RAW_MODE, "active", False):
        record["raw"] = data.tobytes()
    else:
        record["b64"] = base64.b64encode(data.tobytes()).decode("ascii")
    return record


def jsonable_blobs(node: Any) -> Any:
    """Deep-copy a tree, converting raw packed records back to base64.

    The inverse bridge of :func:`raw_blobs` for sinks that must stay plain
    JSON: the session store persists key blobs received over the binary
    wire (raw ``memoryview`` records) through here before ``json.dump``.
    Trees without raw records pass through structurally unchanged.
    """
    if isinstance(node, dict):
        raw = node.get("raw")
        if isinstance(raw, (bytes, bytearray, memoryview)):
            converted = {k: v for k, v in node.items() if k != "raw"}
            converted["b64"] = base64.b64encode(bytes(raw)).decode("ascii")
            return converted
        return {key: jsonable_blobs(value) for key, value in node.items()}
    if isinstance(node, (list, tuple)):
        return [jsonable_blobs(item) for item in node]
    return node


def unpack_array(data: Any, dtype: Any = None) -> np.ndarray:
    """Inverse of :func:`pack_array`; also accepts legacy (nested) lists.

    Accepts both packed payload forms — base64 under ``"b64"`` and raw bytes
    (``bytes`` / ``bytearray`` / ``memoryview``, e.g. a zero-copy slice of a
    received binary frame) under ``"raw"``.  ``dtype`` is the dtype legacy
    lists are coerced to (packed payloads carry their own); a packed payload
    whose byte count disagrees with its declared shape raises
    :class:`~repro.errors.SerializationError`.
    """
    if isinstance(data, dict) and ("b64" in data or "raw" in data):
        tag = str(data.get("dtype", "f8"))
        if tag not in _DTYPES:
            raise SerializationError(f"unknown packed dtype {tag!r}")
        if "raw" in data:
            raw = data["raw"]
            if not isinstance(raw, (bytes, bytearray, memoryview)):
                raise SerializationError(
                    f"raw payload must be bytes-like, got {type(raw).__name__}"
                )
        else:
            try:
                raw = base64.b64decode(str(data["b64"]), validate=True)
            except (ValueError, TypeError) as exc:
                raise SerializationError(f"malformed base64 payload: {exc}") from exc
        try:
            array = np.frombuffer(raw, dtype="<" + tag)
        except ValueError as exc:
            raise SerializationError(f"malformed packed array: {exc}") from exc
        shape = tuple(int(dim) for dim in data.get("shape", [array.size]))
        expected = int(np.prod(shape)) if shape else 1
        if array.size != expected:
            raise SerializationError(
                f"packed array carries {array.size} elements, shape "
                f"{list(shape)} expects {expected}"
            )
        # frombuffer views are read-only; copy into native byte order
        # (integer tags widen back to int64, the in-memory residue dtype).
        target = np.float64 if tag == "f8" else np.int64
        return array.reshape(shape).astype(target, copy=True)
    return np.asarray(data, dtype=np.float64 if dtype is None else dtype)


def pack_values(values: Sequence[float]) -> dict:
    """Pack a 1-D float vector (cipher slot values, plain inputs)."""
    return pack_array(np.atleast_1d(np.asarray(values, dtype=np.float64)).ravel())


def unpack_values(data: Any) -> np.ndarray:
    """Inverse of :func:`pack_values`; accepts legacy float lists."""
    return unpack_array(data, dtype=np.float64).ravel()


def pack_residues(residues: Any) -> dict:
    """Pack a 2-D int64 RNS residue matrix (one row per prime)."""
    return pack_array(residues, dtype=np.int64)


def unpack_residues(data: Any) -> np.ndarray:
    """Inverse of :func:`pack_residues`; accepts legacy row lists."""
    return unpack_array(data, dtype=np.int64)
