"""In-memory term-graph representation of EVA programs.

A program is a directed acyclic graph (an *abstract semantic graph* in the
paper's terminology, Section 4.3).  Each node is a :class:`Term`; nodes with
incoming edges are instructions, nodes without incoming edges are inputs or
constants.  Outputs are named references to instruction nodes.

Scales are tracked in the log2 domain throughout the package: the ``scale``
attribute of an input/constant/output is ``log2`` of the fixed-point scaling
factor (the paper's Table 4 reports exactly these "logP" values).  Using the
log domain avoids overflow for deep programs whose intermediate scales exceed
the range of IEEE doubles (SqueezeNet's intermediate scales reach 2^1740).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import CompilationError
from .types import Op, ValueType, is_power_of_two


class Term:
    """A node of the EVA term graph.

    Parameters
    ----------
    op:
        The opcode of the node.  ``Op.INPUT`` and ``Op.CONSTANT`` mark roots.
    args:
        Parameter nodes (the paper's ``n.parms``); empty for roots.
    attributes:
        Opcode-specific attributes:

        ``name``
            input name (inputs only).
        ``value``
            constant payload, a numpy array or scalar (constants only).
        ``scale``
            declared scale in bits (inputs and constants).
        ``rotation``
            step count for ROTATE_LEFT / ROTATE_RIGHT.
        ``rescale_value``
            divisor in bits for RESCALE.
        ``kernel``
            optional label of the high-level kernel this term belongs to
            (used by the CHET-style scheduler to form bulk-synchronous
            groups).
    """

    __slots__ = ("id", "op", "args", "value_type", "attributes")

    _id_counter = itertools.count()

    def __init__(
        self,
        op: Op,
        args: Sequence["Term"] = (),
        value_type: ValueType = ValueType.CIPHER,
        **attributes: Any,
    ) -> None:
        self.id: int = next(Term._id_counter)
        self.op = op
        self.args: List[Term] = list(args)
        self.value_type = value_type
        self.attributes: Dict[str, Any] = dict(attributes)

    # -- convenience accessors -------------------------------------------------
    @property
    def is_input(self) -> bool:
        return self.op is Op.INPUT

    @property
    def is_constant(self) -> bool:
        return self.op is Op.CONSTANT

    @property
    def is_root(self) -> bool:
        return self.op in (Op.INPUT, Op.CONSTANT)

    @property
    def is_instruction(self) -> bool:
        return not self.is_root

    @property
    def name(self) -> Optional[str]:
        return self.attributes.get("name")

    @property
    def value(self) -> Any:
        return self.attributes.get("value")

    @property
    def scale(self) -> Optional[float]:
        """Declared scale in bits (roots only); instruction scales are derived."""
        return self.attributes.get("scale")

    @scale.setter
    def scale(self, bits: float) -> None:
        self.attributes["scale"] = float(bits)

    @property
    def rotation(self) -> int:
        return int(self.attributes.get("rotation", 0))

    @property
    def rescale_value(self) -> float:
        """Rescale divisor in bits (RESCALE nodes only)."""
        return float(self.attributes.get("rescale_value", 0.0))

    @property
    def kernel(self) -> Optional[str]:
        return self.attributes.get("kernel")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = ""
        if self.op.is_rotation:
            extra = f" by {self.rotation}"
        elif self.op is Op.RESCALE:
            extra = f" by 2^{self.rescale_value:g}"
        elif self.is_input:
            extra = f" {self.name!r}"
        return f"<Term {self.id} {self.op.name}{extra} {self.value_type.name}>"


class Program:
    """An EVA program: a DAG of :class:`Term` nodes with named inputs and outputs.

    Corresponds to the ``Program`` message of Figure 1: it records the vector
    size shared by all Cipher/Vector values, the inputs, the constants, the
    instructions, and the outputs (with their desired scales, supplied at
    compile time).
    """

    def __init__(self, name: str = "program", vec_size: int = 4096) -> None:
        if not is_power_of_two(vec_size):
            raise CompilationError(
                f"vector size must be a power of two, got {vec_size}"
            )
        self.name = name
        self.vec_size = int(vec_size)
        self.inputs: Dict[str, Term] = {}
        self.outputs: Dict[str, Term] = {}
        #: Desired output scales in bits, keyed by output name (set by callers
        #: of the compiler; optional until compilation).
        self.output_scales: Dict[str, float] = {}

    # -- construction helpers ---------------------------------------------------
    def input(
        self,
        name: str,
        value_type: ValueType = ValueType.CIPHER,
        scale: float = 30.0,
    ) -> Term:
        """Declare a named program input and return its term."""
        if name in self.inputs:
            raise CompilationError(f"duplicate input name {name!r}")
        term = Term(Op.INPUT, (), value_type, name=name, scale=float(scale))
        self.inputs[name] = term
        return term

    def constant(
        self,
        value: Any,
        scale: float = 30.0,
        value_type: Optional[ValueType] = None,
    ) -> Term:
        """Create a constant term holding ``value`` at the given scale (bits)."""
        if value_type is None:
            if np.isscalar(value):
                value_type = ValueType.SCALAR
            else:
                value_type = ValueType.VECTOR
        if value_type is ValueType.CIPHER:
            raise CompilationError("constants cannot have Cipher type")
        if value_type is ValueType.VECTOR:
            value = np.asarray(value, dtype=np.float64)
        return Term(Op.CONSTANT, (), value_type, value=value, scale=float(scale))

    def make_term(self, op: Op, args: Sequence[Term], **attributes: Any) -> Term:
        """Create an instruction term, inferring its result type from ``args``."""
        if not op.is_instruction:
            raise CompilationError(f"{op.name} is not an instruction opcode")
        if any(t is ValueType.CIPHER for t in (a.value_type for a in args)):
            value_type = ValueType.CIPHER
        else:
            value_type = ValueType.VECTOR
        return Term(op, args, value_type, **attributes)

    def set_output(self, name: str, term: Term, scale: Optional[float] = None) -> None:
        """Mark ``term`` as a named program output with an optional desired scale."""
        self.outputs[name] = term
        if scale is not None:
            self.output_scales[name] = float(scale)

    # -- graph queries ----------------------------------------------------------
    def sources(self) -> List[Term]:
        """All root nodes reachable from the outputs (inputs and constants)."""
        return [t for t in self.terms() if t.is_root]

    def constants(self) -> List[Term]:
        return [t for t in self.terms() if t.is_constant]

    def instructions(self) -> List[Term]:
        return [t for t in self.terms() if t.is_instruction]

    def terms(self) -> List[Term]:
        """All terms reachable from the outputs, in topological order.

        Parents always precede children; the order is deterministic for a
        given graph (depth-first post-order from the outputs, with ties broken
        by argument position).
        """
        order: List[Term] = []
        seen: set = set()
        # Iterative DFS to avoid recursion limits on deep programs.
        for out in self.outputs.values():
            stack: List[Tuple[Term, int]] = [(out, 0)]
            while stack:
                node, child_idx = stack.pop()
                if node.id in seen:
                    continue
                if child_idx < len(node.args):
                    stack.append((node, child_idx + 1))
                    stack.append((node.args[child_idx], 0))
                else:
                    seen.add(node.id)
                    order.append(node)
        return order

    def uses(self) -> Dict[int, List[Term]]:
        """Map from term id to the list of terms that consume it (its children)."""
        result: Dict[int, List[Term]] = {t.id: [] for t in self.terms()}
        for term in self.terms():
            for arg in term.args:
                result[arg.id].append(term)
        return result

    def multiplicative_depth(self) -> int:
        """Maximum number of MULTIPLY nodes on any root-to-output path."""
        depth: Dict[int, int] = {}
        best = 0
        for term in self.terms():
            d = max((depth[a.id] for a in term.args), default=0)
            if term.op is Op.MULTIPLY:
                d += 1
            depth[term.id] = d
            best = max(best, d)
        return best

    def op_counts(self) -> Dict[Op, int]:
        """Histogram of opcodes over all reachable terms."""
        counts: Dict[Op, int] = {}
        for term in self.terms():
            counts[term.op] = counts.get(term.op, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self.terms())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Program {self.name!r} vec_size={self.vec_size} "
            f"terms={len(self)} outputs={list(self.outputs)}>"
        )

    # -- structural validation --------------------------------------------------
    def check_structure(self, frontend_only: bool = False) -> None:
        """Validate basic structural well-formedness of the program.

        Checks acyclicity (implied by reachability-based traversal plus an
        explicit cycle check), arity of every opcode, power-of-two vector
        size, and — when ``frontend_only`` is True — the absence of
        FHE-specific instructions (Table 2's restriction on input programs).
        """
        if not self.outputs:
            raise CompilationError("program has no outputs")
        self._check_acyclic()
        arity = {
            Op.NEGATE: 1,
            Op.ADD: 2,
            Op.SUB: 2,
            Op.MULTIPLY: 2,
            Op.SUM: 1,
            Op.COPY: 1,
            Op.ROTATE_LEFT: 1,
            Op.ROTATE_RIGHT: 1,
            Op.RELINEARIZE: 1,
            Op.MOD_SWITCH: 1,
            Op.RESCALE: 1,
            Op.NORMALIZE_SCALE: 1,
        }
        for term in self.terms():
            if term.is_root:
                if term.args:
                    raise CompilationError("input/constant terms cannot have arguments")
                continue
            expected = arity.get(term.op)
            if expected is None:
                raise CompilationError(f"unknown opcode {term.op}")
            if len(term.args) != expected:
                raise CompilationError(
                    f"{term.op.name} expects {expected} arguments, got {len(term.args)}"
                )
            if frontend_only and term.op.is_fhe_specific:
                raise CompilationError(
                    f"{term.op.name} is not allowed in input programs; "
                    "it is inserted by the compiler"
                )
            if term.op.is_rotation and "rotation" not in term.attributes:
                raise CompilationError(f"{term.op.name} requires a 'rotation' attribute")
        for name, term in self.outputs.items():
            if term.value_type is not ValueType.CIPHER:
                raise CompilationError(
                    f"output {name!r} must be a Cipher value, got {term.value_type.name}"
                )

    def _check_acyclic(self) -> None:
        state: Dict[int, int] = {}  # 0 = visiting, 1 = done

        for out in self.outputs.values():
            stack: List[Tuple[Term, int]] = [(out, 0)]
            while stack:
                node, idx = stack.pop()
                if state.get(node.id) == 1:
                    continue
                if idx == 0:
                    if state.get(node.id) == 0:
                        raise CompilationError("program graph contains a cycle")
                    state[node.id] = 0
                if idx < len(node.args):
                    stack.append((node, idx + 1))
                    child = node.args[idx]
                    if state.get(child.id) == 0:
                        raise CompilationError("program graph contains a cycle")
                    if state.get(child.id) != 1:
                        stack.append((child, 0))
                else:
                    state[node.id] = 1

    # -- cloning ----------------------------------------------------------------
    def clone(self) -> "Program":
        """Deep-copy the program graph (terms are copied, values are shared)."""
        mapping: Dict[int, Term] = {}
        copy = Program(self.name, self.vec_size)
        for term in self.terms():
            new = Term(
                term.op,
                [mapping[a.id] for a in term.args],
                term.value_type,
                **dict(term.attributes),
            )
            mapping[term.id] = new
        for name, term in self.inputs.items():
            if term.id in mapping:
                copy.inputs[name] = mapping[term.id]
            else:  # input declared but unused; keep the declaration
                copy.inputs[name] = Term(
                    term.op, (), term.value_type, **dict(term.attributes)
                )
        for name, term in self.outputs.items():
            copy.outputs[name] = mapping[term.id]
        copy.output_scales = dict(self.output_scales)
        return copy


class GraphEditor:
    """Helper for structural rewrites of a :class:`Program` graph.

    Maintains a uses (consumer) map so rewrite rules of the form "insert a new
    node between ``n`` and its children" (Figure 4) can be applied in O(degree)
    per rewrite.
    """

    def __init__(self, program: Program) -> None:
        self.program = program
        self.uses: Dict[int, List[Term]] = program.uses()

    def consumers(self, term: Term) -> List[Term]:
        return list(self.uses.get(term.id, ()))

    def replace_arg(self, consumer: Term, old: Term, new: Term) -> None:
        """Replace every occurrence of ``old`` in ``consumer.args`` with ``new``."""
        changed = False
        for i, arg in enumerate(consumer.args):
            if arg is old:
                consumer.args[i] = new
                changed = True
        if changed:
            self.uses.setdefault(old.id, [])
            if consumer in self.uses[old.id]:
                self.uses[old.id] = [c for c in self.uses[old.id] if c is not consumer]
            self.uses.setdefault(new.id, []).append(consumer)

    def insert_after(self, term: Term, new_term: Term, only_consumers: Optional[Iterable[Term]] = None) -> None:
        """Rewire consumers of ``term`` (or a subset) to read from ``new_term``.

        ``new_term`` is expected to already have ``term`` among its arguments.
        Output references to ``term`` are also redirected unless a subset of
        consumers was requested.
        """
        targets = list(self.consumers(term)) if only_consumers is None else list(only_consumers)
        for consumer in targets:
            if consumer is new_term:
                continue
            self.replace_arg(consumer, term, new_term)
        self.uses.setdefault(new_term.id, [])
        for arg in new_term.args:
            self.uses.setdefault(arg.id, [])
            if new_term not in self.uses[arg.id]:
                self.uses[arg.id].append(new_term)
        if only_consumers is None:
            for name, out in self.program.outputs.items():
                if out is term:
                    self.program.outputs[name] = new_term

    def replace_term(self, old: Term, new: Term) -> None:
        """Redirect every consumer of ``old`` (and output references) to ``new``."""
        for consumer in self.consumers(old):
            self.replace_arg(consumer, old, new)
        for name, out in self.program.outputs.items():
            if out is old:
                self.program.outputs[name] = new
        self.uses.setdefault(new.id, [])
