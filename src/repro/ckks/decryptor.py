"""CKKS decryption and decoding."""

from __future__ import annotations

import numpy as np

from ..errors import ExecutionError
from .ciphertext import Ciphertext
from .context import CkksContext
from .keys import SecretKey


class Decryptor:
    """Decrypts ciphertexts with the secret key and decodes them to vectors."""

    def __init__(self, context: CkksContext, secret_key: SecretKey) -> None:
        self.context = context
        self.secret_key = secret_key

    def decrypt_poly(self, ciphertext: Ciphertext):
        """Return the raw plaintext polynomial ``sum_i c_i s^i`` (RNS form)."""
        if ciphertext.size < 2:
            raise ExecutionError("ciphertext is transparent or malformed")
        basis = ciphertext.basis
        s = self.secret_key.poly_for(basis)
        result = ciphertext.polys[0]
        s_power = s
        for index in range(1, ciphertext.size):
            result = result.add(ciphertext.polys[index].multiply(s_power))
            if index + 1 < ciphertext.size:
                s_power = s_power.multiply(s)
        return result

    def decrypt(self, ciphertext: Ciphertext) -> np.ndarray:
        """Decrypt and decode to a real-valued slot vector."""
        message = self.decrypt_poly(ciphertext)
        coefficients = message.to_int_coefficients()
        return self.context.encoder.decode_real(coefficients, ciphertext.scale)
