"""Ciphertext and plaintext containers for the CKKS scheme."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .rns import RnsPolynomial


@dataclass
class Plaintext:
    """An encoded plaintext polynomial with its scale and level."""

    poly: RnsPolynomial
    scale: float
    level: int

    @property
    def poly_modulus_degree(self) -> int:
        return self.poly.basis.poly_modulus_degree


@dataclass
class Ciphertext:
    """A CKKS ciphertext: two or more polynomials plus scale and level.

    ``polys[i]`` is the coefficient of ``s^i`` in the decryption equation
    ``m + e = sum_i polys[i] * s^i (mod Q_level)``.
    """

    polys: List[RnsPolynomial] = field(default_factory=list)
    scale: float = 1.0
    level: int = 0

    @property
    def size(self) -> int:
        """Number of polynomials (2 for fresh or relinearized ciphertexts)."""
        return len(self.polys)

    @property
    def basis(self):
        return self.polys[0].basis

    def copy(self) -> "Ciphertext":
        return Ciphertext([p.copy() for p in self.polys], self.scale, self.level)
