"""Negacyclic Number-Theoretic Transforms over word-sized primes.

Polynomial multiplication in the ring ``Z_q[X] / (X^N + 1)`` is performed via
the negacyclic NTT: coefficients are pre-twisted by powers of a primitive
``2N``-th root of unity ``psi``, transformed with a radix-2 NTT of length
``N`` (whose root is ``psi^2``), multiplied point-wise, inverse-transformed,
and post-twisted by powers of ``psi^{-1}``.

All arithmetic is vectorized ``numpy`` ``int64``; the primes produced by
:mod:`repro.ckks.numth` are below 2^31 so intermediate products never
overflow.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from .numth import find_primitive_root, mod_inverse


class NttContext:
    """Precomputed twiddle factors for one (prime, N) pair."""

    def __init__(self, prime: int, poly_modulus_degree: int) -> None:
        n = int(poly_modulus_degree)
        if n & (n - 1):
            raise ValueError("polynomial degree must be a power of two")
        self.prime = int(prime)
        self.n = n
        self.psi = find_primitive_root(2 * n, self.prime)
        self.psi_inv = mod_inverse(self.psi, self.prime)
        self.omega = (self.psi * self.psi) % self.prime
        self.omega_inv = mod_inverse(self.omega, self.prime)
        self.n_inv = mod_inverse(n, self.prime)

        powers = np.arange(n, dtype=np.int64)
        self.psi_powers = np.array(
            [pow(self.psi, int(i), self.prime) for i in powers], dtype=np.int64
        )
        self.psi_inv_powers = np.array(
            [pow(self.psi_inv, int(i), self.prime) for i in powers], dtype=np.int64
        )
        # Stage twiddles for the iterative Cooley-Tukey butterflies.
        self._forward_stages = self._stage_twiddles(self.omega)
        self._inverse_stages = self._stage_twiddles(self.omega_inv)

    def _stage_twiddles(self, root: int) -> Dict[int, np.ndarray]:
        stages: Dict[int, np.ndarray] = {}
        length = 2
        while length <= self.n:
            step_root = pow(root, self.n // length, self.prime)
            stages[length] = np.array(
                [pow(step_root, i, self.prime) for i in range(length // 2)],
                dtype=np.int64,
            )
            length *= 2
        return stages

    # -- core transforms ---------------------------------------------------------
    def _transform(self, values: np.ndarray, stages: Dict[int, np.ndarray]) -> np.ndarray:
        q = self.prime
        data = values.astype(np.int64) % q
        data = data[_bit_reverse_indices(self.n)]
        length = 2
        while length <= self.n:
            half = length // 2
            twiddles = stages[length]
            blocks = data.reshape(-1, length)
            low = blocks[:, :half].copy()
            high = (blocks[:, half:] * twiddles[np.newaxis, :]) % q
            # Inputs are reduced, so the butterfly outputs live in (-q, 2q):
            # a single conditional subtract/add replaces the int64 division
            # that `% q` would cost per element.
            total = low + high
            np.subtract(total, q, out=total, where=total >= q)
            diff = low - high
            np.add(diff, q, out=diff, where=diff < 0)
            blocks[:, :half] = total
            blocks[:, half:] = diff
            data = blocks.reshape(-1)
            length *= 2
        return data

    def _transform_reference(self, values: np.ndarray, stages: Dict[int, np.ndarray]) -> np.ndarray:
        """Original butterfly loop with full `%` reductions (property-test oracle)."""
        q = self.prime
        data = values.astype(np.int64) % q
        data = data[_bit_reverse_indices(self.n)]
        length = 2
        while length <= self.n:
            half = length // 2
            twiddles = stages[length]
            blocks = data.reshape(-1, length)
            low = blocks[:, :half].copy()
            high = (blocks[:, half:] * twiddles[np.newaxis, :]) % q
            blocks[:, :half] = (low + high) % q
            blocks[:, half:] = (low - high) % q
            data = blocks.reshape(-1)
            length *= 2
        return data

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        """Negacyclic forward NTT of a length-N coefficient vector."""
        twisted = (coeffs.astype(np.int64) % self.prime) * self.psi_powers % self.prime
        return self._transform(twisted, self._forward_stages)

    def inverse(self, values: np.ndarray) -> np.ndarray:
        """Inverse negacyclic NTT back to the coefficient domain."""
        data = self._transform(values, self._inverse_stages)
        data = data * self.n_inv % self.prime
        return data * self.psi_inv_powers % self.prime

    def multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Negacyclic product of two coefficient vectors modulo the prime."""
        fa = self.forward(a)
        fb = self.forward(b)
        return self.inverse(fa * fb % self.prime)

    def forward_reference(self, coeffs: np.ndarray) -> np.ndarray:
        """Forward NTT through the reference butterfly path (property-test oracle)."""
        twisted = (coeffs.astype(np.int64) % self.prime) * self.psi_powers % self.prime
        return self._transform_reference(twisted, self._forward_stages)

    def inverse_reference(self, values: np.ndarray) -> np.ndarray:
        """Inverse NTT through the reference butterfly path (property-test oracle)."""
        data = self._transform_reference(values, self._inverse_stages)
        data = data * self.n_inv % self.prime
        return data * self.psi_inv_powers % self.prime


_BIT_REVERSE_CACHE: Dict[int, np.ndarray] = {}


def _bit_reverse_indices(n: int) -> np.ndarray:
    cached = _BIT_REVERSE_CACHE.get(n)
    if cached is not None:
        return cached
    bits = n.bit_length() - 1
    indices = np.arange(n, dtype=np.int64)
    reversed_indices = np.zeros(n, dtype=np.int64)
    for bit in range(bits):
        reversed_indices |= ((indices >> bit) & 1) << (bits - 1 - bit)
    _BIT_REVERSE_CACHE[n] = reversed_indices
    return reversed_indices


_GALOIS_NTT_PERM_CACHE: Dict[Tuple[int, int], np.ndarray] = {}


def galois_ntt_permutation(n: int, galois_element: int) -> np.ndarray:
    """Index permutation realizing ``X -> X^g`` on forward-NTT values.

    Slot ``k`` of the forward negacyclic NTT holds the evaluation at
    ``psi^(2k+1)``, so the automorphism maps slot ``k`` to the slot holding
    ``psi^((2k+1)g mod 2n)``; the exponent stays odd because ``g`` is odd, and
    ``perm[k] = ((2k+1)g mod 2n - 1) / 2``.  Applying ``values[perm]`` to
    NTT-domain data is therefore bit-exact with transforming the
    coefficient-domain automorphism — no sign flips, no extra transforms.
    """
    g = int(galois_element) % (2 * n)
    key = (int(n), g)
    cached = _GALOIS_NTT_PERM_CACHE.get(key)
    if cached is None:
        odd = (2 * np.arange(n, dtype=np.int64) + 1) * g % (2 * n)
        cached = (odd - 1) // 2
        _GALOIS_NTT_PERM_CACHE[key] = cached
    return cached


_NTT_CACHE: Dict[Tuple[int, int], NttContext] = {}


def get_ntt_context(prime: int, poly_modulus_degree: int) -> NttContext:
    """Return a cached :class:`NttContext` for the (prime, N) pair."""
    key = (int(prime), int(poly_modulus_degree))
    context = _NTT_CACHE.get(key)
    if context is None:
        context = NttContext(prime, poly_modulus_degree)
        _NTT_CACHE[key] = context
    return context
