"""Number-theoretic utilities for the RNS-CKKS implementation.

Provides deterministic Miller-Rabin primality testing, generation of
NTT-friendly primes (primes ``p ≡ 1 (mod 2N)`` so that negacyclic NTTs of
length ``N`` exist), primitive roots of unity, and modular inverses.

All primes generated here are kept below 2^31 so that products of two
residues fit comfortably in a signed 64-bit integer, which lets the NTT and
all polynomial arithmetic run as vectorized ``numpy`` ``int64`` operations.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import ParameterError

#: Largest supported prime bit size (residue products must fit in int64).
MAX_PRIME_BITS = 30

#: Witnesses sufficient for deterministic Miller-Rabin below 3.3 * 10^24.
_MILLER_RABIN_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin primality test for 64-bit integers."""
    if n < 2:
        return False
    for small in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % small == 0:
            return n == small
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for witness in _MILLER_RABIN_WITNESSES:
        if witness % n == 0:
            continue
        x = pow(witness, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_ntt_primes(bit_sizes: Sequence[int], poly_modulus_degree: int) -> List[int]:
    """Generate distinct primes ``p ≡ 1 (mod 2N)`` with the requested bit sizes.

    Mirrors SEAL's ``CoeffModulus::Create``: for each requested bit size the
    largest suitable prime not yet used is returned, so equal bit sizes yield
    distinct primes.
    """
    modulus = 2 * poly_modulus_degree
    chosen: List[int] = []
    for bits in bit_sizes:
        bits = int(bits)
        if bits < 2 or bits > MAX_PRIME_BITS:
            raise ParameterError(
                f"prime bit size {bits} is outside the supported range "
                f"[2, {MAX_PRIME_BITS}] of the pure-Python CKKS backend"
            )
        # Search outward from 2^bits so the chosen prime is as close as
        # possible to the nominal power of two; the EVA executor treats
        # rescaling as division by the power of two (paper, footnote 1), so
        # prime proximity directly bounds the systematic rescale error.
        base = (1 << bits) - (((1 << bits) - 1) % modulus)
        candidate = None
        for offset in range(0, 1 << max(bits - 10, 12)):
            for value in (base + offset * modulus, base - offset * modulus):
                if value <= (1 << (bits - 1)) or value >= (1 << 31):
                    continue
                if is_prime(value) and value not in chosen:
                    candidate = value
                    break
            if candidate is not None:
                break
        if candidate is None:
            raise ParameterError(
                f"no {bits}-bit NTT prime exists for polynomial degree {poly_modulus_degree}"
            )
        chosen.append(candidate)
    return chosen


def mod_inverse(value: int, modulus: int) -> int:
    """Modular inverse via Python's built-in extended Euclid (``pow(-1)``)."""
    try:
        return pow(value % modulus, -1, modulus)
    except ValueError as exc:  # pragma: no cover - defensive
        raise ParameterError(f"{value} has no inverse modulo {modulus}") from exc


def find_primitive_root(order: int, modulus: int) -> int:
    """Find a primitive ``order``-th root of unity modulo a prime ``modulus``.

    ``order`` must divide ``modulus - 1`` and be a power of two (the only case
    the NTT needs).
    """
    if (modulus - 1) % order != 0:
        raise ParameterError(f"{order} does not divide {modulus - 1}")
    cofactor = (modulus - 1) // order
    for generator in range(2, modulus):
        candidate = pow(generator, cofactor, modulus)
        if pow(candidate, order // 2, modulus) != 1:
            return candidate
    raise ParameterError(f"no primitive {order}-th root of unity modulo {modulus}")
