"""CKKS encoding + encryption front door."""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from ..errors import ParameterError
from .ciphertext import Ciphertext, Plaintext
from .context import CkksContext
from .keys import PublicKey
from .rns import RnsPolynomial
from .sampling import RlweSampler


class Encryptor:
    """Encodes vectors into plaintexts and encrypts them under a public key."""

    def __init__(
        self,
        context: CkksContext,
        public_key: PublicKey,
        seed: Optional[int] = None,
    ) -> None:
        self.context = context
        self.public_key = public_key
        self.sampler = RlweSampler(seed)

    # -- encoding ------------------------------------------------------------------
    def encode(
        self,
        values: Union[float, Sequence[float], np.ndarray],
        scale: float,
        level: int = 0,
    ) -> Plaintext:
        """Encode a vector (or scalar) at the given scale and level."""
        coefficients = self.context.encoder.encode(values, scale)
        basis = self.context.data_basis(level)
        poly = RnsPolynomial.from_int64_coefficients(basis, coefficients)
        return Plaintext(poly=poly, scale=float(scale), level=int(level))

    # -- encryption -----------------------------------------------------------------
    def encrypt(self, plaintext: Plaintext) -> Ciphertext:
        """Encrypt an encoded plaintext with the public key."""
        basis = self.context.data_basis(plaintext.level)
        if plaintext.poly.basis != basis:
            raise ParameterError("plaintext level does not match its polynomial basis")
        pk_b = self.context.restrict(self.public_key.b, basis)
        pk_a = self.context.restrict(self.public_key.a, basis)
        u = self.sampler.ternary(basis)
        e0 = self.sampler.error(basis)
        e1 = self.sampler.error(basis)
        c0 = pk_b.multiply(u).add(e0).add(plaintext.poly)
        c1 = pk_a.multiply(u).add(e1)
        return Ciphertext(polys=[c0, c1], scale=plaintext.scale, level=plaintext.level)

    def encode_and_encrypt(
        self,
        values: Union[float, Sequence[float], np.ndarray],
        scale: float,
        level: int = 0,
    ) -> Ciphertext:
        """Convenience: encode then encrypt."""
        return self.encrypt(self.encode(values, scale, level))
