"""Key material and key generation for the RNS-CKKS scheme.

Key switching uses the "special prime" (hybrid) technique: switching keys are
generated modulo ``Q * P`` where ``P`` is the special prime, the decomposition
digits are the per-prime residues of the polynomial being switched, and the
final result is divided by ``P`` (with rounding), which keeps the switching
noise small relative to the scale.

The same :class:`KeySwitchingKey` structure backs relinearization keys (which
switch from ``s^2`` to ``s``) and Galois keys (which switch from ``s(X^g)`` to
``s``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from ..errors import ParameterError
from .context import CkksContext
from .rns import RnsBasis, RnsPolynomial
from .sampling import RlweSampler


@dataclass
class SecretKey:
    """Ternary secret key, stored as raw coefficients plus per-basis caches."""

    coefficients: np.ndarray
    _cache: Dict[Tuple[int, ...], RnsPolynomial] = field(default_factory=dict, repr=False)

    def poly_for(self, basis: RnsBasis) -> RnsPolynomial:
        """The secret key reduced into the given RNS basis (cached)."""
        key = tuple(basis.primes)
        poly = self._cache.get(key)
        if poly is None:
            poly = RnsPolynomial.from_int64_coefficients(basis, self.coefficients)
            self._cache[key] = poly
        return poly


@dataclass
class PublicKey:
    """RLWE public key ``(b, a) = (-(a*s + e), a)`` over the level-0 data basis."""

    b: RnsPolynomial
    a: RnsPolynomial


@dataclass
class KeySwitchingKey:
    """Switching key from some key ``s'`` to the secret key ``s``.

    ``pairs[prime] = (b_j, a_j)`` over the level-0 key basis (data primes plus
    the special prime), one pair per consumable prime ``q_j``.
    """

    pairs: Dict[int, Tuple[RnsPolynomial, RnsPolynomial]]


@dataclass
class RelinearizationKey:
    """Key switching key from ``s^2`` to ``s``."""

    key: KeySwitchingKey


@dataclass
class GaloisKeys:
    """Key switching keys from ``s(X^g)`` to ``s``, one per Galois element."""

    keys: Dict[int, KeySwitchingKey] = field(default_factory=dict)

    def key_for(self, galois_element: int) -> KeySwitchingKey:
        key = self.keys.get(int(galois_element))
        if key is None:
            raise ParameterError(
                f"no Galois key was generated for element {galois_element}; "
                "regenerate keys with the required rotation steps"
            )
        return key


class KeyGenerator:
    """Generates secret, public, relinearization, and Galois keys."""

    def __init__(self, context: CkksContext, seed: Optional[int] = None) -> None:
        self.context = context
        self.sampler = RlweSampler(seed)
        self.secret_key = SecretKey(self.sampler.ternary_coefficients(context.poly_modulus_degree))

    # -- public key -----------------------------------------------------------------
    def create_public_key(self) -> PublicKey:
        basis = self.context.data_basis(0)
        s = self.secret_key.poly_for(basis)
        a = self.sampler.uniform(basis)
        e = self.sampler.error(basis)
        b = a.multiply(s).add(e).negate()
        return PublicKey(b=b, a=a)

    # -- key switching keys ------------------------------------------------------------
    def _create_keyswitch_key(self, target: RnsPolynomial) -> KeySwitchingKey:
        """Create a switching key from the key ``target`` (over the key basis) to ``s``."""
        context = self.context
        key_basis = context.key_basis(0)
        s = self.secret_key.poly_for(key_basis)
        special = context.special_prime
        pairs: Dict[int, Tuple[RnsPolynomial, RnsPolynomial]] = {}
        prime_rows = {prime: i for i, prime in enumerate(key_basis.primes)}
        for q_j in context.consumable_primes:
            a_j = self.sampler.uniform(key_basis)
            e_j = self.sampler.error(key_basis)
            w = RnsPolynomial.zero(key_basis)
            row = prime_rows[q_j]
            w.residues[row] = (target.residues[row] * (special % q_j)) % q_j
            b_j = w.sub(a_j.multiply(s)).sub(e_j)
            pairs[q_j] = (b_j, a_j)
        return KeySwitchingKey(pairs)

    def create_relin_key(self) -> RelinearizationKey:
        """Relinearization key: switches ``s^2`` back to ``s``."""
        key_basis = self.context.key_basis(0)
        s = self.secret_key.poly_for(key_basis)
        s_squared = s.multiply(s)
        return RelinearizationKey(self._create_keyswitch_key(s_squared))

    def create_galois_keys(self, rotation_steps: Iterable[int]) -> GaloisKeys:
        """Galois keys for the given left-rotation step counts."""
        keys = GaloisKeys()
        key_basis = self.context.key_basis(0)
        s = self.secret_key.poly_for(key_basis)
        for step in sorted({int(s_) % self.context.slots for s_ in rotation_steps}):
            if step == 0:
                continue
            element = self.context.galois_element_for_step(step)
            rotated_s = s.automorphism(element)
            keys.keys[element] = self._create_keyswitch_key(rotated_s)
        return keys
