"""Random samplers for RLWE key generation and encryption.

Three distributions are needed: the uniform distribution over ``R_Q`` (public
randomness), the centered ternary distribution ``{-1, 0, 1}`` (secret keys and
encryption randomness), and a narrow discrete Gaussian (errors).  The error
standard deviation follows SEAL's default of 3.2.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .rns import RnsBasis, RnsPolynomial

#: SEAL's default RLWE error standard deviation.
ERROR_STDDEV = 3.2


class RlweSampler:
    """Samples the polynomials needed by key generation and encryption."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self._rng = np.random.default_rng(seed)

    def uniform(self, basis: RnsBasis) -> RnsPolynomial:
        """Uniformly random polynomial of ``R_Q`` (independent residues per prime)."""
        rows = [
            self._rng.integers(0, prime, basis.poly_modulus_degree, dtype=np.int64)
            for prime in basis.primes
        ]
        return RnsPolynomial(basis, np.stack(rows))

    def ternary(self, basis: RnsBasis) -> RnsPolynomial:
        """Centered ternary polynomial (coefficients in ``{-1, 0, 1}``)."""
        coeffs = self._rng.integers(-1, 2, basis.poly_modulus_degree, dtype=np.int64)
        return RnsPolynomial.from_int64_coefficients(basis, coeffs)

    def error(self, basis: RnsBasis, stddev: float = ERROR_STDDEV) -> RnsPolynomial:
        """Discrete-Gaussian-like error polynomial (rounded normal samples)."""
        coeffs = np.round(
            self._rng.normal(0.0, stddev, basis.poly_modulus_degree)
        ).astype(np.int64)
        return RnsPolynomial.from_int64_coefficients(basis, coeffs)

    def ternary_coefficients(self, poly_modulus_degree: int) -> np.ndarray:
        """Raw ternary coefficient vector (used for the secret key)."""
        return self._rng.integers(-1, 2, poly_modulus_degree, dtype=np.int64)

    def error_coefficients(
        self, poly_modulus_degree: int, stddev: float = ERROR_STDDEV
    ) -> np.ndarray:
        """Raw error coefficient vector."""
        return np.round(self._rng.normal(0.0, stddev, poly_modulus_degree)).astype(np.int64)
