"""A from-scratch RNS-CKKS implementation (the Microsoft SEAL substitute).

The module provides the full pipeline of the scheme: parameter validation
against the HE security standard, NTT-friendly prime generation, the
canonical-embedding encoder, RLWE key generation (secret, public,
relinearization, and Galois keys with the special-prime key-switching
technique), encryption, decryption, and the homomorphic evaluator
(add/sub/negate, ciphertext and plaintext multiplication, relinearization,
slot rotation, rescaling, and modulus switching).

All arithmetic is vectorized numpy ``int64``; coefficient-modulus primes are
limited to 30 bits, so the compiler should be configured with
``max_rescale_bits <= 30`` when targeting this backend (the mock backend
supports the paper's 60-bit configuration).
"""

from .context import CkksContext
from .ciphertext import Ciphertext, Plaintext
from .encoder import CkksEncoder, get_encoder
from .encryptor import Encryptor
from .decryptor import Decryptor
from .evaluator import Evaluator
from .keys import GaloisKeys, KeyGenerator, PublicKey, RelinearizationKey, SecretKey
from .rns import RnsBasis, RnsPolynomial

__all__ = [
    "CkksContext",
    "Ciphertext",
    "Plaintext",
    "CkksEncoder",
    "get_encoder",
    "Encryptor",
    "Decryptor",
    "Evaluator",
    "GaloisKeys",
    "KeyGenerator",
    "PublicKey",
    "RelinearizationKey",
    "SecretKey",
    "RnsBasis",
    "RnsPolynomial",
]
