"""Residue Number System polynomial arithmetic.

An :class:`RnsPolynomial` stores one residue row per prime of its basis; all
ring operations (addition, negacyclic multiplication, Galois automorphisms,
dropping / dividing away the last prime) are implemented row-wise with
vectorized ``numpy`` ``int64`` arithmetic and the NTT contexts of
:mod:`repro.ckks.ntt`.

CRT composition back to arbitrary-precision integers (needed only at
decryption time, where coefficients can exceed 64 bits) uses Python integers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..errors import ParameterError
from .ntt import get_ntt_context
from .numth import mod_inverse

_AUTOMORPHISM_TABLE_CACHE: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = {}


def _automorphism_tables(n: int, galois_element: int) -> Tuple[np.ndarray, np.ndarray]:
    """Cached (target index, sign flip) tables for ``X -> X^g`` at degree ``n``."""
    g = int(galois_element) % (2 * n)
    key = (int(n), g)
    cached = _AUTOMORPHISM_TABLE_CACHE.get(key)
    if cached is None:
        indices = (np.arange(n, dtype=np.int64) * g) % (2 * n)
        cached = (indices % n, indices >= n)
        _AUTOMORPHISM_TABLE_CACHE[key] = cached
    return cached


class RnsBasis:
    """An ordered list of primes together with their NTT contexts.

    Derived tables that every hot operation needs — the primes broadcast as an
    ``int64`` column, the rescale inverses of the last prime, the CRT
    composition factors — are computed once per basis and cached, so the
    per-call overhead measured by ``tools/profile_ckks.py`` (rebuilding the
    primes array on every add, re-deriving ``mod_inverse`` on every rescale)
    is paid at basis construction instead of per polynomial op.
    """

    def __init__(self, primes: Sequence[int], poly_modulus_degree: int) -> None:
        if not primes:
            raise ParameterError("an RNS basis needs at least one prime")
        self.primes: List[int] = [int(p) for p in primes]
        self.poly_modulus_degree = int(poly_modulus_degree)
        self.ntt = [get_ntt_context(p, poly_modulus_degree) for p in self.primes]
        #: ``primes`` as an (L, 1) int64 column, ready to broadcast over residues.
        self.primes_column = np.array(self.primes, dtype=np.int64).reshape(-1, 1)
        self._dropped: "RnsBasis | None" = None
        self._rescale_inverses: "np.ndarray | None" = None
        self._crt_factors: "List[int] | None" = None
        self._modulus: "int | None" = None

    def __len__(self) -> int:
        return len(self.primes)

    def drop_last(self) -> "RnsBasis":
        if self._dropped is None:
            self._dropped = RnsBasis(self.primes[:-1], self.poly_modulus_degree)
        return self._dropped

    def modulus(self) -> int:
        if self._modulus is None:
            product = 1
            for prime in self.primes:
                product *= prime
            self._modulus = product
        return self._modulus

    def rescale_inverses(self) -> np.ndarray:
        """``last_prime^-1 mod p`` for every remaining prime, as an (L-1, 1) column."""
        if self._rescale_inverses is None:
            last = self.primes[-1]
            self._rescale_inverses = np.array(
                [mod_inverse(last, p) for p in self.primes[:-1]], dtype=np.int64
            ).reshape(-1, 1)
        return self._rescale_inverses

    def crt_factors(self) -> List[int]:
        """CRT composition factor ``(Q/p) * ((Q/p)^-1 mod p)`` per prime."""
        if self._crt_factors is None:
            modulus = self.modulus()
            factors = []
            for prime in self.primes:
                quotient = modulus // prime
                factors.append((quotient * mod_inverse(quotient, prime)) % modulus)
            self._crt_factors = factors
        return self._crt_factors

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RnsBasis)
            and self.primes == other.primes
            and self.poly_modulus_degree == other.poly_modulus_degree
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RnsBasis {len(self.primes)} primes, N={self.poly_modulus_degree}>"


class RnsPolynomial:
    """A polynomial in ``Z_Q[X]/(X^N + 1)`` stored residue-wise."""

    __slots__ = ("basis", "residues")

    def __init__(self, basis: RnsBasis, residues: np.ndarray) -> None:
        self.basis = basis
        self.residues = residues  # shape (len(basis), N), int64, reduced

    # -- constructors -------------------------------------------------------------
    @classmethod
    def zero(cls, basis: RnsBasis) -> "RnsPolynomial":
        return cls(
            basis,
            np.zeros((len(basis), basis.poly_modulus_degree), dtype=np.int64),
        )

    @classmethod
    def from_int_coefficients(cls, basis: RnsBasis, coeffs: Iterable[int]) -> "RnsPolynomial":
        """Build from (possibly negative, possibly large) integer coefficients."""
        coeff_list = list(coeffs)
        n = basis.poly_modulus_degree
        if len(coeff_list) != n:
            raise ParameterError(f"expected {n} coefficients, got {len(coeff_list)}")
        rows = []
        as_array = np.asarray(coeff_list, dtype=object)
        for prime in basis.primes:
            row = np.array([int(c) % prime for c in as_array], dtype=np.int64)
            rows.append(row)
        return cls(basis, np.stack(rows))

    @classmethod
    def from_int64_coefficients(cls, basis: RnsBasis, coeffs: np.ndarray) -> "RnsPolynomial":
        """Build from int64 coefficients (fast path; values must fit in int64)."""
        coeffs = np.asarray(coeffs, dtype=np.int64)
        return cls(basis, coeffs[np.newaxis, :] % basis.primes_column)

    def copy(self) -> "RnsPolynomial":
        return RnsPolynomial(self.basis, self.residues.copy())

    # -- ring operations -----------------------------------------------------------
    def _check_basis(self, other: "RnsPolynomial") -> None:
        if self.basis != other.basis:
            raise ParameterError("polynomials have different RNS bases")

    def add(self, other: "RnsPolynomial") -> "RnsPolynomial":
        self._check_basis(other)
        # Both operands are reduced, so the sum lives in [0, 2p): a conditional
        # subtract replaces the per-element int64 division of `% p`.
        primes = self.basis.primes_column
        total = self.residues + other.residues
        np.subtract(total, primes, out=total, where=total >= primes)
        return RnsPolynomial(self.basis, total)

    def sub(self, other: "RnsPolynomial") -> "RnsPolynomial":
        self._check_basis(other)
        primes = self.basis.primes_column
        diff = self.residues - other.residues
        np.add(diff, primes, out=diff, where=diff < 0)
        return RnsPolynomial(self.basis, diff)

    def negate(self) -> "RnsPolynomial":
        primes = self.basis.primes_column
        negated = primes - self.residues
        np.subtract(negated, primes, out=negated, where=negated >= primes)
        return RnsPolynomial(self.basis, negated)

    def multiply(self, other: "RnsPolynomial") -> "RnsPolynomial":
        """Negacyclic polynomial product (NTT-based, per prime)."""
        self._check_basis(other)
        rows = []
        for index, ntt in enumerate(self.basis.ntt):
            rows.append(ntt.multiply(self.residues[index], other.residues[index]))
        return RnsPolynomial(self.basis, np.stack(rows))

    def multiply_scalar(self, scalar: int) -> "RnsPolynomial":
        rows = []
        for index, prime in enumerate(self.basis.primes):
            rows.append(self.residues[index] * (int(scalar) % prime) % prime)
        return RnsPolynomial(self.basis, np.stack(rows))

    def automorphism(self, galois_element: int) -> "RnsPolynomial":
        """Apply ``X -> X^g`` (``g`` odd) in the negacyclic ring."""
        n = self.basis.poly_modulus_degree
        target, sign_flip = _automorphism_tables(n, int(galois_element))
        primes = self.basis.primes_column
        values = self.residues.copy()
        flipped = values[:, sign_flip]
        values[:, sign_flip] = np.where(flipped == 0, 0, primes - flipped)
        out = np.empty_like(values)
        out[:, target] = values
        return RnsPolynomial(self.basis, out)

    # -- modulus-chain operations ----------------------------------------------------
    def drop_last(self) -> "RnsPolynomial":
        """Drop the last prime without scaling (CKKS modulus switching)."""
        if len(self.basis) < 2:
            raise ParameterError("cannot drop the only prime of the basis")
        return RnsPolynomial(self.basis.drop_last(), self.residues[:-1].copy())

    def divide_and_round_last(self) -> "RnsPolynomial":
        """Divide by the last prime of the basis and round (CKKS rescaling)."""
        if len(self.basis) < 2:
            raise ParameterError("cannot rescale away the only prime of the basis")
        last_prime = self.basis.primes[-1]
        last_row = self.residues[-1]
        centered = np.where(last_row > last_prime // 2, last_row - last_prime, last_row)
        new_basis = self.basis.drop_last()
        primes = new_basis.primes_column
        inverses = self.basis.rescale_inverses()
        diff = (self.residues[:-1] - centered[np.newaxis, :]) % primes
        return RnsPolynomial(new_basis, diff * inverses % primes)

    def divide_and_round_last_reference(self) -> "RnsPolynomial":
        """Row-at-a-time rescale re-deriving the inverses (property-test oracle)."""
        if len(self.basis) < 2:
            raise ParameterError("cannot rescale away the only prime of the basis")
        last_prime = self.basis.primes[-1]
        last_row = self.residues[-1]
        centered = np.where(last_row > last_prime // 2, last_row - last_prime, last_row)
        new_basis = self.basis.drop_last()
        rows = []
        for index, prime in enumerate(new_basis.primes):
            inv = mod_inverse(last_prime, prime)
            diff = (self.residues[index] - centered) % prime
            rows.append(diff * inv % prime)
        return RnsPolynomial(new_basis, np.stack(rows))

    def to_int_coefficients(self) -> List[int]:
        """CRT-compose the residues into centered integer coefficients."""
        modulus = self.basis.modulus()
        half = modulus // 2
        factors = self.basis.crt_factors()
        composed = np.zeros(self.basis.poly_modulus_degree, dtype=object)
        for row, factor in zip(self.residues, factors):
            composed += row.astype(object) * factor
        composed %= modulus
        return [int(c - modulus) if c > half else int(c) for c in composed]

    def to_int_coefficients_reference(self) -> List[int]:
        """Pure-Python CRT composition (property-test oracle for the fast path)."""
        modulus = self.basis.modulus()
        half = modulus // 2
        n = self.basis.poly_modulus_degree
        composed = [0] * n
        for index, prime in enumerate(self.basis.primes):
            quotient = modulus // prime
            factor = (quotient * mod_inverse(quotient, prime)) % modulus
            row = self.residues[index]
            for position in range(n):
                composed[position] = (composed[position] + int(row[position]) * factor) % modulus
        return [c - modulus if c > half else c for c in composed]
