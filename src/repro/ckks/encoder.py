"""CKKS encoder: canonical-embedding encoding of complex/real vectors.

A CKKS plaintext polynomial ``m(X)`` of degree ``< N`` encodes ``N/2`` complex
slots: slot ``k`` holds ``m(zeta^{5^k}) / scale`` where ``zeta`` is a primitive
``2N``-th root of unity.  Encoding inverts this embedding, scales by the
fixed-point scale, and rounds to integer coefficients.

The implementation uses the explicit Vandermonde-style embedding matrix over
the rotation group ``{5^k mod 2N}``; it is cached per ``N`` and is O(N^2),
which is ample for the laptop-scale ring dimensions the pure-Python backend
targets (``N <= 8192``).
"""

from __future__ import annotations

from typing import Dict, Sequence, Union

import numpy as np

from ..errors import EncodingError

#: Largest ring dimension for which the dense embedding matrix is built.
MAX_ENCODER_DEGREE = 8192

_ENCODER_CACHE: Dict[int, "CkksEncoder"] = {}


class CkksEncoder:
    """Encode/decode vectors of complex numbers into integer coefficient vectors."""

    def __init__(self, poly_modulus_degree: int) -> None:
        n = int(poly_modulus_degree)
        if n & (n - 1) or n < 4:
            raise EncodingError("polynomial degree must be a power of two >= 4")
        if n > MAX_ENCODER_DEGREE:
            raise EncodingError(
                f"the dense CKKS encoder supports N <= {MAX_ENCODER_DEGREE}, got {n}"
            )
        self.poly_modulus_degree = n
        self.slots = n // 2
        m = 2 * n
        rot_group = np.empty(self.slots, dtype=np.int64)
        power = 1
        for i in range(self.slots):
            rot_group[i] = power
            power = (power * 5) % m
        self.rot_group = rot_group
        roots = np.exp(2j * np.pi * np.arange(m) / m)
        exponents = np.outer(rot_group, np.arange(n)) % m
        #: Embedding matrix U with U[k, j] = zeta^{rot_group[k] * j}.
        self.embedding = roots[exponents]

    # -- public API ---------------------------------------------------------------
    def encode(self, values: Union[Sequence[float], np.ndarray], scale: float) -> np.ndarray:
        """Encode a vector into int64 plaintext coefficients at the given scale.

        The input length must divide the slot count; shorter vectors are
        replicated (the EVA input-replication rule) and scalars broadcast.
        """
        array = np.atleast_1d(np.asarray(values, dtype=np.complex128)).ravel()
        if array.size > self.slots:
            raise EncodingError(
                f"cannot encode {array.size} values into {self.slots} slots"
            )
        if self.slots % array.size != 0:
            raise EncodingError(
                f"input length {array.size} must divide the slot count {self.slots}"
            )
        if array.size < self.slots:
            array = np.tile(array, self.slots // array.size)
        # Re(U^H a) == Re(conj(a) @ U): conjugating the length-N/2 vector
        # avoids materializing conj(U).T — a fresh O(N^2) complex matrix per
        # encode that profiling showed dominating lane-batched programs.
        coeffs = (2.0 / self.poly_modulus_degree) * np.real(
            np.conj(array) @ self.embedding
        )
        scaled = coeffs * float(scale)
        max_coeff = float(np.max(np.abs(scaled))) if scaled.size else 0.0
        if max_coeff >= 2**62:
            raise EncodingError(
                "encoded coefficients overflow 63 bits; lower the scale"
            )
        return np.round(scaled).astype(np.int64)

    def decode(self, coefficients: Union[Sequence[int], np.ndarray], scale: float) -> np.ndarray:
        """Decode centered integer coefficients back into complex slot values."""
        coeffs = np.asarray(
            [float(c) for c in coefficients], dtype=np.float64
        )
        if coeffs.size != self.poly_modulus_degree:
            raise EncodingError(
                f"expected {self.poly_modulus_degree} coefficients, got {coeffs.size}"
            )
        slots = self.embedding @ coeffs
        return slots / float(scale)

    def decode_real(self, coefficients: Union[Sequence[int], np.ndarray], scale: float) -> np.ndarray:
        """Decode and return only the real parts of the slots."""
        return np.real(self.decode(coefficients, scale))


def get_encoder(poly_modulus_degree: int) -> CkksEncoder:
    """Return a cached encoder for the given ring dimension."""
    encoder = _ENCODER_CACHE.get(int(poly_modulus_degree))
    if encoder is None:
        encoder = CkksEncoder(poly_modulus_degree)
        _ENCODER_CACHE[int(poly_modulus_degree)] = encoder
    return encoder
