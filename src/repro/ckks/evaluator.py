"""Homomorphic evaluation operations for RNS-CKKS.

Implements the operation set of Table 2 on real ciphertexts: element-wise
addition/subtraction/negation (ciphertext-ciphertext and ciphertext-plaintext),
multiplication, relinearization, slot rotation via Galois automorphisms,
rescaling, and modulus switching.  Every operation enforces the same
preconditions SEAL enforces and raises the typed errors of
:mod:`repro.errors` when they are violated — the conditions the EVA compiler
guarantees can never occur in a validated program.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..errors import (
    LevelMismatchError,
    ModulusExhaustedError,
    ParameterError,
    PolynomialCountError,
    ScaleMismatchError,
)
from .ciphertext import Ciphertext, Plaintext
from .context import CkksContext
from .keys import GaloisKeys, KeySwitchingKey, RelinearizationKey
from .rns import RnsPolynomial

#: Relative tolerance when comparing scales of additive operands.
_SCALE_RTOL = 1e-6


class Evaluator:
    """Evaluates homomorphic operations on CKKS ciphertexts."""

    def __init__(
        self,
        context: CkksContext,
        relin_key: Optional[RelinearizationKey] = None,
        galois_keys: Optional[GaloisKeys] = None,
    ) -> None:
        self.context = context
        self.relin_key = relin_key
        self.galois_keys = galois_keys

    # -- checks ---------------------------------------------------------------------
    @staticmethod
    def _check_same_level(a: Ciphertext, b: Ciphertext) -> None:
        if a.level != b.level:
            raise LevelMismatchError(
                f"ciphertexts are at different levels ({a.level} vs {b.level})"
            )

    @staticmethod
    def _check_same_scale(a_scale: float, b_scale: float) -> None:
        if abs(a_scale - b_scale) > _SCALE_RTOL * max(abs(a_scale), abs(b_scale), 1.0):
            raise ScaleMismatchError(
                f"operand scales differ ({a_scale:g} vs {b_scale:g})"
            )

    def _check_plain(self, a: Ciphertext, p: Plaintext) -> None:
        if a.level != p.level:
            raise LevelMismatchError(
                f"plaintext level {p.level} does not match ciphertext level {a.level}"
            )

    # -- linear operations -------------------------------------------------------------
    def negate(self, a: Ciphertext) -> Ciphertext:
        return Ciphertext([p.negate() for p in a.polys], a.scale, a.level)

    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        self._check_same_level(a, b)
        self._check_same_scale(a.scale, b.scale)
        size = max(a.size, b.size)
        polys = []
        for i in range(size):
            if i < a.size and i < b.size:
                polys.append(a.polys[i].add(b.polys[i]))
            elif i < a.size:
                polys.append(a.polys[i].copy())
            else:
                polys.append(b.polys[i].copy())
        return Ciphertext(polys, max(a.scale, b.scale), a.level)

    def sub(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        return self.add(a, self.negate(b))

    def add_plain(self, a: Ciphertext, p: Plaintext) -> Ciphertext:
        self._check_plain(a, p)
        self._check_same_scale(a.scale, p.scale)
        polys = [a.polys[0].add(p.poly)] + [poly.copy() for poly in a.polys[1:]]
        return Ciphertext(polys, a.scale, a.level)

    def sub_plain(self, a: Ciphertext, p: Plaintext, reverse: bool = False) -> Ciphertext:
        self._check_plain(a, p)
        self._check_same_scale(a.scale, p.scale)
        if not reverse:
            polys = [a.polys[0].sub(p.poly)] + [poly.copy() for poly in a.polys[1:]]
            return Ciphertext(polys, a.scale, a.level)
        negated = self.negate(a)
        polys = [negated.polys[0].add(p.poly)] + [poly.copy() for poly in negated.polys[1:]]
        return Ciphertext(polys, a.scale, a.level)

    # -- multiplication -------------------------------------------------------------------
    def multiply(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        self._check_same_level(a, b)
        for operand in (a, b):
            if operand.size != 2:
                raise PolynomialCountError(
                    f"multiplication operand has {operand.size} polynomials; relinearize first"
                )
        c0 = a.polys[0].multiply(b.polys[0])
        c1 = a.polys[0].multiply(b.polys[1]).add(a.polys[1].multiply(b.polys[0]))
        c2 = a.polys[1].multiply(b.polys[1])
        return Ciphertext([c0, c1, c2], a.scale * b.scale, a.level)

    def multiply_plain(self, a: Ciphertext, p: Plaintext) -> Ciphertext:
        self._check_plain(a, p)
        polys = [poly.multiply(p.poly) for poly in a.polys]
        return Ciphertext(polys, a.scale * p.scale, a.level)

    def square(self, a: Ciphertext) -> Ciphertext:
        return self.multiply(a, a)

    # -- key switching ----------------------------------------------------------------------
    def _key_switch(
        self, poly: RnsPolynomial, switching_key: KeySwitchingKey, level: int
    ) -> Tuple[RnsPolynomial, RnsPolynomial]:
        """Switch ``poly`` (held under some key ``s'``) to the secret key ``s``.

        Returns the pair to be added to ``(c0, c1)``, already scaled down by
        the special prime and expressed in the data basis of ``level``.
        """
        context = self.context
        data_basis = poly.basis
        key_basis = context.key_basis(level)
        acc0 = RnsPolynomial.zero(key_basis)
        acc1 = RnsPolynomial.zero(key_basis)
        for row, prime in enumerate(data_basis.primes):
            pair = switching_key.pairs.get(prime)
            if pair is None:
                raise ParameterError(f"switching key is missing the digit for prime {prime}")
            digit = RnsPolynomial.from_int64_coefficients(key_basis, poly.residues[row])
            b_j = context.restrict(pair[0], key_basis)
            a_j = context.restrict(pair[1], key_basis)
            acc0 = acc0.add(digit.multiply(b_j))
            acc1 = acc1.add(digit.multiply(a_j))
        return acc0.divide_and_round_last(), acc1.divide_and_round_last()

    def relinearize(self, a: Ciphertext) -> Ciphertext:
        """Reduce a three-polynomial ciphertext back to two polynomials."""
        if self.relin_key is None:
            raise ParameterError("no relinearization key available")
        if a.size == 2:
            return a.copy()
        if a.size != 3:
            raise PolynomialCountError(
                f"relinearization supports ciphertexts of size 3, got {a.size}"
            )
        ks0, ks1 = self._key_switch(a.polys[2], self.relin_key.key, a.level)
        return Ciphertext(
            [a.polys[0].add(ks0), a.polys[1].add(ks1)], a.scale, a.level
        )

    def rotate(self, a: Ciphertext, steps: int) -> Ciphertext:
        """Rotate the slots left by ``steps`` (negative values rotate right)."""
        if self.galois_keys is None:
            raise ParameterError("no Galois keys available")
        steps = int(steps) % self.context.slots
        if steps == 0:
            return a.copy()
        if a.size != 2:
            raise PolynomialCountError("rotation requires a relinearized ciphertext")
        element = self.context.galois_element_for_step(steps)
        switching_key = self.galois_keys.key_for(element)
        c0 = a.polys[0].automorphism(element)
        c1 = a.polys[1].automorphism(element)
        ks0, ks1 = self._key_switch(c1, switching_key, a.level)
        return Ciphertext([c0.add(ks0), ks1], a.scale, a.level)

    # -- modulus chain -----------------------------------------------------------------------
    def rescale_to_next(self, a: Ciphertext) -> Ciphertext:
        """Divide the ciphertext (and its scale) by the next prime in the chain."""
        if a.level >= self.context.max_level - 1:
            raise ModulusExhaustedError("cannot rescale: no prime left to divide away")
        prime = a.basis.primes[-1]
        polys = [p.divide_and_round_last() for p in a.polys]
        return Ciphertext(polys, a.scale / prime, a.level + 1)

    def mod_switch_to_next(self, a: Ciphertext) -> Ciphertext:
        """Drop the next prime in the chain without changing the scale."""
        if a.level >= self.context.max_level - 1:
            raise ModulusExhaustedError("cannot switch modulus: no prime left to drop")
        polys = [p.drop_last() for p in a.polys]
        return Ciphertext(polys, a.scale, a.level + 1)
